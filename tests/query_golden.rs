//! Golden query-response fixture: a deterministic single-threaded replay
//! rendered through the serve layer must produce byte-identical JSON,
//! run to run and commit to commit.
//!
//! Bless the fixture after an intentional format change with
//! `WILOCATOR_BLESS=1 cargo test --test query_golden`.

mod common;

use common::{assert_matches_fixture, seeded_day, to_report};
use wilocator::core::{ScanReport, WiLocator, WiLocatorConfig};
use wilocator::serve::{parse_request, respond, HttpLimits, Request};

fn get(target: &str) -> Request {
    let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
    let (request, _) = parse_request(raw.as_bytes(), &HttpLimits::default())
        .expect("well-formed request line")
        .expect("complete request");
    request
}

/// Replays one seeded morning single-threaded — ingest in plan order,
/// batches of 32, then train — *without* finishing the buses, so
/// `/position` still answers for them.
fn replayed_server() -> WiLocator {
    let (city, plan) = seeded_day(11);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(wilocator::core::BusKey(trip as u64), route)
            .expect("served route");
    }
    let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
    for chunk in reports.chunks(32) {
        for result in server.ingest_batch(chunk) {
            result.expect("registered bus");
        }
    }
    server.train(10.0 * 3_600.0);
    server
}

/// The fixed battery of requests the fixture records: every data
/// endpoint, the route filter, and each 4xx shape.
fn battery(server: &WiLocator) -> Vec<String> {
    let snapshot = server.query_snapshot();
    let mut targets = vec![
        "/arrivals/0".to_string(),
        "/arrivals/1".to_string(),
        "/arrivals/1?route=0".to_string(),
        "/arrivals/3".to_string(),
        "/traffic/0".to_string(),
        "/traffic/1".to_string(),
        "/traffic/2".to_string(),
        // 4xx shapes are part of the contract too.
        "/arrivals/99".to_string(),
        "/traffic/9".to_string(),
        "/position/99999".to_string(),
        "/position/abc".to_string(),
        "/arrivals/1?route=x".to_string(),
        "/nope/1".to_string(),
    ];
    // Snapshot iteration is ordered, so "the first three buses" is a
    // deterministic pick.
    for bus in snapshot.buses.keys().take(3) {
        targets.push(format!("/position/{}", bus.0));
    }
    targets
}

fn transcript(server: &WiLocator) -> String {
    let mut out = String::new();
    for target in battery(server) {
        let response = respond(server, &get(&target));
        out.push_str(&format!(
            "GET {target}\n{} {}\n{}\n\n",
            response.status, response.content_type, response.body
        ));
    }
    out
}

#[test]
fn query_responses_match_golden() {
    let server = replayed_server();
    assert_matches_fixture(&transcript(&server), "query_golden.txt");
}

#[test]
fn query_responses_are_replay_deterministic() {
    let first = transcript(&replayed_server());
    let second = transcript(&replayed_server());
    assert_eq!(
        first, second,
        "same seed, same replay — response bytes must not drift"
    );
}

//! End-to-end integration: simulate → ingest → track → train → predict,
//! across every crate through the umbrella API.

use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::road::RouteId;
use wilocator::sim::{
    daily_schedule, simple_street, simulate, CityConfig, SimulationConfig, TrafficConfig,
    TrafficModel,
};

fn scenario() -> (wilocator::sim::City, wilocator::sim::Dataset) {
    let city = simple_street(2_500.0, 6, 11, &CityConfig::default());
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 11);
    let schedule = daily_schedule(&city, &[(RouteId(0), 1_800.0)]);
    let dataset = simulate(
        &city,
        &schedule,
        &traffic,
        &SimulationConfig {
            days: 1,
            seed: 11,
            ..SimulationConfig::default()
        },
    );
    (city, dataset)
}

#[test]
fn full_pipeline_tracks_and_predicts() {
    let (city, dataset) = scenario();
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    let route = city.routes[0].clone();
    let mut total_err = 0.0;
    let mut fixes = 0usize;
    for trip in &dataset.trips {
        let bus = BusKey(trip.trip_id as u64);
        server.register_bus(bus, trip.route).expect("served route");
        for bundle in &trip.bundles {
            if let Some(fix) = server
                .ingest(&ScanReport {
                    bus,
                    time_s: bundle.time_s,
                    scans: bundle.scans.clone(),
                })
                .expect("registered")
            {
                total_err += (fix.s - bundle.true_s).abs();
                fixes += 1;
            }
        }
        server.finish_bus(bus).expect("registered");
    }
    assert!(fixes > 100, "only {fixes} fixes produced");
    let mean_err = total_err / fixes as f64;
    assert!(mean_err < 40.0, "mean tracking error {mean_err} m");

    // History accumulated on every segment.
    let (records, edges) = server.with_store(|s| (s.len(), s.edge_count()));
    assert_eq!(edges, route.edges().len(), "all segments recorded");
    assert!(records >= dataset.trips.len() * route.edges().len() / 2);

    // Train and predict: ETA for a fresh bus at the route start must be
    // within 40 % of the mean observed trip duration.
    server.train(1e12);
    let mean_duration: f64 = dataset
        .trips
        .iter()
        .map(|t| t.trajectory.end_time() - t.trajectory.start_time())
        .sum::<f64>()
        / dataset.trips.len() as f64;
    let eta = server
        .predict_arrival_at(RouteId(0), 0.0, 2e5, route.length())
        .expect("served route")
        - 2e5;
    assert!(
        (eta - mean_duration).abs() < 0.4 * mean_duration,
        "predicted {eta} s vs mean duration {mean_duration} s"
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (city, dataset) = scenario();
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        let mut sig = Vec::new();
        for trip in dataset.trips.iter().take(3) {
            let bus = BusKey(trip.trip_id as u64);
            server.register_bus(bus, trip.route).unwrap();
            for bundle in &trip.bundles {
                if let Some(fix) = server
                    .ingest(&ScanReport {
                        bus,
                        time_s: bundle.time_s,
                        scans: bundle.scans.clone(),
                    })
                    .unwrap()
                {
                    sig.push((fix.s * 100.0).round() as i64);
                }
            }
        }
        sig
    };
    assert_eq!(run(), run());
}

#[test]
fn umbrella_crate_reexports_are_usable() {
    // Touch one symbol from every re-exported crate.
    let p = wilocator::geo::Point::new(1.0, 2.0);
    assert_eq!(p.x, 1.0);
    let ap = wilocator::rf::AccessPoint::new(wilocator::rf::ApId(0), p);
    assert!(ap.is_geo_tagged());
    let sig = wilocator::svd::TileSignature::empty();
    assert!(sig.is_empty());
    let store = wilocator::core::TravelTimeStore::new();
    assert!(store.is_empty());
    let cdf = wilocator::eval::Cdf::new(vec![1.0]);
    assert_eq!(cdf.median(), 1.0);
    let sched = wilocator::road::Schedule::new();
    assert!(sched.trips().is_empty());
}

//! End-to-end integration: simulate → ingest → track → train → predict,
//! across every crate through the umbrella API.

use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::road::RouteId;
use wilocator::sim::{
    daily_schedule, simple_street, simulate, CityConfig, SimulationConfig, TrafficConfig,
    TrafficModel,
};

fn scenario() -> (wilocator::sim::City, wilocator::sim::Dataset) {
    let city = simple_street(2_500.0, 6, 11, &CityConfig::default());
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 11);
    let schedule = daily_schedule(&city, &[(RouteId(0), 1_800.0)]);
    let dataset = simulate(
        &city,
        &schedule,
        &traffic,
        &SimulationConfig {
            days: 1,
            seed: 11,
            ..SimulationConfig::default()
        },
    );
    (city, dataset)
}

#[test]
fn full_pipeline_tracks_and_predicts() {
    let (city, dataset) = scenario();
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    let route = city.routes[0].clone();
    let mut total_err = 0.0;
    let mut fixes = 0usize;
    for trip in &dataset.trips {
        let bus = BusKey(trip.trip_id as u64);
        server.register_bus(bus, trip.route).expect("served route");
        for bundle in &trip.bundles {
            if let Some(fix) = server
                .ingest(&ScanReport {
                    bus,
                    time_s: bundle.time_s,
                    scans: bundle.scans.clone(),
                })
                .expect("registered")
            {
                total_err += (fix.s - bundle.true_s).abs();
                fixes += 1;
            }
        }
        server.finish_bus(bus).expect("registered");
    }
    assert!(fixes > 100, "only {fixes} fixes produced");
    let mean_err = total_err / fixes as f64;
    assert!(mean_err < 40.0, "mean tracking error {mean_err} m");

    // History accumulated on every segment.
    let (records, edges) = server.with_store(|s| (s.len(), s.edge_count()));
    assert_eq!(edges, route.edges().len(), "all segments recorded");
    assert!(records >= dataset.trips.len() * route.edges().len() / 2);

    // Train and predict: ETA for a fresh bus at the route start must be
    // within 40 % of the mean observed trip duration.
    server.train(1e12);
    let mean_duration: f64 = dataset
        .trips
        .iter()
        .map(|t| t.trajectory.end_time() - t.trajectory.start_time())
        .sum::<f64>()
        / dataset.trips.len() as f64;
    let eta = server
        .predict_arrival_at(RouteId(0), 0.0, 2e5, route.length())
        .expect("served route")
        - 2e5;
    assert!(
        (eta - mean_duration).abs() < 0.4 * mean_duration,
        "predicted {eta} s vs mean duration {mean_duration} s"
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (city, dataset) = scenario();
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        let mut sig = Vec::new();
        for trip in dataset.trips.iter().take(3) {
            let bus = BusKey(trip.trip_id as u64);
            server.register_bus(bus, trip.route).unwrap();
            for bundle in &trip.bundles {
                if let Some(fix) = server
                    .ingest(&ScanReport {
                        bus,
                        time_s: bundle.time_s,
                        scans: bundle.scans.clone(),
                    })
                    .unwrap()
                {
                    sig.push((fix.s * 100.0).round() as i64);
                }
            }
        }
        sig
    };
    assert_eq!(run(), run());
}

/// Golden regression: a seeded simulated day, ingested end to end, must
/// reproduce the checked-in per-stop arrival predictions.
///
/// The pipeline is bit-deterministic, so the comparison tolerance (0.5 s
/// on multi-minute ETAs) only absorbs float reassociation across
/// compilers. Regenerate the fixture after an intentional behaviour
/// change with `WILOCATOR_BLESS=1 cargo test --test end_to_end`.
#[test]
fn arrival_predictions_match_golden_fixture() {
    let (city, dataset) = scenario();
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    for trip in &dataset.trips {
        let bus = BusKey(trip.trip_id as u64);
        server.register_bus(bus, trip.route).expect("served route");
        for bundle in &trip.bundles {
            server
                .ingest(&ScanReport {
                    bus,
                    time_s: bundle.time_s,
                    scans: bundle.scans.clone(),
                })
                .expect("registered");
        }
        server.finish_bus(bus).expect("registered");
    }
    server.train(1e12);

    // Predictions from the route start and from mid-route to every stop,
    // at a mid-day query time.
    let route = &city.routes[0];
    let t_query = 12.0 * 3_600.0 + 86_400.0 * 365.0; // after all history
    let mut lines = Vec::new();
    for &from_s in &[0.0, route.length() * 0.4] {
        for (i, stop) in route.stops().iter().enumerate() {
            if stop.s() <= from_s {
                continue;
            }
            let eta = server
                .predict_arrival_at(route.id(), from_s, t_query, stop.s())
                .expect("served route")
                - t_query;
            lines.push(format!(
                "from={from_s:.1} stop={i} s={:.1} eta={eta:.3}",
                stop.s()
            ));
        }
    }
    let got = lines.join("\n") + "\n";

    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/arrival_predictions.txt");
    if std::env::var_os("WILOCATOR_BLESS").is_some() {
        std::fs::write(&fixture, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&fixture).expect(
        "fixture missing — run WILOCATOR_BLESS=1 cargo test --test end_to_end to create it",
    );

    let parse = |text: &str| -> Vec<(String, f64)> {
        text.lines()
            .map(|l| {
                let (key, eta) = l.rsplit_once(" eta=").expect("malformed fixture line");
                (key.to_string(), eta.parse().expect("numeric eta"))
            })
            .collect()
    };
    let (got, want) = (parse(&got), parse(&want));
    assert_eq!(
        got.iter().map(|(k, _)| k).collect::<Vec<_>>(),
        want.iter().map(|(k, _)| k).collect::<Vec<_>>(),
        "prediction grid changed — bless the fixture if intentional"
    );
    for ((key, got_eta), (_, want_eta)) in got.iter().zip(&want) {
        assert!(
            (got_eta - want_eta).abs() < 0.5,
            "{key}: eta {got_eta:.3} s drifted from golden {want_eta:.3} s"
        );
    }
}

#[test]
fn umbrella_crate_reexports_are_usable() {
    // Touch one symbol from every re-exported crate.
    let p = wilocator::geo::Point::new(1.0, 2.0);
    assert_eq!(p.x, 1.0);
    let ap = wilocator::rf::AccessPoint::new(wilocator::rf::ApId(0), p);
    assert!(ap.is_geo_tagged());
    let sig = wilocator::svd::TileSignature::empty();
    assert!(sig.is_empty());
    let store = wilocator::core::TravelTimeStore::new();
    assert!(store.is_empty());
    let cdf = wilocator::eval::Cdf::new(vec![1.0]);
    assert_eq!(cdf.median(), 1.0);
    let sched = wilocator::road::Schedule::new();
    assert!(sched.trips().is_empty());
}

//! End-to-end quality-plane degradation: a healthy replay goes bad
//! mid-stream (AP death plus device RSS bias), and the live quality
//! plane must notice — per-route ETA-error quantiles rise in the
//! published sections, and a drift detector fires carrying at least one
//! retained exemplar trace id, all observed through the `/debug/slo`
//! JSON a rider-plane client would see.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator::core::{BusKey, QualitySections, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::obs::SteppingClock;
use wilocator::road::RouteId;
use wilocator::serve::{parse_request, respond, HttpLimits};
use wilocator::sim::{
    sense_trip, simple_street, simulate_trip, BusConfig, CityConfig, ScanBundle, SensingConfig,
    TrafficConfig, TrafficModel,
};
use wilocator_dash::parse_dump;

const T0: f64 = 8.0 * 3_600.0;

/// Dense sensing so one bus clears the detectors' `min_events` floor
/// in every 60 s evaluation window.
fn sensing() -> SensingConfig {
    SensingConfig {
        scan_period_s: 2.0,
        period_jitter_s: 0.2,
        ..SensingConfig::default()
    }
}

/// Replays one trip; from `switch_t` on, the stream degrades: even
/// reports lose all WiFi (dead APs → empty scans, the tracker dead
/// reckons), odd reports keep only every fifth AP and read it 25 dB
/// hot (device bias → signature mismatches).
fn replay(
    server: &WiLocator,
    bundles: &[ScanBundle],
    switch_t: f64,
) -> (f64, Arc<QualitySections>) {
    server.register_bus(BusKey(7), RouteId(0)).expect("served");
    let mut mid: Option<Arc<QualitySections>> = None;
    let mut last_publish = f64::NEG_INFINITY;
    let mut last_t = T0;
    for (i, b) in bundles.iter().enumerate() {
        let mut report = ScanReport {
            bus: BusKey(7),
            time_s: b.time_s,
            scans: b.scans.clone(),
        };
        if b.time_s >= switch_t {
            if mid.is_none() {
                // The last healthy sections, straight off the snapshot.
                mid = Some(server.query_snapshot().quality.clone());
            }
            for scan in &mut report.scans {
                if i % 2 == 0 {
                    scan.readings.clear();
                } else {
                    scan.readings.retain(|r| r.ap.0 % 5 == 0);
                    for r in &mut scan.readings {
                        r.rss_dbm += 25;
                    }
                }
            }
        }
        server.ingest(&report).expect("registered");
        if b.time_s - last_publish >= 10.0 {
            server.publish_snapshot(b.time_s);
            last_publish = b.time_s;
        }
        last_t = b.time_s;
    }
    server.publish_snapshot(last_t);
    (last_t, mid.expect("stream reached the switch point"))
}

#[test]
fn mid_replay_degradation_raises_quantiles_and_fires_a_detector() {
    let city = simple_street(4_000.0, 6, 41, &CityConfig::default());
    let server = WiLocator::new_with_clocks(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
        Arc::new(SteppingClock::new(0, 250)),
        Arc::new(SteppingClock::new(1_000, 125)),
    );
    let route = city.routes[0].clone();
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 23);
    let mut rng = StdRng::seed_from_u64(23);
    let tr = simulate_trip(&route, &traffic, T0, &BusConfig::default(), &mut rng);
    let idx = city.ap_index();
    let bundles = sense_trip(&city, &tr, 0, &sensing(), &idx, &mut rng);
    assert!(bundles.len() > 200, "trip too short: {}", bundles.len());

    let switch_t = (bundles[0].time_s + bundles[bundles.len() - 1].time_s) / 2.0;
    let (_, mid) = replay(&server, &bundles, switch_t);
    let end = server.query_snapshot().quality.clone();

    // ETA accuracy degrades live: at the longer horizons the absolute
    // error quantile widens once the stream goes bad.
    let route0 = RouteId(0);
    let healthy = &mid
        .routes
        .get(&route0)
        .expect("healthy confirmations")
        .horizons;
    let degraded = &end
        .routes
        .get(&route0)
        .expect("degraded confirmations")
        .horizons;
    assert!(
        healthy[0].confirmed_total > 0 && degraded[2].confirmed_total > healthy[2].confirmed_total,
        "ledger must confirm through both phases: {healthy:?} {degraded:?}"
    );
    assert!(
        degraded[2].p90_abs_s > healthy[2].p90_abs_s
            && degraded[2].mean_abs_error_s > 1.5 * healthy[2].mean_abs_error_s,
        "degradation must widen the live error quantiles: healthy {:?} vs degraded {:?}",
        healthy[2],
        degraded[2]
    );

    // A drift detector fires, and its published status carries retained
    // exemplar trace ids.
    let fired: Vec<_> = end.slo.iter().filter(|d| d.fired).collect();
    assert!(!fired.is_empty(), "no detector fired: {:?}", end.slo);
    assert!(
        end.slo
            .iter()
            .any(|d| d.name == "dead_reckon_fraction" && d.fired),
        "dead-reckon drift must be detected: {:?}",
        end.slo
    );
    assert!(
        fired.iter().any(|d| !d.exemplar_trace_ids.is_empty()),
        "a fired detector must carry exemplar trace ids: {fired:?}"
    );
    // None of that fired during the healthy half.
    assert!(
        mid.slo.iter().all(|d| !d.fired),
        "healthy phase must be quiet: {:?}",
        mid.slo
    );

    // The same verdict must reach a rider-plane client: fetch /debug/slo
    // through the serve layer and re-check from the parsed JSON.
    let raw = "GET /debug/slo HTTP/1.1\r\n\r\n";
    let (request, _) = parse_request(raw.as_bytes(), &HttpLimits::default())
        .expect("well-formed")
        .expect("complete");
    let response = respond(&server, &request);
    assert_eq!(response.status, 200);
    let dash = parse_dump(&response.body).expect("schema-valid /debug/slo");
    let detector = dash
        .detectors
        .iter()
        .find(|d| d.name == "dead_reckon_fraction")
        .expect("detector published");
    assert!(detector.fired, "published JSON must show the firing");
    assert!(
        !detector.exemplar_trace_ids.is_empty(),
        "published JSON must carry >=1 retained exemplar trace id"
    );
}

//! Differential battery: the flat positioning kernels (interned codes,
//! sorted structure-of-arrays signature table, stack tie buffers) against
//! the frozen map-based reference path (`wilocator::svd::ReferencePositioner`).
//!
//! The reference module is the PR-6-era implementation kept semantically
//! frozen as a test oracle; the contract is *exact* equality — arc length
//! to the bit, fix method classification, tie handling, interval bounds —
//! across randomized scenes, corrupted rank vectors, dead-AP subsets,
//! prior chains, and multi-threaded replays of the same scan stream.

use proptest::prelude::*;
use wilocator::geo::Point;
use wilocator::rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator::road::{NetworkBuilder, Route, RouteId};
use wilocator::svd::{
    Fix, PositionerConfig, Prior, ReferencePositioner, ReferenceRouteIndex, RoutePositioner,
    RouteTileIndex, SvdConfig,
};

/// A straight street of the given length with APs at the given offsets.
fn street(len_m: f64, ap_offsets: &[(f64, f64)]) -> (Route, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(len_m, 0.0));
    let e = b.add_edge(n0, n1, None).expect("distinct nodes");
    let route = Route::new(RouteId(0), "diff", vec![e], &b.build()).expect("connected street");
    let aps: Vec<AccessPoint> = ap_offsets
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| AccessPoint::new(ApId(i as u32), Point::new(x, y)))
        .collect();
    (route, HomogeneousField::new(aps))
}

/// Builds the production (flat) and reference (map) positioners over the
/// same scene and configuration.
fn build_pair(
    route: &Route,
    field: &HomogeneousField,
    order: usize,
    tie_margin_db: i32,
) -> (RoutePositioner, ReferencePositioner) {
    let svd_cfg = SvdConfig {
        order,
        ..SvdConfig::default()
    };
    let pos_cfg = PositionerConfig {
        order,
        tie_margin_db,
        ..PositionerConfig::default()
    };
    let flat = RoutePositioner::new(
        route.clone(),
        RouteTileIndex::build(field, route, svd_cfg, 4.0),
        pos_cfg,
    );
    let reference = ReferencePositioner::new(
        route.clone(),
        ReferenceRouteIndex::build(field, route, svd_cfg, 4.0),
        pos_cfg,
    );
    (flat, reference)
}

/// The observed rank vector at arc length `s`, deterministically corrupted:
/// an adjacent swap (fading-induced rank flip), a dead-AP subset drop, an
/// optional unknown-AP splice, and an optional manufactured RSS tie.
fn observed(
    field: &HomogeneousField,
    route: &Route,
    s: f64,
    swap_at: usize,
    drop_mask: u32,
    inject_unknown: bool,
    make_tie: bool,
) -> Vec<(ApId, i32)> {
    let mut ranked: Vec<(ApId, i32)> = field
        .detectable_at(route.point_at(s), -90.0)
        .into_iter()
        .map(|(ap, rss)| (ap, rss.round() as i32))
        .collect();
    if ranked.len() >= 2 {
        let i = swap_at % (ranked.len() - 1);
        ranked.swap(i, i + 1);
    }
    let mut k = 0u32;
    ranked.retain(|_| {
        let keep = (drop_mask >> (k % 32)) & 1 == 0;
        k += 1;
        keep
    });
    if make_tie && ranked.len() >= 2 {
        ranked[1].1 = ranked[0].1;
    }
    if inject_unknown {
        // An AP the diagram has never seen: must miss, never alias.
        ranked.insert(0, (ApId(50_000 + swap_at as u32), -35));
    }
    ranked
}

/// Exact fix equality, down to the f64 bits of every coordinate.
fn assert_fixes_identical(
    flat: &Option<Fix>,
    reference: &Option<Fix>,
) -> Result<(), TestCaseError> {
    match (flat, reference) {
        (None, None) => Ok(()),
        (Some(f), Some(r)) => {
            prop_assert_eq!(f.method, r.method, "method diverged");
            prop_assert_eq!(
                f.s.to_bits(),
                r.s.to_bits(),
                "s diverged: {} vs {}",
                f.s,
                r.s
            );
            prop_assert_eq!(f.point.x.to_bits(), r.point.x.to_bits());
            prop_assert_eq!(f.point.y.to_bits(), r.point.y.to_bits());
            prop_assert_eq!(f.interval.0.to_bits(), r.interval.0.to_bits());
            prop_assert_eq!(f.interval.1.to_bits(), r.interval.1.to_bits());
            prop_assert_eq!(f.time_s.to_bits(), r.time_s.to_bits());
            Ok(())
        }
        (f, r) => {
            prop_assert!(false, "one path fixed, the other missed: {f:?} vs {r:?}");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single fixes over randomized scenes and corruptions match exactly.
    #[test]
    fn flat_fixes_match_reference(
        len_km in 0.6f64..1.2,
        ap_slots in proptest::collection::vec((0.0f64..1.0, -30.0f64..30.0), 4..16),
        order in 2usize..4,
        tie_margin_db in 0i32..3,
        probes in proptest::collection::vec(
            (0.0f64..1.0, 0usize..8, any::<u32>(), any::<bool>(), any::<bool>()),
            1..6,
        ),
    ) {
        let len_m = len_km * 1_000.0;
        let offsets: Vec<(f64, f64)> =
            ap_slots.iter().map(|&(fx, y)| (fx * len_m, y)).collect();
        let (route, field) = street(len_m, &offsets);
        let (flat, reference) = build_pair(&route, &field, order, tie_margin_db);
        for (frac, swap_at, drop_mask, inject, tie) in probes {
            let s = frac * len_m;
            let ranked = observed(&field, &route, s, swap_at, drop_mask, inject, tie);
            let f = flat.locate(&ranked, 0.0, None);
            let r = reference.locate(&ranked, 0.0, None);
            assert_fixes_identical(&f, &r)?;
        }
    }

    /// Prior-chained trajectories (the tracking workload, including the
    /// mobility constraint and dead reckoning through empty scans) match
    /// exactly step for step.
    #[test]
    fn flat_prior_chains_match_reference(
        ap_slots in proptest::collection::vec((0.0f64..1.0, -30.0f64..30.0), 5..14),
        order in 2usize..4,
        steps in proptest::collection::vec(
            (0usize..8, any::<u32>(), any::<bool>()),
            3..10,
        ),
    ) {
        let len_m = 900.0;
        let offsets: Vec<(f64, f64)> =
            ap_slots.iter().map(|&(fx, y)| (fx * len_m, y)).collect();
        let (route, field) = street(len_m, &offsets);
        let (flat, reference) = build_pair(&route, &field, order, 1);
        let mut prior: Option<Prior> = None;
        for (i, (swap_at, drop_mask, tie)) in steps.into_iter().enumerate() {
            let t = i as f64 * 10.0;
            let s = (t * 9.0).min(len_m - 1.0);
            let ranked = observed(&field, &route, s, swap_at, drop_mask, false, tie);
            let f = flat.locate(&ranked, t, prior);
            let r = reference.locate(&ranked, t, prior);
            assert_fixes_identical(&f, &r)?;
            // Chain the (shared) reference fix so both paths see the same
            // prior even if a divergence were about to happen.
            prior = r.map(|fix| Prior { s: fix.s, time_s: fix.time_s });
        }
    }
}

/// The flat path is scratch-per-call and lock-free: replaying the same
/// scan stream from 1, 2 and 4 threads must reproduce the single-thread
/// (and reference) fixes bit for bit.
#[test]
fn threaded_replays_are_bit_identical() {
    let len_m = 1_000.0;
    let offsets: Vec<(f64, f64)> = (0..14)
        .map(|i| {
            (
                40.0 + i as f64 * 70.0,
                if i % 2 == 0 { 18.0 } else { -18.0 },
            )
        })
        .collect();
    let (route, field) = street(len_m, &offsets);
    let (flat, reference) = build_pair(&route, &field, 2, 1);

    // A fixed scan stream with every corruption class represented.
    let stream: Vec<Vec<(ApId, i32)>> = (0..60)
        .map(|i| {
            let s = 8.0 + (i as f64 * 16.4) % (len_m - 16.0);
            observed(
                &field,
                &route,
                s,
                i % 5,
                (i as u32).wrapping_mul(0x9E37_79B9),
                i % 11 == 3,
                i % 7 == 2,
            )
        })
        .collect();

    let run = |positioner: &RoutePositioner| -> Vec<Option<Fix>> {
        stream
            .iter()
            .enumerate()
            .map(|(i, ranked)| positioner.locate(ranked, i as f64 * 10.0, None))
            .collect()
    };
    let single = run(&flat);
    let oracle: Vec<Option<Fix>> = stream
        .iter()
        .enumerate()
        .map(|(i, ranked)| reference.locate(ranked, i as f64 * 10.0, None))
        .collect();
    assert_eq!(single, oracle, "flat diverged from map-based reference");

    for threads in [2usize, 4] {
        let mut replays: Vec<Vec<Option<Fix>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(|| run(&flat))).collect();
            for h in handles {
                replays.push(h.join().expect("replay thread"));
            }
        });
        for replay in replays {
            assert_eq!(replay, single, "{threads}-thread replay diverged");
        }
    }
}

/// FixMethod classification is part of the contract: manufactured ties
/// must come back `TieBoundary` (or better) on both paths identically,
/// and corrupt vectors must classify identically too.
#[test]
fn fix_method_classification_matches() {
    let len_m = 800.0;
    let offsets: Vec<(f64, f64)> = (0..10)
        .map(|i| {
            (
                40.0 + i as f64 * 80.0,
                if i % 2 == 0 { 15.0 } else { -15.0 },
            )
        })
        .collect();
    let (route, field) = street(len_m, &offsets);
    let (flat, reference) = build_pair(&route, &field, 2, 1);
    let mut methods = std::collections::BTreeMap::new();
    for i in 0..160 {
        let s = 4.0 + (i as f64 * 5.0) % (len_m - 8.0);
        let ranked = observed(
            &field,
            &route,
            s,
            i % 4,
            if i % 3 == 0 { 0b10 } else { 0 },
            i % 13 == 5,
            i % 2 == 0,
        );
        let f = flat.locate(&ranked, 0.0, None);
        let r = reference.locate(&ranked, 0.0, None);
        assert_eq!(
            f.map(|x| x.method),
            r.map(|x| x.method),
            "classification diverged at probe {i}"
        );
        if let Some(fix) = f {
            *methods.entry(format!("{:?}", fix.method)).or_insert(0u32) += 1;
        }
    }
    // The probe mix must actually exercise more than one resolution path,
    // otherwise this test pins nothing.
    assert!(
        methods.len() >= 2,
        "probe mix exercised only {methods:?} — widen the corruptions"
    );
}

//! Flight-recorder retention invariants.
//!
//! Two properties the tail-sampler must hold under any workload: the
//! retention buffer never exceeds its byte cap (it sheds oldest-first
//! instead of growing), and in a deterministic replay every
//! anomaly-flagged ingest is retained exactly once — anomaly retention
//! is a pure function of the report stream, not of timing.

use std::sync::Arc;

use proptest::prelude::*;
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::geo::Point;
use wilocator::obs::{SteppingClock, TraceConfig, Tracer};
use wilocator::rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan, SignalField};
use wilocator::road::{NetworkBuilder, Route, RouteId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The retention buffer's byte accounting never exceeds the cap, no
    /// matter how spans and fields are shaped; the per-shard rings never
    /// exceed their slot capacity either.
    #[test]
    fn retention_never_exceeds_byte_cap(
        cap_kb in 1usize..8,
        trace_shapes in proptest::collection::vec((1usize..6, 0usize..5), 1..40),
    ) {
        let config = TraceConfig {
            retained_bytes: cap_kb * 1024,
            ring_capacity: 4,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(config, 2, Arc::new(SteppingClock::new(0, 7)));
        for (i, &(spans, fields)) in trace_shapes.iter().enumerate() {
            let ctx = tracer.start_root_span(i % 2, "ingest").expect("enabled");
            ctx.flag_anomaly("unknown_bus");
            for s in 0..spans {
                let span = ctx.child_span("stage");
                for f in 0..fields {
                    span.field("k", (s * 31 + f) as u64);
                }
            }
            drop(ctx);
            prop_assert!(
                tracer.retention_bytes() <= config.retained_bytes,
                "retention {} exceeds cap {}",
                tracer.retention_bytes(),
                config.retained_bytes
            );
            prop_assert!(tracer.ring_lens().iter().all(|&l| l <= config.ring_capacity));
        }
        // The byte gauge agrees with the retained set's own accounting.
        let accounted: usize = tracer.retained().iter().map(|t| t.approx_bytes()).sum();
        prop_assert_eq!(tracer.retention_bytes(), accounted);
    }
}

fn scene() -> (WiLocator, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(400.0, 0.0));
    let n2 = b.add_node(Point::new(800.0, 0.0));
    let e0 = b.add_edge(n0, n1, None).expect("distinct nodes");
    let e1 = b.add_edge(n1, n2, None).expect("distinct nodes");
    let net = b.build();
    let mut route = Route::new(RouteId(0), "9", vec![e0, e1], &net).expect("connected street");
    route.add_stops_evenly(3);
    let mut aps = Vec::new();
    let mut x = 40.0;
    let mut i = 0u32;
    while x < 800.0 {
        aps.push(AccessPoint::new(
            ApId(i),
            Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
        ));
        i += 1;
        x += 80.0;
    }
    let field = HomogeneousField::new(aps);
    let server = WiLocator::new_with_clock(
        &field,
        vec![route],
        WiLocatorConfig::default(),
        Arc::new(SteppingClock::new(0, 1)),
    );
    (server, field)
}

fn report(field: &HomogeneousField, route: &Route, s: f64, t: f64, bus: u64) -> ScanReport {
    let p = route.point_at(s);
    let readings: Vec<Reading> = field
        .detectable_at(p, -90.0)
        .into_iter()
        .map(|(ap, rss)| Reading {
            ap,
            bssid: Bssid::from_ap_id(ap),
            rss_dbm: rss.round() as i32,
        })
        .collect();
    ScanReport {
        bus: BusKey(bus),
        time_s: t,
        scans: vec![Scan::new(t, readings)],
    }
}

/// A deterministic replay that interleaves healthy ingests with known
/// anomalies: every anomaly-flagged ingest must land in the retained set
/// exactly once, and nothing healthy may be retained as an anomaly.
#[test]
fn every_anomalous_ingest_is_retained_exactly_once() {
    let (server, field) = scene();
    let route = server.routes()[0].clone();
    server.register_bus(BusKey(1), RouteId(0)).expect("served");

    let mut expected_unknown = 0u64;
    for k in 0..12u32 {
        let t = f64::from(k) * 10.0;
        server
            .ingest(&report(&field, &route, t * 6.0, t, 1))
            .expect("registered");
        if k.is_multiple_of(3) {
            // Unregistered bus: the directory rejects it, the recorder
            // keeps an anomaly-flagged root span.
            assert!(server.ingest(&report(&field, &route, 0.0, t, 77)).is_err());
            expected_unknown += 1;
        }
    }
    // A batch with one more unknown bus mixed in.
    let mut batch: Vec<ScanReport> = (12..16u32)
        .map(|k| {
            let t = f64::from(k) * 10.0;
            report(&field, &route, (t * 6.0).min(790.0), t, 1)
        })
        .collect();
    batch.push(report(&field, &route, 0.0, 160.0, 88));
    expected_unknown += 1;
    assert_eq!(
        server
            .ingest_batch(&batch)
            .iter()
            .filter(|r| r.is_err())
            .count(),
        1
    );

    let retained = server.tracer().retained();
    let unknown: Vec<_> = retained
        .iter()
        .filter(|t| t.anomaly == Some("unknown_bus"))
        .collect();
    assert_eq!(
        unknown.len() as u64,
        expected_unknown,
        "each unknown-bus ingest retained once"
    );
    // Exactly once: no trace id appears twice in the retained set.
    let mut ids: Vec<u64> = retained.iter().map(|t| t.trace_id).collect();
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "retained set holds no duplicate traces");
    // Healthy ingests were not retained as anomalies, and the metrics
    // ledger agrees with the retained set.
    let anomalous = retained.iter().filter(|t| t.anomaly.is_some()).count() as u64;
    let snap = server.metrics();
    assert_eq!(
        snap.counter("wilocator_trace_retained_anomaly_total"),
        anomalous
    );
    // Replaying the identical stream retains the identical anomaly set.
    let (server2, field2) = scene();
    let route2 = server2.routes()[0].clone();
    server2.register_bus(BusKey(1), RouteId(0)).expect("served");
    for k in 0..12u32 {
        let t = f64::from(k) * 10.0;
        server2
            .ingest(&report(&field2, &route2, t * 6.0, t, 1))
            .expect("registered");
        if k.is_multiple_of(3) {
            assert!(server2
                .ingest(&report(&field2, &route2, 0.0, t, 77))
                .is_err());
        }
    }
    let mut batch2: Vec<ScanReport> = (12..16u32)
        .map(|k| {
            let t = f64::from(k) * 10.0;
            report(&field2, &route2, (t * 6.0).min(790.0), t, 1)
        })
        .collect();
    batch2.push(report(&field2, &route2, 0.0, 160.0, 88));
    server2.ingest_batch(&batch2);
    let ids2: Vec<u64> = server2
        .tracer()
        .retained()
        .iter()
        .filter(|t| t.anomaly.is_some())
        .map(|t| t.trace_id)
        .collect();
    let ids1: Vec<u64> = retained
        .iter()
        .filter(|t| t.anomaly.is_some())
        .map(|t| t.trace_id)
        .collect();
    assert_eq!(ids1, ids2, "anomaly retention is replay-deterministic");
}

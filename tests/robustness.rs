//! Failure-injection integration tests: AP churn, missing scans,
//! out-of-order reports, empty histories.

use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::rf::{ApId, Scan, SignalField};
use wilocator::road::RouteId;
use wilocator::sim::{
    sense_trip, simple_street, simulate_trip, BusConfig, CityConfig, SensingConfig, TrafficConfig,
    TrafficModel,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (wilocator::sim::City, WiLocator) {
    let city = simple_street(1_500.0, 4, 21, &CityConfig::default());
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    (city, server)
}

fn drive_trip(
    city: &wilocator::sim::City,
    server: &WiLocator,
    bus: u64,
    seed: u64,
    mutate: impl Fn(usize, ScanReport) -> Option<ScanReport>,
) -> (usize, f64) {
    let route = city.routes[0].clone();
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let tr = simulate_trip(
        &route,
        &traffic,
        12.0 * 3_600.0,
        &BusConfig::default(),
        &mut rng,
    );
    let idx = city.ap_index();
    let bundles = sense_trip(city, &tr, 0, &SensingConfig::default(), &idx, &mut rng);
    server
        .register_bus(BusKey(bus), RouteId(0))
        .expect("route served");
    let mut fixes = 0usize;
    let mut err = 0.0;
    for (i, b) in bundles.iter().enumerate() {
        let report = ScanReport {
            bus: BusKey(bus),
            time_s: b.time_s,
            scans: b.scans.clone(),
        };
        let Some(report) = mutate(i, report) else {
            continue;
        };
        if let Some(fix) = server.ingest(&report).expect("registered") {
            fixes += 1;
            err += (fix.s - b.true_s).abs();
        }
    }
    server.finish_bus(BusKey(bus)).expect("registered");
    (
        fixes,
        if fixes > 0 {
            err / fixes as f64
        } else {
            f64::NAN
        },
    )
}

#[test]
fn survives_dropped_reports() {
    let (city, server) = setup();
    // Two-thirds of the reports never reach the server.
    let (fixes, mean_err) = drive_trip(&city, &server, 1, 5, |i, r| (i % 3 == 0).then_some(r));
    assert!(fixes > 5, "{fixes} fixes");
    assert!(
        mean_err < 80.0,
        "mean error {mean_err} m with dropped reports"
    );
}

#[test]
fn survives_out_of_order_reports() {
    let (city, server) = setup();
    // Every fourth report arrives with a stale timestamp; it must be
    // dropped, not crash or corrupt the trajectory.
    let (fixes, mean_err) = drive_trip(&city, &server, 2, 6, |i, mut r| {
        if i % 4 == 3 {
            r.time_s -= 35.0;
        }
        Some(r)
    });
    assert!(fixes > 10);
    assert!(mean_err < 60.0, "mean error {mean_err} m with reordering");
    // The recorded trajectory must be time-monotone despite the input.
}

#[test]
fn survives_empty_and_garbage_scans() {
    let (city, server) = setup();
    let (fixes, mean_err) = drive_trip(&city, &server, 3, 7, |i, mut r| {
        match i % 5 {
            // Periodically: nothing heard.
            1 => r.scans = vec![Scan::new(r.time_s, vec![])],
            // Periodically: a reading from an AP the server never heard of.
            2 => {
                for scan in &mut r.scans {
                    scan.readings.push(wilocator::rf::Reading {
                        ap: ApId(9_999),
                        bssid: wilocator::rf::Bssid::from_ap_id(ApId(9_999)),
                        rss_dbm: -40,
                    });
                }
            }
            _ => {}
        }
        Some(r)
    });
    assert!(fixes > 10);
    assert!(
        mean_err < 80.0,
        "mean error {mean_err} m with garbage scans"
    );
}

#[test]
fn survives_mid_trip_ap_outage() {
    let (city, server) = setup();
    let route = city.routes[0].clone();
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 8);
    let mut rng = StdRng::seed_from_u64(8);
    let tr = simulate_trip(
        &route,
        &traffic,
        12.0 * 3_600.0,
        &BusConfig::default(),
        &mut rng,
    );
    // Half the APs die mid-simulation: the physical field changes but the
    // server's SVD does not.
    let dead: Vec<ApId> = city
        .field
        .aps()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, ap)| ap.id())
        .collect();
    let mut broken = city.clone();
    broken.field = city.field.without_aps(&dead);
    let idx = broken.ap_index();
    let bundles = sense_trip(&broken, &tr, 0, &SensingConfig::default(), &idx, &mut rng);
    server.register_bus(BusKey(9), RouteId(0)).expect("served");
    let mut fixes = 0usize;
    let mut err = 0.0;
    for b in &bundles {
        if let Some(fix) = server
            .ingest(&ScanReport {
                bus: BusKey(9),
                time_s: b.time_s,
                scans: b.scans.clone(),
            })
            .expect("registered")
        {
            fixes += 1;
            err += (fix.s - b.true_s).abs();
        }
    }
    assert!(fixes > 10, "{fixes} fixes under 50 % AP outage");
    let mean_err = err / fixes as f64;
    // Degraded but not broken (the paper's AP-dynamics claim).
    assert!(mean_err < 150.0, "mean error {mean_err} m under churn");
}

#[test]
fn survives_one_ap_dying_mid_replay() {
    // The ISSUE scenario: a single AP goes dark halfway through a trip.
    // The server keeps serving fixes from the surviving APs — accuracy may
    // degrade near the dead AP but tracking must not stall or blow up.
    let (city, server) = setup();
    let route = city.routes[0].clone();
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 31);
    let mut rng = StdRng::seed_from_u64(31);
    let tr = simulate_trip(
        &route,
        &traffic,
        12.0 * 3_600.0,
        &BusConfig::default(),
        &mut rng,
    );

    // Sense the same trip against the healthy field and against a field
    // missing the AP nearest the route midpoint, from an identically
    // seeded RNG; switch streams at the halfway report.
    let mid = route.point_at(route.length() / 2.0);
    let dead = city
        .field
        .aps()
        .iter()
        .min_by(|a, b| {
            let (da, db) = (a.position().distance(mid), b.position().distance(mid));
            da.partial_cmp(&db).expect("finite")
        })
        .expect("city has APs")
        .id();
    let mut broken = city.clone();
    broken.field = city.field.without_aps(&[dead]);
    let idx = city.ap_index();
    let broken_idx = broken.ap_index();
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_b = StdRng::seed_from_u64(77);
    let healthy = sense_trip(&city, &tr, 0, &SensingConfig::default(), &idx, &mut rng_a);
    let outage = sense_trip(
        &broken,
        &tr,
        0,
        &SensingConfig::default(),
        &broken_idx,
        &mut rng_b,
    );
    let half = healthy.len() / 2;

    server.register_bus(BusKey(40), RouteId(0)).expect("served");
    let mut fixes_before = 0usize;
    let mut fixes_after = 0usize;
    let mut err = 0.0;
    for (i, b) in healthy[..half].iter().chain(&outage[half..]).enumerate() {
        if let Some(fix) = server
            .ingest(&ScanReport {
                bus: BusKey(40),
                time_s: b.time_s,
                scans: b.scans.clone(),
            })
            .expect("registered")
        {
            if i < half {
                fixes_before += 1;
            } else {
                fixes_after += 1;
            }
            err += (fix.s - b.true_s).abs();
        }
    }
    server.finish_bus(BusKey(40)).expect("registered");
    assert!(fixes_before > 5, "{fixes_before} fixes before the outage");
    assert!(
        fixes_after > 5,
        "tracking stalled after one AP died: {fixes_after} fixes"
    );
    let mean_err = err / (fixes_before + fixes_after) as f64;
    assert!(mean_err < 80.0, "mean error {mean_err} m with one dead AP");
}

#[test]
fn prediction_with_no_history_uses_fallback() {
    let (city, server) = setup();
    let route = city.routes[0].clone();
    // No trips ingested at all: the predictor falls back to cruise speed.
    let eta = server
        .predict_arrival_at(RouteId(0), 0.0, 0.0, route.length())
        .expect("served");
    let expect = route.length() / 6.0;
    assert!((eta - expect).abs() < 2.0, "fallback eta {eta} vs {expect}");
}

#[test]
fn double_registration_resets_the_tracker() {
    let (city, server) = setup();
    let (f1, _) = drive_trip(&city, &server, 5, 9, |_, r| Some(r));
    assert!(f1 > 0);
    // Same key reused for a new physical trip: must start clean.
    let (f2, mean_err) = drive_trip(&city, &server, 5, 10, |_, r| Some(r));
    assert!(f2 > 0);
    assert!(mean_err < 60.0, "stale state leaked: {mean_err} m");
}

#[test]
fn interner_saturation_errors_cleanly() {
    use wilocator::geo::Point;
    use wilocator::rf::{AccessPoint, HomogeneousField};
    use wilocator::road::{NetworkBuilder, Route};
    use wilocator::svd::{RouteTileIndex, SvdConfig, MAX_INTERNED_APS};

    // One AP more than the dense interner's u16-backed capacity. The
    // route index must refuse with a diagnostic — never truncate the AP
    // population or alias ids.
    let aps: Vec<AccessPoint> = (0..=MAX_INTERNED_APS as u32)
        .map(|i| AccessPoint::new(ApId(i), Point::new((i % 100) as f64, (i / 100) as f64)))
        .collect();
    let count = aps.len();
    let field = HomogeneousField::new(aps);

    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(120.0, 0.0));
    let e = b.add_edge(n0, n1, None).expect("distinct nodes");
    let route = Route::new(RouteId(9), "sat", vec![e], &b.build()).expect("street");

    let err = RouteTileIndex::try_build(&field, &route, SvdConfig::default(), 4.0)
        .expect_err("65k+1 APs must exceed interner capacity");
    let msg = err.to_string();
    assert!(
        msg.contains(&count.to_string()) && msg.contains(&MAX_INTERNED_APS.to_string()),
        "diagnostic must name both the population and the cap: {msg}"
    );
}

//! Flight-recorder golden: a deterministic replay — fixed scene, stepping
//! clock, single-threaded ingestion — must reproduce the checked-in trace
//! text dump byte-for-byte, and the Chrome export of the same replay must
//! parse as schema-valid, well-nested trace-event JSON.
//!
//! Determinism rests on three legs: trace ids come from one atomic
//! counter driven from one thread, span timestamps come from a
//! [`SteppingClock`], and the report stream is a fixed function of the
//! scene. Regenerate the fixture after an intentional change with
//! `WILOCATOR_BLESS=1 cargo test --test trace_golden`.

use std::sync::Arc;

use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::geo::Point;
use wilocator::obs::{SteppingClock, TraceConfig};
use wilocator::rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan, SignalField};
use wilocator::road::{NetworkBuilder, Route, RouteId, StopId};
use wilocator_tracedump::{parse_trace, validate_nesting, Json};

/// One 800 m street, one route, APs alternating either side — the same
/// scene the server unit tests drive, with a stepping span clock.
fn scene() -> (WiLocator, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(400.0, 0.0));
    let n2 = b.add_node(Point::new(800.0, 0.0));
    let e0 = b.add_edge(n0, n1, None).expect("distinct nodes");
    let e1 = b.add_edge(n1, n2, None).expect("distinct nodes");
    let net = b.build();
    let mut route = Route::new(RouteId(0), "9", vec![e0, e1], &net).expect("connected street");
    route.add_stops_evenly(3);
    let mut aps = Vec::new();
    let mut x = 40.0;
    let mut i = 0u32;
    while x < 800.0 {
        aps.push(AccessPoint::new(
            ApId(i),
            Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
        ));
        i += 1;
        x += 80.0;
    }
    let field = HomogeneousField::new(aps);
    // Full-detail tracing: the golden pins every child span, not just
    // the sampled subset the production default keeps.
    let config = WiLocatorConfig {
        trace: TraceConfig::detailed(),
        ..WiLocatorConfig::default()
    };
    let server = WiLocator::new_with_clock(
        &field,
        vec![route],
        config,
        Arc::new(SteppingClock::new(0, 1)),
    );
    (server, field)
}

fn report(field: &HomogeneousField, route: &Route, s: f64, t: f64, bus: u64) -> ScanReport {
    let p = route.point_at(s);
    let readings: Vec<Reading> = field
        .detectable_at(p, -90.0)
        .into_iter()
        .map(|(ap, rss)| Reading {
            ap,
            bssid: Bssid::from_ap_id(ap),
            rss_dbm: rss.round() as i32,
        })
        .collect();
    ScanReport {
        bus: BusKey(bus),
        time_s: t,
        scans: vec![Scan::new(t, readings)],
    }
}

/// The fixed replay: two buses (one via single ingests, one via a batch),
/// one unknown-bus rejection, one arrival prediction.
fn replay() -> WiLocator {
    let (server, field) = scene();
    let route = server.routes()[0].clone();
    server.register_bus(BusKey(1), RouteId(0)).expect("served");
    server.register_bus(BusKey(2), RouteId(0)).expect("served");
    for k in 0..6u32 {
        let t = f64::from(k) * 10.0;
        server
            .ingest(&report(&field, &route, t * 8.0, t, 1))
            .expect("registered");
    }
    let batch: Vec<ScanReport> = (0..4u32)
        .map(|k| report(&field, &route, f64::from(k) * 40.0, f64::from(k) * 10.0, 2))
        .collect();
    for result in server.ingest_batch(&batch) {
        result.expect("registered");
    }
    assert!(server
        .ingest(&report(&field, &route, 0.0, 0.0, 99))
        .is_err());
    server
        .predict_arrival(BusKey(1), StopId(2))
        .expect("stop ahead of bus 1");
    server
}

#[test]
fn deterministic_replay_reproduces_golden_trace_dump() {
    let got = replay().trace_text_dump();
    assert!(!got.is_empty(), "replay recorded traces");

    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/trace_golden.txt");
    if std::env::var_os("WILOCATOR_BLESS").is_some() {
        std::fs::write(&fixture, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&fixture).expect(
        "fixture missing — run WILOCATOR_BLESS=1 cargo test --test trace_golden to create it",
    );
    assert_eq!(
        got, want,
        "trace dump drifted from golden — bless the fixture if intentional"
    );
}

#[test]
fn replay_is_stable_across_runs() {
    assert_eq!(
        replay().trace_text_dump(),
        replay().trace_text_dump(),
        "two identical replays must dump identically"
    );
}

#[test]
fn chrome_export_is_schema_valid_and_nested() {
    let server = replay();
    let events = parse_trace(&server.trace_chrome_json()).expect("export parses");
    assert!(!events.is_empty());
    validate_nesting(&events).expect("spans nest");
    // Every event is a complete span with the pinned keys (enforced by
    // the parser) and the roots carry the structured ingest fields.
    let roots: Vec<_> = events
        .iter()
        .filter(|e| e.name == "ingest" && e.arg("outcome").is_some())
        .collect();
    assert!(!roots.is_empty(), "annotated ingest roots exported");
    assert!(roots
        .iter()
        .all(|e| e.arg("bus").and_then(Json::as_u64).is_some()));
    // The unknown-bus rejection is present and flagged.
    assert!(events
        .iter()
        .any(|e| e.arg("anomaly").and_then(Json::as_str) == Some("unknown_bus")));
    // The per-bus timeline finds the batch-ingested bus.
    assert_eq!(server.timeline(BusKey(2)).len(), 4);
}

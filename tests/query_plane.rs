//! Query-plane behaviour: staleness bounds under a paused publisher,
//! publish-after-ingest/train visibility, and the read path's
//! independence from shard ingest locks (the no-reader-blocking
//! guarantee the snapshot layer exists to provide).

mod common;

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use common::{seeded_day, to_report};
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::obs::{Clock, SteppingClock};
use wilocator::serve::{parse_request, respond, HttpLimits, Request};
use wilocator_tracedump::parse_json;

fn get(target: &str) -> Request {
    let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
    let (request, _) = parse_request(raw.as_bytes(), &HttpLimits::default())
        .expect("well-formed request line")
        .expect("complete request");
    request
}

fn register_all(server: &WiLocator, plan: &wilocator::sim::LoadPlan) {
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
}

fn ingest_slice(server: &WiLocator, reports: &[ScanReport]) {
    for chunk in reports.chunks(32) {
        for result in server.ingest_batch(chunk) {
            result.expect("registered bus");
        }
    }
}

/// Paused publisher: readers keep getting the last published epoch while
/// ingest runs on, the staleness reading grows, and a single resumed
/// publish cycle surfaces a fresh epoch.
#[test]
fn paused_publisher_serves_last_epoch_within_staleness_bound() {
    let (city, plan) = seeded_day(7);
    let mut config = WiLocatorConfig::default();
    config.query.publish_on_ingest = false;
    // Deterministic clocks: spans on one, staleness/latency on the other.
    let span_clock: Arc<dyn Clock> = Arc::new(SteppingClock::new(0, 1));
    let query_clock: Arc<dyn Clock> = Arc::new(SteppingClock::new(1_000, 1_000));
    let server = WiLocator::new_with_clocks(
        &city.server_field,
        city.routes.clone(),
        config,
        span_clock,
        query_clock,
    );
    register_all(&server, &plan);
    let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
    let mid = reports.len() / 2;

    // Unpublished is not stale: the empty pre-publish snapshot is a
    // well-defined epoch-0 answer, not a lagging one.
    assert_eq!(server.snapshot_epoch(), 0);
    assert_eq!(server.query_metrics().staleness_us(), 0);

    ingest_slice(&server, &reports[..mid]);
    assert_eq!(
        server.snapshot_epoch(),
        0,
        "publisher is paused — ingest must not publish"
    );

    let epoch = server.publish_snapshot(4.0 * 3_600.0);
    assert_eq!(epoch, 1);

    // Staleness grows monotonically on the query clock while paused.
    let s0 = server.query_metrics().staleness_us();
    for _ in 0..8 {
        let _ = server.query_metrics().staleness_us();
    }
    let s1 = server.query_metrics().staleness_us();
    assert!(
        s1 > s0,
        "staleness must grow while the publisher is paused ({s0} -> {s1})"
    );

    // More ingest with the publisher still paused: readers keep the last
    // epoch, and /healthz reports both the epoch and the lag.
    ingest_slice(&server, &reports[mid..]);
    assert_eq!(server.snapshot_epoch(), 1);
    assert_eq!(server.query_snapshot().epoch, 1);
    let health = respond(&server, &get("/healthz"));
    assert_eq!(health.status, 200);
    let body = parse_json(&health.body).expect("healthz is JSON");
    assert_eq!(body.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(body.get("epoch").and_then(|v| v.as_u64()), Some(1));
    let lag = body
        .get("staleness_us")
        .and_then(|v| v.as_u64())
        .expect("staleness_us is a number");
    assert!(lag > 0, "paused publisher must report non-zero staleness");

    // Resume: one publish cycle is enough to surface a fresh epoch and
    // re-arm the staleness base.
    let before = server.query_metrics().staleness_us();
    let resumed = server.publish_snapshot(10.0 * 3_600.0);
    assert_eq!(resumed, 2);
    assert_eq!(server.query_snapshot().epoch, 2);
    let after = server.query_metrics().staleness_us();
    assert!(
        after < before,
        "publishing must reset the staleness base ({before} -> {after})"
    );
}

/// Default config: every `ingest_batch` and every `train` ends with a
/// freshly published, coherent snapshot.
#[test]
fn ingest_and_train_publish_fresh_epochs() {
    let (city, plan) = seeded_day(5);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    register_all(&server, &plan);
    assert_eq!(server.snapshot_epoch(), 0);

    let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
    let first = reports.len().min(32);
    ingest_slice(&server, &reports[..first]);
    let e1 = server.snapshot_epoch();
    assert!(e1 >= 1, "ingest_batch must publish");
    let snap = server.query_snapshot();
    assert_eq!(snap.epoch, e1);
    assert!(snap.is_coherent());

    server.train(9.5 * 3_600.0);
    assert!(
        server.snapshot_epoch() > e1,
        "train must publish the retrained state"
    );
}

/// Runs `f` with *every* shard's ingest write lock held at once.
fn with_all_shards_locked(server: &WiLocator, shard: usize, f: &mut dyn FnMut()) {
    if shard == server.shard_count() {
        f();
    } else {
        server
            .quiesce_shard(shard, || with_all_shards_locked(server, shard + 1, f))
            .expect("shard index in range");
    }
}

/// The acceptance criterion, made executable: with every shard ingest
/// lock held (writers fully wedged), the whole query battery still
/// completes, because the read path never touches a shard lock. A
/// deadlock here surfaces as a clean timeout panic, not a hung test.
#[test]
fn queries_complete_while_every_shard_ingest_lock_is_held() {
    let (city, plan) = seeded_day(3);
    let server = Arc::new(WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    ));
    register_all(&server, &plan);
    let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
    ingest_slice(&server, &reports[..reports.len().min(256)]);
    server.train(9.0 * 3_600.0);

    let snapshot = server.query_snapshot();
    let bus = snapshot
        .buses
        .keys()
        .next()
        .copied()
        .expect("replay slice tracked at least one bus");
    let targets = vec![
        "/healthz".to_string(),
        "/metrics".to_string(),
        "/arrivals/0".to_string(),
        format!("/position/{}", bus.0),
        "/traffic/0".to_string(),
    ];

    assert!(server.shard_count() >= 2, "scene should exercise >1 shard");
    with_all_shards_locked(&server, 0, &mut || {
        let (tx, rx) = mpsc::channel();
        let srv = Arc::clone(&server);
        let batch = targets.clone();
        std::thread::spawn(move || {
            let statuses: Vec<(String, u16)> = batch
                .iter()
                .map(|t| (t.clone(), respond(&srv, &get(t)).status))
                .collect();
            let snap = srv.query_snapshot();
            let _ = tx.send((statuses, snap.epoch, snap.is_coherent()));
        });
        // If any query were to block on a shard ingest lock, this recv
        // times out and fails the test instead of hanging it.
        let (statuses, epoch, coherent) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("queries must complete while every shard ingest lock is held");
        for (target, status) in statuses {
            assert_eq!(status, 200, "GET {target} under full ingest lockout");
        }
        assert!(epoch >= 1);
        assert!(coherent);
    });
}

//! Incremental SVD maintenance battery: after AP churn (death, birth,
//! transmit-power change), `SignalVoronoiDiagram::apply_churn` must leave
//! the diagram **byte-identical** (via `encode()`) to a fresh full raster
//! of the post-churn field — the patch is an optimisation, never an
//! approximation.

use proptest::prelude::*;
use wilocator::geo::{BoundingBox, Point};
use wilocator::rf::{AccessPoint, ApId, LogDistance, PhysicalField, ShadowingField};
use wilocator::svd::{SignalVoronoiDiagram, SvdConfig};

fn bbox() -> BoundingBox {
    BoundingBox::new(Point::new(0.0, 0.0), Point::new(240.0, 160.0))
}

fn cfg() -> SvdConfig {
    SvdConfig {
        resolution_m: 4.0,
        ..SvdConfig::default()
    }
}

fn field(aps: &[AccessPoint], shadowing: &ShadowingField) -> PhysicalField {
    PhysicalField::new(aps.to_vec(), LogDistance::urban(), *shadowing)
}

/// One churn event drawn by the property: `kind` selects death / birth /
/// power change, `sel` picks the victim AP, `(fx, fy)` places a newborn
/// inside the bbox, `tx` is the new transmit power.
fn apply_event(
    aps: &mut Vec<AccessPoint>,
    next_id: &mut u32,
    kind: usize,
    sel: u32,
    fx: f64,
    fy: f64,
    tx: f64,
) -> ApId {
    let b = bbox();
    let birth_pos = Point::new(
        b.min.x + fx * (b.max.x - b.min.x),
        b.min.y + fy * (b.max.y - b.min.y),
    );
    // Deaths and power changes need a victim; fall back to a birth when
    // the population is too small to lose anyone.
    match if aps.len() <= 1 { 1 } else { kind } {
        0 => {
            let i = sel as usize % aps.len();
            aps.remove(i).id()
        }
        1 => {
            let id = ApId(*next_id);
            *next_id += 1;
            aps.push(AccessPoint::new(id, birth_pos).with_tx_power_dbm(tx));
            id
        }
        _ => {
            let i = sel as usize % aps.len();
            let id = aps[i].id();
            aps[i] = aps[i].clone().with_tx_power_dbm(tx);
            id
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized churn sequences over a physical (shadowed log-distance)
    /// field: after every single event the patched diagram encodes to the
    /// same bytes as a from-scratch raster.
    #[test]
    fn churn_sequence_matches_fresh_rebuild(
        seed in any::<u32>(),
        placements in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 12.0f64..30.0),
            3..8,
        ),
        events in proptest::collection::vec(
            (0usize..3, any::<u32>(), 0.0f64..1.0, 0.0f64..1.0, 10.0f64..35.0),
            1..5,
        ),
    ) {
        let b = bbox();
        let shadowing = ShadowingField::new(4.0, 60.0, seed as u64);
        let mut next_id = placements.len() as u32;
        let mut aps: Vec<AccessPoint> = placements
            .iter()
            .enumerate()
            .map(|(i, &(fx, fy, tx))| {
                AccessPoint::new(
                    ApId(i as u32),
                    Point::new(
                        b.min.x + fx * (b.max.x - b.min.x),
                        b.min.y + fy * (b.max.y - b.min.y),
                    ),
                )
                .with_tx_power_dbm(tx)
            })
            .collect();

        let mut diagram =
            SignalVoronoiDiagram::build(&field(&aps, &shadowing), b, cfg());
        for (kind, sel, fx, fy, tx) in events {
            let changed = apply_event(&mut aps, &mut next_id, kind, sel, fx, fy, tx);
            let post = field(&aps, &shadowing);
            diagram.apply_churn(&post, &[changed]);
            let fresh = SignalVoronoiDiagram::build(&post, b, cfg());
            prop_assert_eq!(
                diagram.encode(),
                fresh.encode(),
                "patched diagram diverged from fresh raster after event kind {}",
                kind
            );
        }
    }
}

/// Worst case for the patch path: a single hot AP whose coverage spans the
/// entire strip dies, invalidating (nearly) every cell at once. The patch
/// must still converge to the exact fresh raster.
#[test]
fn whole_strip_ap_death_matches_fresh_rebuild() {
    let b = BoundingBox::new(Point::new(0.0, 0.0), Point::new(400.0, 24.0));
    let shadowing = ShadowingField::new(4.0, 60.0, 0x5eed);
    let mut aps = vec![AccessPoint::new(ApId(0), Point::new(200.0, 12.0)).with_tx_power_dbm(40.0)];
    for i in 0..6u32 {
        aps.push(
            AccessPoint::new(ApId(i + 1), Point::new(30.0 + i as f64 * 65.0, 12.0))
                .with_tx_power_dbm(14.0),
        );
    }
    let config = SvdConfig {
        resolution_m: 4.0,
        ..SvdConfig::default()
    };
    let mut diagram = SignalVoronoiDiagram::build(&field(&aps, &shadowing), b, config);

    aps.remove(0);
    let post = field(&aps, &shadowing);
    let touched = diagram.apply_churn(&post, &[ApId(0)]);
    let fresh = SignalVoronoiDiagram::build(&post, b, config);
    assert_eq!(
        diagram.encode(),
        fresh.encode(),
        "whole-strip death patch diverged from fresh raster"
    );
    // The hot AP was detectable essentially everywhere, so the patch must
    // have visited essentially every cell — this pins the worst case as a
    // real full-coverage invalidation, not a trivially small one.
    let cells = (400.0 / 4.0) as usize * (24.0 / 4.0) as usize;
    assert!(
        touched >= cells / 2,
        "expected a near-total invalidation, got {touched} of {cells} cells"
    );
}

/// Several churn events folded into a single `apply_churn` call (the
/// batched nightly-reconciliation shape): two deaths and one birth in one
/// `changed` slice.
#[test]
fn batched_multi_ap_churn_matches_fresh_rebuild() {
    let b = bbox();
    let shadowing = ShadowingField::new(4.0, 60.0, 0xC0FFEE);
    let mut aps: Vec<AccessPoint> = (0..7u32)
        .map(|i| {
            AccessPoint::new(
                ApId(i),
                Point::new(20.0 + i as f64 * 32.0, 20.0 + (i as f64 * 37.0) % 120.0),
            )
            .with_tx_power_dbm(16.0 + i as f64)
        })
        .collect();
    let mut diagram = SignalVoronoiDiagram::build(&field(&aps, &shadowing), b, cfg());

    // Two deaths (ids 2 and 5) and one birth (id 100) applied atomically.
    aps.retain(|ap| ap.id() != ApId(2) && ap.id() != ApId(5));
    aps.push(AccessPoint::new(ApId(100), Point::new(150.0, 80.0)).with_tx_power_dbm(24.0));
    let post = field(&aps, &shadowing);
    let touched = diagram.apply_churn(&post, &[ApId(2), ApId(5), ApId(100)]);
    assert!(
        touched > 0,
        "churn of live APs must touch at least one cell"
    );
    let fresh = SignalVoronoiDiagram::build(&post, b, cfg());
    assert_eq!(
        diagram.encode(),
        fresh.encode(),
        "batched churn patch diverged from fresh raster"
    );
}

//! Shared scene and replay helpers for the integration tests: the
//! two-street city, its seeded day of service, and the batched
//! multi-thread replay the determinism suites are built on.

#![allow(dead_code)] // each test binary uses a subset

use wilocator::core::{BusKey, ScanReport, WiLocator, NONDETERMINISTIC_COUNTER_FAMILIES};
use wilocator::geo::{BoundingBox, Point};
use wilocator::rf::{
    AccessPoint, ApId, HomogeneousField, LogDistance, PhysicalField, ShadowingField,
};
use wilocator::road::{NetworkBuilder, Route, RouteId, Schedule};
use wilocator::sim::{
    simulate, City, LoadEvent, LoadPlan, SimulationConfig, TrafficConfig, TrafficModel,
};

/// Two disjoint 1.2 km streets, one route each, plus an express variant
/// riding the first street — the same two-shard scene the concurrency
/// tests replay.
pub fn two_street_city(seed: u64) -> City {
    let mut b = NetworkBuilder::new();
    let mut aps = Vec::new();
    let mut ap_id = 0u32;
    let mut streets = Vec::new();
    for (street, y) in [0.0f64, 900.0].iter().enumerate() {
        let mut prev = b.add_node(Point::new(0.0, *y));
        let mut edges = Vec::new();
        for k in 1..=4 {
            let node = b.add_node(Point::new(k as f64 * 300.0, *y));
            edges.push(b.add_edge(prev, node, None).expect("distinct nodes"));
            prev = node;
        }
        let mut x = 30.0;
        while x < 1_200.0 {
            aps.push(AccessPoint::new(
                ApId(ap_id),
                Point::new(x, y + if ap_id.is_multiple_of(2) { 18.0 } else { -18.0 }),
            ));
            ap_id += 1;
            x += 55.0;
        }
        streets.push((street, edges));
    }
    let network = b.build();
    let mut built = Vec::new();
    let (_, first_street_edges) = streets[0].clone();
    for (street, edges) in streets {
        let mut route = Route::new(
            RouteId(street as u32),
            if street == 0 { "9" } else { "14" },
            edges,
            &network,
        )
        .expect("connected street");
        route.add_stops_evenly(4);
        built.push(route);
    }
    let mut express = Route::new(RouteId(2), "9 express", first_street_edges, &network)
        .expect("connected street");
    express.add_stops_evenly(2);
    built.push(express);
    let bbox = BoundingBox::from_points(network.nodes().iter().map(|n| n.position()))
        .expect("non-empty network")
        .inflated(400.0);
    let shadowing = ShadowingField::new(4.0, 60.0, seed ^ 0x5AAD);
    let field = PhysicalField::new(aps.clone(), LogDistance::urban(), shadowing);
    City {
        network,
        routes: built,
        field,
        server_field: HomogeneousField::new(aps),
        towers: Vec::new(),
        bbox,
    }
}

/// One seeded morning of service on all three routes.
pub fn seeded_day(seed: u64) -> (City, LoadPlan) {
    let city = two_street_city(seed);
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let mut schedule = Schedule::new();
    for (route, headway) in [
        (RouteId(0), 1_200.0),
        (RouteId(1), 1_500.0),
        (RouteId(2), 1_800.0),
    ] {
        schedule.add_headway_service(route, 8.0 * 3_600.0, 9.5 * 3_600.0, headway);
    }
    let config = SimulationConfig {
        days: 1,
        seed,
        ..SimulationConfig::default()
    };
    let dataset = simulate(&city, &schedule, &traffic, &config);
    (city, LoadPlan::for_day(&dataset, 0))
}

/// The ingestible form of a load event.
pub fn to_report(event: &LoadEvent) -> ScanReport {
    ScanReport {
        bus: BusKey(event.trip_id as u64),
        time_s: event.time_s,
        scans: event.scans.clone(),
    }
}

/// Replays the full day through `ingest_batch` from `threads` threads
/// (lane-partitioned, 32 reports per batch), finishes every bus, trains.
pub fn replay_batched(server: &WiLocator, plan: &LoadPlan, threads: usize) {
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
    std::thread::scope(|scope| {
        for lane in plan.lanes(threads) {
            scope.spawn(move || {
                let reports: Vec<ScanReport> =
                    lane.iter().map(|&i| to_report(&plan.events[i])).collect();
                for chunk in reports.chunks(32) {
                    for result in server.ingest_batch(chunk) {
                        result.expect("registered bus");
                    }
                }
            });
        }
    });
    for (trip, _) in plan.trip_routes() {
        server
            .finish_bus(BusKey(trip as u64))
            .expect("registered bus");
    }
    server.train(10.0 * 3_600.0);
}

/// The snapshot's deterministic lines with the chunking-dependent
/// counter families stripped — the canonical comparison form.
pub fn deterministic_snapshot(server: &WiLocator) -> String {
    server
        .metrics()
        .deterministic_lines()
        .lines()
        .filter(|line| {
            let family = line
                .split(['{', ' '])
                .next()
                .expect("non-empty metric line");
            !NONDETERMINISTIC_COUNTER_FAMILIES.contains(&family)
        })
        .map(|line| format!("{line}\n"))
        .collect()
}

/// Compares `got` against the golden fixture at `tests/fixtures/<name>`,
/// blessing it instead when `WILOCATOR_BLESS` is set.
pub fn assert_matches_fixture(got: &str, name: &str) {
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    if std::env::var_os("WILOCATOR_BLESS").is_some() {
        std::fs::write(&fixture, got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&fixture).unwrap_or_else(|_| {
        panic!("fixture {name} missing — run WILOCATOR_BLESS=1 cargo test to create it")
    });
    assert_eq!(
        got, &want,
        "{name} drifted from golden — bless the fixture if intentional"
    );
}

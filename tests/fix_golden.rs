//! Golden fix transcripts: the positioning pipeline's output — method,
//! arc length (to the f64 bit), interval — pinned for the campus drive-by
//! (Table II / Fig. 10) and the Table-I urban multi-route scenario.
//!
//! Bless with `WILOCATOR_BLESS=1 cargo test --test fix_golden`; any
//! subsequent byte drift in these transcripts is a positioning-kernel
//! regression, not noise.

mod common;

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator::rf::{ApId, Scanner, ScannerConfig};
use wilocator::sim::{campus, vancouver_like, CityConfig};
use wilocator::svd::{Fix, PositionerConfig, Prior, RoutePositioner, RouteTileIndex, SvdConfig};

fn fix_line(out: &mut String, label: &str, truth_s: f64, fix: &Option<Fix>) {
    match fix {
        Some(f) => {
            let _ = writeln!(
                out,
                "{label} truth={truth_s:.1} method={:?} s_bits={:016x} s={:.3} iv=[{:.3},{:.3}]",
                f.method,
                f.s.to_bits(),
                f.s,
                f.interval.0,
                f.interval.1,
            );
        }
        None => {
            let _ = writeln!(out, "{label} truth={truth_s:.1} miss");
        }
    }
}

/// The Fig. 10 campus drive-by: three probes of the eleven-AP segment,
/// positioned by the production flat route index.
#[test]
fn campus_fixes_match_golden() {
    let scene = campus(1);
    let city = &scene.city;
    let route = &city.routes[0];
    let svd_cfg = SvdConfig {
        resolution_m: 1.0,
        ..SvdConfig::default()
    };
    let index = RouteTileIndex::build(&city.server_field, route, svd_cfg, 0.5);
    let positioner = RoutePositioner::new(route.clone(), index, PositionerConfig::default());

    let scanner = Scanner::new(ScannerConfig {
        fading_sigma_db: 2.0,
        miss_probability: 0.0,
        ..ScannerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(1 ^ 0xF1610);
    let mut out = String::new();
    for &(name, truth_s) in &scene.probes {
        let scan = scanner.scan(&city.field, route.point_at(truth_s), 0.0, &mut rng);
        let ranked: Vec<(ApId, i32)> = scan.ranked();
        let fix = positioner.locate(&ranked, 0.0, None);
        fix_line(&mut out, &format!("campus {name}"), truth_s, &fix);
    }
    common::assert_matches_fixture(&out, "fix_golden_campus.txt");
}

/// The Table-I urban scenario: every route of the Vancouver-like city
/// driven end to end in 150 m hops with prior chaining — the tracking
/// workload the flat kernels serve in production.
#[test]
fn urban_fixes_match_golden() {
    let city = vancouver_like(7, &CityConfig::default());
    let scanner = Scanner::new(ScannerConfig {
        fading_sigma_db: 2.0,
        miss_probability: 0.0,
        ..ScannerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(7 ^ 0x0BA2);
    let mut out = String::new();
    for route in &city.routes {
        let index = RouteTileIndex::build(&city.server_field, route, SvdConfig::default(), 2.0);
        let positioner = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
        let mut prior: Option<Prior> = None;
        let mut truth_s = 75.0;
        while truth_s < route.length() {
            let time_s = truth_s / 10.0;
            let scan = scanner.scan(&city.field, route.point_at(truth_s), time_s, &mut rng);
            let ranked: Vec<(ApId, i32)> = scan.ranked();
            let fix = positioner.locate(&ranked, time_s, prior);
            fix_line(
                &mut out,
                &format!("urban route={}", route.id().0),
                truth_s,
                &fix,
            );
            prior = fix.map(|f| Prior {
                s: f.s,
                time_s: f.time_s,
            });
            truth_s += 150.0;
        }
    }
    common::assert_matches_fixture(&out, "fix_golden_urban.txt");
}

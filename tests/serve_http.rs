//! End-to-end serve integration: boot the HTTP front end on an
//! ephemeral port over a replayed slice of a seeded day, hit every
//! endpoint through a real TCP socket, and validate the JSON with the
//! tracedump parser. This is the test CI's serve step runs.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use common::{seeded_day, to_report};
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::serve::{serve, ServeConfig, ServerHandle};
use wilocator_tracedump::{parse_json, Json};

/// Replays the first 256 events of a seeded morning and boots the
/// front end on an ephemeral loopback port.
fn boot() -> (Arc<WiLocator>, ServerHandle) {
    let (city, plan) = seeded_day(13);
    let server = Arc::new(WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    ));
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
    let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
    for chunk in reports[..reports.len().min(256)].chunks(32) {
        for result in server.ingest_batch(chunk) {
            result.expect("registered bus");
        }
    }
    server.train(9.0 * 3_600.0);
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", ServeConfig::default())
        .expect("bind ephemeral port");
    (server, handle)
}

/// One full HTTP exchange on a fresh connection (`Connection: close`).
/// Returns (status, head, body).
fn fetch(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: wilocator\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

fn fetch_json(addr: SocketAddr, target: &str) -> Json {
    let (status, head, body) = fetch(addr, target);
    assert_eq!(status, 200, "GET {target}: {body}");
    assert_eq!(
        header(&head, "content-type"),
        Some("application/json"),
        "GET {target}"
    );
    let advertised: usize = header(&head, "content-length")
        .expect("content-length header")
        .parse()
        .expect("numeric content-length");
    assert_eq!(advertised, body.len(), "GET {target}: framing must match");
    parse_json(&body).unwrap_or_else(|e| panic!("GET {target}: invalid JSON ({e}): {body}"))
}

#[test]
fn every_endpoint_answers_valid_json_over_tcp() {
    let (server, handle) = boot();
    let addr = handle.local_addr();

    let health = fetch_json(addr, "/healthz");
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    let epoch = health
        .get("epoch")
        .and_then(|v| v.as_u64())
        .expect("epoch is a number");
    assert_eq!(epoch, server.snapshot_epoch());
    assert!(health
        .get("staleness_us")
        .and_then(|v| v.as_u64())
        .is_some());

    let arrivals = fetch_json(addr, "/arrivals/0");
    assert_eq!(arrivals.get("stop").and_then(|v| v.as_str()), Some("s0"));
    let Some(Json::Arr(routes)) = arrivals.get("routes") else {
        panic!("routes must be an array");
    };
    assert!(!routes.is_empty(), "every route publishes a stop-0 table");
    for route in routes {
        assert!(route.get("route").and_then(|v| v.as_str()).is_some());
        let Some(Json::Arr(entries)) = route.get("arrivals") else {
            panic!("arrivals must be an array");
        };
        for entry in entries {
            assert!(entry.get("bus").and_then(|v| v.as_str()).is_some());
            assert!(entry.get("eta_s").and_then(|v| v.as_f64()).is_some());
            assert!(entry
                .get("from_fix_time_s")
                .and_then(|v| v.as_f64())
                .is_some());
        }
    }

    let bus = server
        .query_snapshot()
        .buses
        .keys()
        .next()
        .copied()
        .expect("replay slice tracked at least one bus");
    let position = fetch_json(addr, &format!("/position/{}", bus.0));
    assert_eq!(
        position.get("bus").and_then(|v| v.as_str()),
        Some(bus.to_string().as_str())
    );
    assert_eq!(position.get("epoch").and_then(|v| v.as_u64()), Some(epoch));
    let fix = position.get("fix").expect("fix object");
    for field in ["s", "x", "y", "time_s"] {
        assert!(fix.get(field).and_then(|v| v.as_f64()).is_some(), "{field}");
    }
    assert!(fix.get("method").and_then(|v| v.as_str()).is_some());

    let traffic = fetch_json(addr, "/traffic/0");
    assert_eq!(traffic.get("route").and_then(|v| v.as_str()), Some("R0"));
    let Some(Json::Arr(segments)) = traffic.get("segments") else {
        panic!("segments must be an array");
    };
    assert!(!segments.is_empty());
    for segment in segments {
        assert!(segment.get("edge").and_then(|v| v.as_str()).is_some());
        assert!(segment.get("state").and_then(|v| v.as_str()).is_some());
        assert!(segment.get("z").and_then(|v| v.as_f64()).is_some());
    }

    let (status, head, body) = fetch(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        header(&head, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(
        body.contains("wilocator_queries_total"),
        "query-plane counters must be in the exposition"
    );

    handle.shutdown();
}

#[test]
fn debug_endpoints_answer_valid_json_over_tcp() {
    let (server, handle) = boot();
    let addr = handle.local_addr();
    let epoch = server.snapshot_epoch();

    let timeseries = fetch_json(addr, "/debug/timeseries");
    assert_eq!(
        timeseries.get("epoch").and_then(|v| v.as_u64()),
        Some(epoch)
    );
    let Some(Json::Arr(series)) = timeseries.get("series") else {
        panic!("series must be an array");
    };
    assert!(!series.is_empty(), "tracked families publish a series each");
    for view in series {
        assert!(view.get("family").and_then(|v| v.as_str()).is_some());
        let kind = view.get("kind").and_then(|v| v.as_str()).expect("kind");
        assert!(["counter", "gauge", "histogram"].contains(&kind), "{kind}");
        let Some(Json::Arr(points)) = view.get("points") else {
            panic!("points must be an array");
        };
        for point in points {
            assert!(point.get("start_us").and_then(|v| v.as_u64()).is_some());
        }
    }

    let quality = fetch_json(addr, "/debug/quality");
    let Some(Json::Arr(routes)) = quality.get("routes") else {
        panic!("routes must be an array");
    };
    for route in routes {
        assert!(route.get("route").and_then(|v| v.as_str()).is_some());
        let Some(Json::Arr(horizons)) = route.get("horizons") else {
            panic!("horizons must be an array");
        };
        for h in horizons {
            assert!(h.get("horizon_s").and_then(|v| v.as_f64()).is_some());
            assert!(h.get("confirmed_total").and_then(|v| v.as_u64()).is_some());
            assert!(h.get("p90_s").and_then(|v| v.as_f64()).is_some());
        }
    }
    let (status, _, _) = fetch(addr, "/debug/quality?route=99");
    assert_eq!(status, 404, "unknown route filter is a 404");
    let (status, _, _) = fetch(addr, "/debug/quality?route=abc");
    assert_eq!(status, 400, "malformed route filter is a 400");

    let slo = fetch_json(addr, "/debug/slo");
    assert!(slo.get("staleness_s").and_then(|v| v.as_f64()).is_some());
    let Some(Json::Arr(detectors)) = slo.get("detectors") else {
        panic!("detectors must be an array");
    };
    let names: Vec<&str> = detectors
        .iter()
        .filter_map(|d| d.get("name").and_then(|v| v.as_str()))
        .collect();
    for expected in [
        "dead_reckon_fraction",
        "tile_miss_fraction",
        "ap_churn_fraction",
        "snapshot_staleness",
    ] {
        assert!(names.contains(&expected), "missing detector {expected}");
    }
    for d in detectors {
        assert!(d.get("fired").is_some());
        assert!(d.get("short_burn").and_then(|v| v.as_f64()).is_some());
        assert!(d
            .get("exemplar_trace_ids")
            .is_some_and(|v| matches!(v, Json::Arr(_))));
    }

    handle.shutdown();
}

#[test]
fn subscribe_long_polls_until_publish_or_timeout() {
    let (server, handle) = boot();
    let addr = handle.local_addr();
    let epoch = server.snapshot_epoch();
    assert!(epoch > 0, "boot replay published at least one snapshot");

    // Stale epoch: answers immediately with the current one.
    let caught_up = fetch_json(addr, "/subscribe?epoch=0&timeout_ms=10000");
    assert_eq!(caught_up.get("epoch").and_then(|v| v.as_u64()), Some(epoch));
    assert_eq!(caught_up.get("advanced"), Some(&Json::Bool(true)));

    // Current epoch and a short timeout: returns unadvanced.
    let timed_out = fetch_json(addr, &format!("/subscribe?epoch={epoch}&timeout_ms=50"));
    assert_eq!(timed_out.get("epoch").and_then(|v| v.as_u64()), Some(epoch));
    assert_eq!(timed_out.get("advanced"), Some(&Json::Bool(false)));

    // Current epoch and a long timeout: a publish on another thread
    // wakes the poll well before the deadline.
    std::thread::scope(|scope| {
        let waiter = scope.spawn(move || fetch_json(addr, &format!("/subscribe?epoch={epoch}")));
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.publish_snapshot(10.0 * 3_600.0);
        let woken = waiter.join().expect("subscriber thread");
        assert_eq!(woken.get("advanced"), Some(&Json::Bool(true)));
        assert!(woken.get("epoch").and_then(|v| v.as_u64()) > Some(epoch));
    });

    let (status, _, _) = fetch(addr, "/subscribe");
    assert_eq!(status, 400, "epoch parameter is required");
    let (status, _, _) = fetch(addr, "/subscribe?epoch=-1");
    assert_eq!(status, 400, "epoch must be a decimal integer");

    handle.shutdown();
}

#[test]
fn parallel_clients_share_the_worker_pool() {
    let (_server, handle) = boot();
    let addr = handle.local_addr();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                for target in ["/healthz", "/arrivals/0", "/traffic/0", "/metrics"] {
                    let (status, _, _) = fetch(addr, target);
                    assert_eq!(status, 200, "GET {target}");
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn shutdown_closes_the_listener() {
    let (_server, handle) = boot();
    let addr = handle.local_addr();
    let (status, _, _) = fetch(addr, "/healthz");
    assert_eq!(status, 200);
    handle.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}

//! Cross-crate consistency: the two positioning paths (planar Tile
//! Mapping vs route tile index) and the two diagram representations agree
//! where the paper says they must.

use wilocator::geo::{BoundingBox, Point};
use wilocator::rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator::road::{NetworkBuilder, Route, RouteId};
use wilocator::svd::{
    PositionerConfig, RoutePositioner, RouteTileIndex, SignalVoronoiDiagram, SvdConfig, TileMapper,
};

fn scene() -> (Route, HomogeneousField, BoundingBox) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(500.0, 0.0));
    let e = b.add_edge(n0, n1, None).unwrap();
    let route = Route::new(RouteId(0), "x", vec![e], &b.build()).unwrap();
    let mut aps = Vec::new();
    let mut x = 30.0;
    let mut i = 0u32;
    while x < 500.0 {
        aps.push(AccessPoint::new(
            ApId(i),
            Point::new(x, if i.is_multiple_of(2) { 20.0 } else { -20.0 }),
        ));
        i += 1;
        x += 70.0;
    }
    let field = HomogeneousField::new(aps);
    let bbox = BoundingBox::new(Point::new(-50.0, -120.0), Point::new(550.0, 120.0));
    (route, field, bbox)
}

#[test]
fn planar_and_route_paths_agree_on_clean_scans() {
    let (route, field, bbox) = scene();
    let cfg = SvdConfig {
        resolution_m: 1.0,
        ..SvdConfig::default()
    };
    let diagram = SignalVoronoiDiagram::build(&field, bbox, cfg);
    let mapper = TileMapper::build(&diagram, &route, 1.0);
    let index = RouteTileIndex::build(&field, &route, cfg, 0.5);
    let positioner = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
    for truth in [40.0, 130.0, 255.0, 388.0, 470.0] {
        let ranked: Vec<(ApId, i32)> = field
            .detectable_at(route.point_at(truth), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect();
        let planar = mapper.locate(&diagram, &ranked).expect("planar fix").s;
        let fast = positioner.locate(&ranked, 0.0, None).expect("route fix").s;
        // Both estimate within the same tile: they can differ by at most
        // one tile's extent.
        assert!(
            (planar - fast).abs() < 60.0,
            "truth {truth}: planar {planar} vs route-index {fast}"
        );
        assert!(
            (planar - truth).abs() < 60.0,
            "planar off at {truth}: {planar}"
        );
        assert!(
            (fast - truth).abs() < 60.0,
            "route-index off at {truth}: {fast}"
        );
    }
}

#[test]
fn route_index_signatures_match_planar_tiles_on_the_road() {
    let (route, field, bbox) = scene();
    let cfg = SvdConfig {
        resolution_m: 1.0,
        ..SvdConfig::default()
    };
    let diagram = SignalVoronoiDiagram::build(&field, bbox, cfg);
    let index = RouteTileIndex::build(&field, &route, cfg, 0.5);
    // Sample the road: the signature recorded by the route index must
    // equal the signature of the planar tile containing the point (except
    // within a sample step of a boundary).
    let mut agreements = 0usize;
    let mut total = 0usize;
    for k in 0..100 {
        let s = k as f64 * 5.0;
        if s > route.length() {
            break;
        }
        let p = route.point_at(s);
        let Some(tile) = diagram.tile_at(p) else {
            continue;
        };
        let seg = index.subsegment_at(s);
        total += 1;
        if seg.signature == *tile.signature() {
            agreements += 1;
        }
    }
    assert!(total > 50);
    // Boundary-adjacent samples may disagree by one sample step; demand
    // 85 % agreement.
    assert!(
        agreements * 100 >= total * 85,
        "only {agreements}/{total} samples agree"
    );
}

#[test]
fn svd_reduces_to_euclidean_voronoi_under_homogeneity() {
    // The paper: "the conventional Voronoi Diagram is just a special case
    // of SVD" — under equal radio parameters, each point's site is its
    // nearest AP.
    let (_, field, bbox) = scene();
    let diagram = SignalVoronoiDiagram::build(&field, bbox, SvdConfig::default());
    let mut checked = 0usize;
    for t in diagram.tiles() {
        let centroid = t.centroid();
        let nearest = field
            .aps()
            .iter()
            .min_by(|a, b| {
                centroid
                    .distance(a.position())
                    .partial_cmp(&centroid.distance(b.position()))
                    .unwrap()
            })
            .unwrap()
            .id();
        // Skip sliver tiles whose centroid may fall outside them.
        if t.area_m2() < 50.0 {
            continue;
        }
        checked += 1;
        assert_eq!(
            t.signature().site(),
            Some(nearest),
            "tile {} centred at {centroid} is not dominated by its nearest AP",
            t.id()
        );
    }
    assert!(checked >= 10, "only {checked} tiles checked");
}

// ---------------------------------------------------------------------------
// Query-plane snapshot consistency: readers racing writers must only
// ever observe coherent, monotonically advancing published snapshots.
// ---------------------------------------------------------------------------

mod common;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use proptest::prelude::*;
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replays a seeded day from 2/4/8 writer threads while as many
    /// reader threads hammer `query_snapshot`. Every observed snapshot
    /// must be internally coherent — epoch monotone per reader, all
    /// sections stamped with the same epoch (no torn publication), and
    /// every arrival entry derived from exactly the bus fix published
    /// in that same snapshot.
    #[test]
    fn snapshots_stay_coherent_under_concurrent_ingest(
        threads_idx in 0usize..3,
        seed in 1u64..64,
    ) {
        let threads = [2usize, 4, 8][threads_idx];
        let (city, plan) = common::seeded_day(seed);
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        for (trip, route) in plan.trip_routes() {
            server.register_bus(BusKey(trip as u64), route).expect("served route");
        }
        let done = AtomicBool::new(false);
        let writers_left = AtomicUsize::new(threads);
        let reads = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for lane in plan.lanes(threads) {
                let server = &server;
                let done = &done;
                let writers_left = &writers_left;
                let plan = &plan;
                scope.spawn(move || {
                    let reports: Vec<ScanReport> =
                        lane.iter().map(|&i| common::to_report(&plan.events[i])).collect();
                    for chunk in reports.chunks(16) {
                        for result in server.ingest_batch(chunk) {
                            result.expect("registered bus");
                        }
                    }
                    if writers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                        done.store(true, Ordering::Release);
                    }
                });
            }
            for _ in 0..threads {
                let server = &server;
                let done = &done;
                let reads = &reads;
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    let mut observed = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snap = server.query_snapshot();
                        assert!(
                            snap.epoch >= last_epoch,
                            "epoch went backwards: {} after {last_epoch}",
                            snap.epoch
                        );
                        last_epoch = snap.epoch;
                        assert!(snap.is_coherent(), "torn snapshot at epoch {}", snap.epoch);
                        for ((route, _stop), entries) in &snap.arrivals {
                            for entry in entries {
                                let view = snap
                                    .buses
                                    .get(&entry.bus)
                                    .expect("arrival for a bus missing from the same snapshot");
                                assert_eq!(view.route, *route, "arrival crossed routes");
                                assert_eq!(
                                    entry.from_fix_time_s, view.fix.time_s,
                                    "arrival not derived from the published fix (torn read)"
                                );
                                assert!(view.fix.s < snap.published_at_s + 86_400.0);
                            }
                        }
                        observed += 1;
                        if finished {
                            break;
                        }
                    }
                    reads.fetch_add(observed, Ordering::Relaxed);
                });
            }
        });
        prop_assert!(server.snapshot_epoch() > 0, "no snapshot was ever published");
        prop_assert!(reads.load(Ordering::Relaxed) >= threads, "readers starved");
    }
}

// ---------------------------------------------------------------------------
// SnapshotCell ring wraparound under real parallelism: the native twin of
// the model test `snapshot_reads_are_monotone_and_coherent` in
// crates/check/tests/model.rs. The model suite explores every
// interleaving of a tiny schedule exhaustively; this test takes the
// opposite trade — a huge number of schedules, sampled by the OS
// scheduler — on the same invariants.
// ---------------------------------------------------------------------------

use wilocator::core::snapshot::{QuerySnapshot, SnapshotCell};

/// One fast publisher laps three slow readers around a minimum-size
/// (2-slot) ring. With only two slots the publisher reuses a reader's
/// slot after a single intervening publish, so the lap-retry path in
/// `SnapshotCell::read` is exercised constantly: a reader that loads
/// epoch `e` and then gets descheduled finds slot `e % 2` already
/// holding epoch `e + 2k` and must retry. Readers assert the two
/// invariants the retry protocol guarantees — every returned snapshot is
/// internally coherent and carries exactly the epoch it was read at (so
/// per-reader epochs can only advance).
#[test]
fn snapshot_cell_wraparound_stress_native() {
    const PUBLISHES: u64 = 20_000;
    const READERS: usize = 3;

    let cell = SnapshotCell::new(2);
    let done = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let cell = &cell;
            let done = &done;
            let reads = &reads;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = cell.read();
                    assert!(
                        snap.is_coherent(),
                        "torn snapshot: epoch {} stamps {:?}",
                        snap.epoch,
                        snap.stamps
                    );
                    assert!(
                        snap.epoch >= last_epoch,
                        "epoch went backwards: {} after {last_epoch} (lapped read escaped \
                         the retry loop)",
                        snap.epoch
                    );
                    // published_at_s encodes the epoch at build time, so a
                    // retry that returned a mismatched slot would also show
                    // up as a stale payload behind a fresh epoch.
                    assert_eq!(
                        snap.published_at_s, snap.epoch as f64,
                        "slot payload does not match the epoch it was read at"
                    );
                    last_epoch = snap.epoch;
                    observed += 1;
                    if finished {
                        break;
                    }
                }
                reads.fetch_add(observed, Ordering::Relaxed);
            });
        }
        let cell = &cell;
        let done = &done;
        scope.spawn(move || {
            for _ in 0..PUBLISHES {
                let epoch = cell.publish_with(|next, prev| {
                    assert_eq!(next, prev.epoch + 1, "publisher saw a non-adjacent epoch");
                    QuerySnapshot::stamped(next, next as f64)
                });
                assert!(epoch <= PUBLISHES);
            }
            done.store(true, Ordering::Release);
        });
    });
    assert_eq!(cell.epoch(), PUBLISHES);
    assert!(
        reads.load(Ordering::Relaxed) >= READERS,
        "readers starved while the publisher lapped the ring"
    );
}

//! Cross-crate consistency: the two positioning paths (planar Tile
//! Mapping vs route tile index) and the two diagram representations agree
//! where the paper says they must.

use wilocator::geo::{BoundingBox, Point};
use wilocator::rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator::road::{NetworkBuilder, Route, RouteId};
use wilocator::svd::{
    PositionerConfig, RoutePositioner, RouteTileIndex, SignalVoronoiDiagram, SvdConfig, TileMapper,
};

fn scene() -> (Route, HomogeneousField, BoundingBox) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(500.0, 0.0));
    let e = b.add_edge(n0, n1, None).unwrap();
    let route = Route::new(RouteId(0), "x", vec![e], &b.build()).unwrap();
    let mut aps = Vec::new();
    let mut x = 30.0;
    let mut i = 0u32;
    while x < 500.0 {
        aps.push(AccessPoint::new(
            ApId(i),
            Point::new(x, if i.is_multiple_of(2) { 20.0 } else { -20.0 }),
        ));
        i += 1;
        x += 70.0;
    }
    let field = HomogeneousField::new(aps);
    let bbox = BoundingBox::new(Point::new(-50.0, -120.0), Point::new(550.0, 120.0));
    (route, field, bbox)
}

#[test]
fn planar_and_route_paths_agree_on_clean_scans() {
    let (route, field, bbox) = scene();
    let cfg = SvdConfig {
        resolution_m: 1.0,
        ..SvdConfig::default()
    };
    let diagram = SignalVoronoiDiagram::build(&field, bbox, cfg);
    let mapper = TileMapper::build(&diagram, &route, 1.0);
    let index = RouteTileIndex::build(&field, &route, cfg, 0.5);
    let positioner = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
    for truth in [40.0, 130.0, 255.0, 388.0, 470.0] {
        let ranked: Vec<(ApId, i32)> = field
            .detectable_at(route.point_at(truth), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect();
        let planar = mapper.locate(&diagram, &ranked).expect("planar fix").s;
        let fast = positioner.locate(&ranked, 0.0, None).expect("route fix").s;
        // Both estimate within the same tile: they can differ by at most
        // one tile's extent.
        assert!(
            (planar - fast).abs() < 60.0,
            "truth {truth}: planar {planar} vs route-index {fast}"
        );
        assert!(
            (planar - truth).abs() < 60.0,
            "planar off at {truth}: {planar}"
        );
        assert!(
            (fast - truth).abs() < 60.0,
            "route-index off at {truth}: {fast}"
        );
    }
}

#[test]
fn route_index_signatures_match_planar_tiles_on_the_road() {
    let (route, field, bbox) = scene();
    let cfg = SvdConfig {
        resolution_m: 1.0,
        ..SvdConfig::default()
    };
    let diagram = SignalVoronoiDiagram::build(&field, bbox, cfg);
    let index = RouteTileIndex::build(&field, &route, cfg, 0.5);
    // Sample the road: the signature recorded by the route index must
    // equal the signature of the planar tile containing the point (except
    // within a sample step of a boundary).
    let mut agreements = 0usize;
    let mut total = 0usize;
    for k in 0..100 {
        let s = k as f64 * 5.0;
        if s > route.length() {
            break;
        }
        let p = route.point_at(s);
        let Some(tile) = diagram.tile_at(p) else {
            continue;
        };
        let seg = index.subsegment_at(s);
        total += 1;
        if seg.signature == *tile.signature() {
            agreements += 1;
        }
    }
    assert!(total > 50);
    // Boundary-adjacent samples may disagree by one sample step; demand
    // 85 % agreement.
    assert!(
        agreements * 100 >= total * 85,
        "only {agreements}/{total} samples agree"
    );
}

#[test]
fn svd_reduces_to_euclidean_voronoi_under_homogeneity() {
    // The paper: "the conventional Voronoi Diagram is just a special case
    // of SVD" — under equal radio parameters, each point's site is its
    // nearest AP.
    let (_, field, bbox) = scene();
    let diagram = SignalVoronoiDiagram::build(&field, bbox, SvdConfig::default());
    let mut checked = 0usize;
    for t in diagram.tiles() {
        let centroid = t.centroid();
        let nearest = field
            .aps()
            .iter()
            .min_by(|a, b| {
                centroid
                    .distance(a.position())
                    .partial_cmp(&centroid.distance(b.position()))
                    .unwrap()
            })
            .unwrap()
            .id();
        // Skip sliver tiles whose centroid may fall outside them.
        if t.area_m2() < 50.0 {
            continue;
        }
        checked += 1;
        assert_eq!(
            t.signature().site(),
            Some(nearest),
            "tile {} centred at {centroid} is not dominated by its nearest AP",
            t.id()
        );
    }
    assert!(checked >= 10, "only {checked} tiles checked");
}

//! Golden fixture for the `/debug` observability endpoints: a
//! deterministic single-threaded replay on stepping clocks must render
//! byte-identical `/debug/timeseries`, `/debug/quality` and
//! `/debug/slo` bodies, run to run and commit to commit — and every
//! body must round-trip through the `wilocator-dash` parser.
//!
//! Bless after an intentional format change with
//! `WILOCATOR_BLESS=1 cargo test --test debug_golden`.

mod common;

use std::sync::Arc;

use common::{assert_matches_fixture, seeded_day, to_report};
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::obs::SteppingClock;
use wilocator::serve::{debug_dump, parse_request, respond, HttpLimits, Request};
use wilocator_dash::{parse_dump, render_dashboard};

fn get(target: &str) -> Request {
    let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
    let (request, _) = parse_request(raw.as_bytes(), &HttpLimits::default())
        .expect("well-formed request line")
        .expect("complete request");
    request
}

/// Replays one seeded morning sequentially on stepping clocks — span
/// stamps, staleness and publish cadence are all functions of the
/// replay, so the debug bodies are exact.
fn replayed_server() -> WiLocator {
    let (city, plan) = seeded_day(11);
    let server = WiLocator::new_with_clocks(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
        Arc::new(SteppingClock::new(0, 250)),
        Arc::new(SteppingClock::new(1_000, 125)),
    );
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
    let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
    for chunk in reports.chunks(32) {
        for result in server.ingest_batch(chunk) {
            result.expect("registered bus");
        }
    }
    server.train(10.0 * 3_600.0);
    server.publish_snapshot(10.0 * 3_600.0);
    server
}

const TARGETS: [&str; 4] = [
    "/debug/timeseries",
    "/debug/quality",
    "/debug/quality?route=0",
    "/debug/slo",
];

fn transcript(server: &WiLocator) -> String {
    let mut out = String::new();
    for target in TARGETS {
        let response = respond(server, &get(target));
        assert_eq!(response.status, 200, "GET {target}: {}", response.body);
        // Every body must be parseable by the dashboard's strict schema
        // reader — the golden only records documents the tooling accepts.
        parse_dump(&response.body)
            .unwrap_or_else(|e| panic!("GET {target}: rejected by wilocator-dash: {e}"));
        out.push_str(&format!(
            "GET {target}\n{} {}\n{}\n\n",
            response.status, response.content_type, response.body
        ));
    }
    out
}

#[test]
fn debug_responses_match_golden() {
    let server = replayed_server();
    assert_matches_fixture(&transcript(&server), "debug_golden.txt");
}

#[test]
fn debug_responses_are_replay_deterministic() {
    let first = transcript(&replayed_server());
    let second = transcript(&replayed_server());
    assert_eq!(
        first, second,
        "same seed, same replay — debug bodies must not drift"
    );
}

#[test]
fn combined_dump_renders_deterministically() {
    let server = replayed_server();
    let dump = debug_dump(&server);
    let dash = parse_dump(&dump).expect("combined dump parses");
    assert!(dash.epoch > 0, "replay published snapshots");
    assert!(
        !dash.series.is_empty() && !dash.detectors.is_empty(),
        "dump carries all sections"
    );
    let rendered = render_dashboard(&dash);
    assert_matches_fixture(&rendered, "debug_dashboard_golden.txt");
}

//! Metrics-snapshot regression: a seeded simulated day replayed through
//! the sharded server must reproduce the checked-in counter snapshot
//! exactly, and that snapshot must be bit-identical whether the day is
//! replayed through `ingest_batch` from 1, 2 or 4 threads.
//!
//! Only the deterministic families are compared: histograms time
//! wall-clock, and `wilocator_ingest_batches_total` counts transport
//! calls rather than reports, so both are excluded (the former by
//! `deterministic_lines`, the latter via
//! [`NONDETERMINISTIC_COUNTER_FAMILIES`]). Regenerate the fixture after
//! an intentional behaviour change with
//! `WILOCATOR_BLESS=1 cargo test --test metrics_snapshot`.

mod common;

use common::{deterministic_snapshot, replay_batched, seeded_day};
use wilocator::core::{WiLocator, WiLocatorConfig};

/// The golden fixture: key counters of a seeded day, exact to the unit.
/// Unlike the arrival-prediction fixture there is no float tolerance —
/// every line is an integer event count.
#[test]
fn seeded_day_counters_match_golden_fixture() {
    let (city, plan) = seeded_day(11);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    replay_batched(&server, &plan, 1);
    let got = deterministic_snapshot(&server);

    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/metrics_snapshot.txt");
    if std::env::var_os("WILOCATOR_BLESS").is_some() {
        std::fs::write(&fixture, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&fixture).expect(
        "fixture missing — run WILOCATOR_BLESS=1 cargo test --test metrics_snapshot to create it",
    );
    assert_eq!(
        got, want,
        "metrics snapshot drifted from golden — bless the fixture if intentional"
    );
}

/// The invariants the snapshot must satisfy regardless of fixture
/// content: every report accounted for, every locate classified.
#[test]
fn seeded_day_counters_satisfy_accounting_invariants() {
    let (city, plan) = seeded_day(11);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    replay_batched(&server, &plan, 1);
    let snap = server.metrics();

    // Offered load == accepted load: the load generator's own stats agree
    // with the server's per-shard accounting.
    let offered = plan.stats();
    assert_eq!(
        offered.counter_family_total("loadgen_events_total"),
        snap.counter_family_total("wilocator_reports_total"),
    );
    // Every report resolved to exactly one outcome.
    assert_eq!(
        snap.counter_family_total("wilocator_reports_total"),
        snap.counter_family_total("wilocator_fixes_total")
            + snap.counter_family_total("wilocator_reports_absorbed_total")
            + snap.counter_family_total("wilocator_reports_stale_total"),
    );
    // Every locate call resolved to exactly one fix method (or none).
    assert_eq!(
        snap.counter_family_total("svd_locate_total"),
        snap.counter_family_total("svd_fix_exact_total")
            + snap.counter_family_total("svd_fix_tie_boundary_total")
            + snap.counter_family_total("svd_fix_nearest_signature_total")
            + snap.counter_family_total("svd_fix_dead_reckoned_total")
            + snap.counter_family_total("svd_fix_none_total"),
    );
    // The day actually exercised the pipeline.
    assert!(snap.counter_family_total("svd_fix_exact_total") > 100);
    assert!(snap.counter_family_total("wilocator_traversals_committed_total") > 10);
    assert!(snap.counter_family_total("predict_train_total") >= 1);
    assert_eq!(
        snap.gauge("wilocator_active_buses"),
        0,
        "all buses finished"
    );
}

/// The cross-thread identity the whole metric design is built around:
/// counters count events, not scheduling, so the deterministic snapshot
/// of a lane-partitioned batched replay is byte-identical at any thread
/// count.
#[test]
fn snapshot_is_identical_across_thread_counts() {
    let (city, plan) = seeded_day(11);
    assert!(plan.events.len() > 100, "day too small");
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 4] {
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        replay_batched(&server, &plan, threads);
        snapshots.push((threads, deterministic_snapshot(&server)));
    }
    let (_, ref base) = snapshots[0];
    assert!(base.contains("wilocator_reports_total"));
    for (threads, snap) in &snapshots[1..] {
        assert_eq!(
            snap, base,
            "{threads}-thread snapshot diverges from single-threaded"
        );
    }
}

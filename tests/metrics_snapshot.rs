//! Metrics-snapshot regression: a seeded simulated day replayed through
//! the sharded server must reproduce the checked-in counter snapshot
//! exactly, and that snapshot must be bit-identical whether the day is
//! replayed through `ingest_batch` from 1, 2 or 4 threads.
//!
//! Only the deterministic families are compared: histograms time
//! wall-clock, and `wilocator_ingest_batches_total` counts transport
//! calls rather than reports, so both are excluded (the former by
//! `deterministic_lines`, the latter via
//! [`NONDETERMINISTIC_COUNTER_FAMILIES`]). Regenerate the fixture after
//! an intentional behaviour change with
//! `WILOCATOR_BLESS=1 cargo test --test metrics_snapshot`.

use wilocator::core::{
    BusKey, ScanReport, WiLocator, WiLocatorConfig, NONDETERMINISTIC_COUNTER_FAMILIES,
};
use wilocator::geo::{BoundingBox, Point};
use wilocator::rf::{
    AccessPoint, ApId, HomogeneousField, LogDistance, PhysicalField, ShadowingField,
};
use wilocator::road::{NetworkBuilder, Route, RouteId, Schedule};
use wilocator::sim::{
    simulate, City, LoadEvent, LoadPlan, SimulationConfig, TrafficConfig, TrafficModel,
};

/// Two disjoint 1.2 km streets, one route each, plus an express variant
/// riding the first street — the same two-shard scene the concurrency
/// tests replay.
fn two_street_city(seed: u64) -> City {
    let mut b = NetworkBuilder::new();
    let mut aps = Vec::new();
    let mut ap_id = 0u32;
    let mut streets = Vec::new();
    for (street, y) in [0.0f64, 900.0].iter().enumerate() {
        let mut prev = b.add_node(Point::new(0.0, *y));
        let mut edges = Vec::new();
        for k in 1..=4 {
            let node = b.add_node(Point::new(k as f64 * 300.0, *y));
            edges.push(b.add_edge(prev, node, None).expect("distinct nodes"));
            prev = node;
        }
        let mut x = 30.0;
        while x < 1_200.0 {
            aps.push(AccessPoint::new(
                ApId(ap_id),
                Point::new(x, y + if ap_id.is_multiple_of(2) { 18.0 } else { -18.0 }),
            ));
            ap_id += 1;
            x += 55.0;
        }
        streets.push((street, edges));
    }
    let network = b.build();
    let mut built = Vec::new();
    let (_, first_street_edges) = streets[0].clone();
    for (street, edges) in streets {
        let mut route = Route::new(
            RouteId(street as u32),
            if street == 0 { "9" } else { "14" },
            edges,
            &network,
        )
        .expect("connected street");
        route.add_stops_evenly(4);
        built.push(route);
    }
    let mut express = Route::new(RouteId(2), "9 express", first_street_edges, &network)
        .expect("connected street");
    express.add_stops_evenly(2);
    built.push(express);
    let bbox = BoundingBox::from_points(network.nodes().iter().map(|n| n.position()))
        .expect("non-empty network")
        .inflated(400.0);
    let shadowing = ShadowingField::new(4.0, 60.0, seed ^ 0x5AAD);
    let field = PhysicalField::new(aps.clone(), LogDistance::urban(), shadowing);
    City {
        network,
        routes: built,
        field,
        server_field: HomogeneousField::new(aps),
        towers: Vec::new(),
        bbox,
    }
}

/// One seeded morning of service on all three routes.
fn seeded_day(seed: u64) -> (City, LoadPlan) {
    let city = two_street_city(seed);
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let mut schedule = Schedule::new();
    for (route, headway) in [
        (RouteId(0), 1_200.0),
        (RouteId(1), 1_500.0),
        (RouteId(2), 1_800.0),
    ] {
        schedule.add_headway_service(route, 8.0 * 3_600.0, 9.5 * 3_600.0, headway);
    }
    let config = SimulationConfig {
        days: 1,
        seed,
        ..SimulationConfig::default()
    };
    let dataset = simulate(&city, &schedule, &traffic, &config);
    (city, LoadPlan::for_day(&dataset, 0))
}

fn to_report(event: &LoadEvent) -> ScanReport {
    ScanReport {
        bus: BusKey(event.trip_id as u64),
        time_s: event.time_s,
        scans: event.scans.clone(),
    }
}

/// Replays the full day through `ingest_batch` from `threads` threads
/// (lane-partitioned, 32 reports per batch), finishes every bus, trains.
fn replay_batched(server: &WiLocator, plan: &LoadPlan, threads: usize) {
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
    std::thread::scope(|scope| {
        for lane in plan.lanes(threads) {
            scope.spawn(move || {
                let reports: Vec<ScanReport> =
                    lane.iter().map(|&i| to_report(&plan.events[i])).collect();
                for chunk in reports.chunks(32) {
                    for result in server.ingest_batch(chunk) {
                        result.expect("registered bus");
                    }
                }
            });
        }
    });
    for (trip, _) in plan.trip_routes() {
        server
            .finish_bus(BusKey(trip as u64))
            .expect("registered bus");
    }
    server.train(10.0 * 3_600.0);
}

/// The snapshot's deterministic lines with the chunking-dependent
/// counter families stripped — the canonical comparison form.
fn deterministic_snapshot(server: &WiLocator) -> String {
    server
        .metrics()
        .deterministic_lines()
        .lines()
        .filter(|line| {
            let family = line
                .split(['{', ' '])
                .next()
                .expect("non-empty metric line");
            !NONDETERMINISTIC_COUNTER_FAMILIES.contains(&family)
        })
        .map(|line| format!("{line}\n"))
        .collect()
}

/// The golden fixture: key counters of a seeded day, exact to the unit.
/// Unlike the arrival-prediction fixture there is no float tolerance —
/// every line is an integer event count.
#[test]
fn seeded_day_counters_match_golden_fixture() {
    let (city, plan) = seeded_day(11);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    replay_batched(&server, &plan, 1);
    let got = deterministic_snapshot(&server);

    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/metrics_snapshot.txt");
    if std::env::var_os("WILOCATOR_BLESS").is_some() {
        std::fs::write(&fixture, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&fixture).expect(
        "fixture missing — run WILOCATOR_BLESS=1 cargo test --test metrics_snapshot to create it",
    );
    assert_eq!(
        got, want,
        "metrics snapshot drifted from golden — bless the fixture if intentional"
    );
}

/// The invariants the snapshot must satisfy regardless of fixture
/// content: every report accounted for, every locate classified.
#[test]
fn seeded_day_counters_satisfy_accounting_invariants() {
    let (city, plan) = seeded_day(11);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    replay_batched(&server, &plan, 1);
    let snap = server.metrics();

    // Offered load == accepted load: the load generator's own stats agree
    // with the server's per-shard accounting.
    let offered = plan.stats();
    assert_eq!(
        offered.counter_family_total("loadgen_events_total"),
        snap.counter_family_total("wilocator_reports_total"),
    );
    // Every report resolved to exactly one outcome.
    assert_eq!(
        snap.counter_family_total("wilocator_reports_total"),
        snap.counter_family_total("wilocator_fixes_total")
            + snap.counter_family_total("wilocator_reports_absorbed_total")
            + snap.counter_family_total("wilocator_reports_stale_total"),
    );
    // Every locate call resolved to exactly one fix method (or none).
    assert_eq!(
        snap.counter_family_total("svd_locate_total"),
        snap.counter_family_total("svd_fix_exact_total")
            + snap.counter_family_total("svd_fix_tie_boundary_total")
            + snap.counter_family_total("svd_fix_nearest_signature_total")
            + snap.counter_family_total("svd_fix_dead_reckoned_total")
            + snap.counter_family_total("svd_fix_none_total"),
    );
    // The day actually exercised the pipeline.
    assert!(snap.counter_family_total("svd_fix_exact_total") > 100);
    assert!(snap.counter_family_total("wilocator_traversals_committed_total") > 10);
    assert!(snap.counter_family_total("predict_train_total") >= 1);
    assert_eq!(
        snap.gauge("wilocator_active_buses"),
        0,
        "all buses finished"
    );
}

/// The cross-thread identity the whole metric design is built around:
/// counters count events, not scheduling, so the deterministic snapshot
/// of a lane-partitioned batched replay is byte-identical at any thread
/// count.
#[test]
fn snapshot_is_identical_across_thread_counts() {
    let (city, plan) = seeded_day(11);
    assert!(plan.events.len() > 100, "day too small");
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 4] {
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        replay_batched(&server, &plan, threads);
        snapshots.push((threads, deterministic_snapshot(&server)));
    }
    let (_, ref base) = snapshots[0];
    assert!(base.contains("wilocator_reports_total"));
    for (threads, snap) in &snapshots[1..] {
        assert_eq!(
            snap, base,
            "{threads}-thread snapshot diverges from single-threaded"
        );
    }
}

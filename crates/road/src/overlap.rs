//! Overlapped road segments between routes (Table I of the paper).
//!
//! "Different bus routes … may share a few overlapped road segments
//! connecting adjacent intersections/terminals." Overlap is what lets
//! WiLocator borrow the most recent travel time of *any* route on a shared
//! segment when predicting the next bus — the paper's key advantage over
//! same-route-only predictors.

use std::collections::{HashMap, HashSet};

use crate::ids::{EdgeId, RouteId};
use crate::network::RoadNetwork;
use crate::route::Route;

/// Per-route overlap summary, mirroring a row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapReport {
    /// The route.
    pub route: RouteId,
    /// Number of stops on the route.
    pub stops: usize,
    /// Route length, metres.
    pub length_m: f64,
    /// Total length of segments shared with at least one other route,
    /// metres.
    pub overlap_m: f64,
}

/// Map from segment id to the set of routes traversing it.
pub fn shared_edges(routes: &[Route]) -> HashMap<EdgeId, Vec<RouteId>> {
    let mut map: HashMap<EdgeId, Vec<RouteId>> = HashMap::new();
    for r in routes {
        let mut seen = HashSet::new();
        for &e in r.edges() {
            if seen.insert(e) {
                map.entry(e).or_default().push(r.id());
            }
        }
    }
    map
}

/// Length (metres) of `route`'s segments shared with ≥ 1 other route.
pub fn overlap_length_m(route: &Route, routes: &[Route], network: &RoadNetwork) -> f64 {
    let shared = shared_edges(routes);
    // Dedup via sort, not a HashSet: the float sum below must accumulate
    // in a fixed order for byte-identical replay across processes.
    let mut edges = route.edges().to_vec();
    edges.sort_unstable();
    edges.dedup();
    edges
        .into_iter()
        .filter(|e| shared.get(e).map(|rs| rs.len() > 1).unwrap_or(false))
        .map(|e| network.edge(e).map(|e| e.length()).unwrap_or(0.0))
        .sum()
}

/// Builds the full Table-I-style report for a set of routes.
pub fn table(routes: &[Route], network: &RoadNetwork) -> Vec<OverlapReport> {
    routes
        .iter()
        .map(|r| OverlapReport {
            route: r.id(),
            stops: r.stops().len(),
            length_m: r.length(),
            overlap_m: overlap_length_m(r, routes, network),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use wilocator_geo::Point;

    /// Two routes sharing a middle segment:
    /// R0: n0 → n1 → n2 → n3, R1: n4 → n1 → n2 → n5.
    fn overlapping_routes() -> (RoadNetwork, Vec<Route>) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(300.0, 0.0));
        let n3 = b.add_node(Point::new(400.0, 0.0));
        let n4 = b.add_node(Point::new(100.0, -100.0));
        let n5 = b.add_node(Point::new(300.0, 100.0));
        let e01 = b.add_edge(n0, n1, None).unwrap();
        let e12 = b.add_edge(n1, n2, None).unwrap(); // the shared segment
        let e23 = b.add_edge(n2, n3, None).unwrap();
        let e41 = b.add_edge(n4, n1, None).unwrap();
        let e25 = b.add_edge(n2, n5, None).unwrap();
        let net = b.build();
        let r0 = Route::new(RouteId(0), "A", vec![e01, e12, e23], &net).unwrap();
        let r1 = Route::new(RouteId(1), "B", vec![e41, e12, e25], &net).unwrap();
        (net, vec![r0, r1])
    }

    #[test]
    fn shared_edges_found() {
        let (_, routes) = overlapping_routes();
        let shared = shared_edges(&routes);
        let multi: Vec<_> = shared.iter().filter(|(_, v)| v.len() > 1).collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].1.len(), 2);
    }

    #[test]
    fn overlap_length_counts_only_shared() {
        let (net, routes) = overlapping_routes();
        assert_eq!(overlap_length_m(&routes[0], &routes, &net), 200.0);
        assert_eq!(overlap_length_m(&routes[1], &routes, &net), 200.0);
    }

    #[test]
    fn no_overlap_for_single_route() {
        let (net, routes) = overlapping_routes();
        let solo = vec![routes[0].clone()];
        assert_eq!(overlap_length_m(&solo[0], &solo, &net), 0.0);
    }

    #[test]
    fn table_mirrors_route_metrics() {
        let (net, mut routes) = overlapping_routes();
        routes[0].add_stops_evenly(3);
        let t = table(&routes, &net);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].stops, 3);
        assert_eq!(t[1].stops, 0);
        assert_eq!(t[0].length_m, 400.0);
        assert_eq!(t[0].overlap_m, 200.0);
    }

    #[test]
    fn repeated_edge_counted_once() {
        // A route that traverses the same edge twice (a loop) must not
        // double-register in shared_edges.
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let e01 = b.add_edge(n0, n1, None).unwrap();
        let e10 = b.add_edge(n1, n0, None).unwrap();
        let net = b.build();
        let r = Route::new(RouteId(0), "loop", vec![e01, e10, e01], &net).unwrap();
        let shared = shared_edges(&[r]);
        assert_eq!(shared.get(&e01).unwrap().len(), 1);
    }
}

//! Identifier newtypes for road-network entities.

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl $name {
            /// The raw index value.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// Identifier of a road-network vertex (intersection or terminal).
    NodeId,
    "n"
);
id_type!(
    /// Identifier of a directed road segment.
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of a bus route.
    RouteId,
    "R"
);
id_type!(
    /// Identifier of a bus stop on a route.
    StopId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(4).to_string(), "e4");
        assert_eq!(RouteId(1).to_string(), "R1");
        assert_eq!(StopId(9).to_string(), "s9");
    }

    #[test]
    fn ordering_and_index() {
        assert!(EdgeId(1) < EdgeId(2));
        assert_eq!(EdgeId(7).index(), 7);
        assert_eq!(NodeId::from(5u32), NodeId(5));
    }
}

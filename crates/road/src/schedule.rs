//! A minimal (GTFS-like) bus schedule: planned trips per route.
//!
//! The simulator uses the schedule to dispatch buses; the "Transit Agency"
//! baseline predictor uses it as the static timetable that real agencies
//! publish (the comparison curve in Fig. 8b).

use crate::ids::RouteId;

/// One planned departure of a bus on a route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// The route served.
    pub route: RouteId,
    /// Departure time from the start stop, seconds since service start
    /// (simulation midnight).
    pub departure_s: f64,
}

/// A day's planned trips, ordered by departure time.
///
/// # Examples
///
/// ```
/// use wilocator_road::{RouteId, Schedule};
/// let mut sched = Schedule::new();
/// // Route 0 every 10 minutes from 06:00 to 09:00.
/// sched.add_headway_service(RouteId(0), 6.0 * 3600.0, 9.0 * 3600.0, 600.0);
/// assert_eq!(sched.trips_for(RouteId(0)).count(), 19);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    trips: Vec<Trip>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Adds a single trip.
    pub fn add_trip(&mut self, route: RouteId, departure_s: f64) {
        self.trips.push(Trip { route, departure_s });
        self.trips
            .sort_by(|a, b| a.departure_s.partial_cmp(&b.departure_s).expect("finite"));
    }

    /// Adds departures every `headway_s` seconds from `start_s` to `end_s`
    /// inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `headway_s` is not strictly positive.
    pub fn add_headway_service(
        &mut self,
        route: RouteId,
        start_s: f64,
        end_s: f64,
        headway_s: f64,
    ) {
        assert!(headway_s > 0.0, "headway must be positive");
        let mut t = start_s;
        while t <= end_s + 1e-9 {
            self.trips.push(Trip {
                route,
                departure_s: t,
            });
            t += headway_s;
        }
        self.trips
            .sort_by(|a, b| a.departure_s.partial_cmp(&b.departure_s).expect("finite"));
    }

    /// All trips, ordered by departure time.
    pub fn trips(&self) -> &[Trip] {
        &self.trips
    }

    /// Trips of one route, ordered by departure time.
    pub fn trips_for(&self, route: RouteId) -> impl Iterator<Item = &Trip> {
        self.trips.iter().filter(move |t| t.route == route)
    }

    /// The next departure of `route` at or after `time_s`.
    pub fn next_departure(&self, route: RouteId, time_s: f64) -> Option<Trip> {
        self.trips_for(route)
            .find(|t| t.departure_s >= time_s)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headway_service_counts() {
        let mut s = Schedule::new();
        s.add_headway_service(RouteId(1), 0.0, 3600.0, 600.0);
        assert_eq!(s.trips_for(RouteId(1)).count(), 7);
    }

    #[test]
    fn trips_sorted_across_routes() {
        let mut s = Schedule::new();
        s.add_trip(RouteId(1), 100.0);
        s.add_trip(RouteId(0), 50.0);
        s.add_trip(RouteId(2), 75.0);
        let times: Vec<f64> = s.trips().iter().map(|t| t.departure_s).collect();
        assert_eq!(times, vec![50.0, 75.0, 100.0]);
    }

    #[test]
    fn next_departure_lookup() {
        let mut s = Schedule::new();
        s.add_headway_service(RouteId(0), 0.0, 1000.0, 500.0);
        assert_eq!(
            s.next_departure(RouteId(0), 400.0).unwrap().departure_s,
            500.0
        );
        assert_eq!(
            s.next_departure(RouteId(0), 500.0).unwrap().departure_s,
            500.0
        );
        assert!(s.next_departure(RouteId(0), 1001.0).is_none());
        assert!(s.next_departure(RouteId(9), 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_headway_rejected() {
        let mut s = Schedule::new();
        s.add_headway_service(RouteId(0), 0.0, 100.0, 0.0);
    }
}

//! Bus routes (Definition 4) and positions along them.

use wilocator_geo::{Point, Polyline};

use crate::ids::{EdgeId, NodeId, RouteId, StopId};
use crate::network::{RoadError, RoadNetwork};

/// A bus stop on a route, addressed by route arc length.
#[derive(Debug, Clone, PartialEq)]
pub struct Stop {
    id: StopId,
    name: String,
    s: f64,
}

impl Stop {
    /// The stop's identifier (unique within its route).
    pub fn id(&self) -> StopId {
        self.id
    }

    /// Human-readable stop name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arc-length position along the route, metres from the start stop.
    pub fn s(&self) -> f64 {
        self.s
    }
}

/// A position on a route: both the scalar arc length and the
/// `(segment, on-segment offset)` decomposition Equation 9 needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePosition {
    /// Index into [`Route::edges`] of the segment containing the position.
    pub edge_index: usize,
    /// Identifier of that segment.
    pub edge: EdgeId,
    /// Offset from the segment's start, metres.
    pub s_on_edge: f64,
    /// Arc length from the route start, metres.
    pub s: f64,
    /// Planar point.
    pub point: Point,
}

/// A bus route: a connected sequence of directed road segments with stops
/// (Definition 4 of the paper).
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(400.0, 0.0));
/// let n2 = b.add_node(Point::new(400.0, 300.0));
/// let e0 = b.add_edge(n0, n1, None)?;
/// let e1 = b.add_edge(n1, n2, None)?;
/// let net = b.build();
/// let mut route = Route::new(RouteId(0), "9", vec![e0, e1], &net)?;
/// route.add_stop("start", 0.0)?;
/// route.add_stop("corner", 400.0)?;
/// route.add_stop("final", 700.0)?;
/// assert_eq!(route.length(), 700.0);
/// let pos = route.position_at(550.0);
/// assert_eq!(pos.edge_index, 1);
/// assert_eq!(pos.s_on_edge, 150.0);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    id: RouteId,
    name: String,
    edges: Vec<EdgeId>,
    nodes: Vec<NodeId>,
    geometry: Polyline,
    /// `edge_offsets[i]` = arc length at the start of edge `i`;
    /// one extra entry holding the total length.
    edge_offsets: Vec<f64>,
    stops: Vec<Stop>,
}

impl Route {
    /// Builds a route over `edges` of `network`, validating that consecutive
    /// segments are connected (`e_i.end == e_{i+1}.start`).
    ///
    /// # Errors
    ///
    /// Returns [`RoadError::EmptyRoute`], [`RoadError::UnknownEdge`] or
    /// [`RoadError::DisconnectedRoute`].
    pub fn new(
        id: RouteId,
        name: impl Into<String>,
        edges: Vec<EdgeId>,
        network: &RoadNetwork,
    ) -> Result<Self, RoadError> {
        if edges.is_empty() {
            return Err(RoadError::EmptyRoute);
        }
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        let mut offsets = Vec::with_capacity(edges.len() + 1);
        let mut geometry: Option<Polyline> = None;
        let mut s = 0.0;
        for (i, &eid) in edges.iter().enumerate() {
            let edge = network.edge(eid).ok_or(RoadError::UnknownEdge(eid))?;
            if i == 0 {
                nodes.push(edge.from());
            } else if *nodes.last().unwrap() != edge.from() {
                return Err(RoadError::DisconnectedRoute { position: i });
            }
            nodes.push(edge.to());
            offsets.push(s);
            s += edge.length();
            geometry = Some(match geometry {
                None => edge.shape().clone(),
                Some(g) => g.concat(edge.shape()),
            });
        }
        offsets.push(s);
        Ok(Route {
            id,
            name: name.into(),
            edges,
            nodes,
            geometry: geometry.expect("non-empty route"),
            edge_offsets: offsets,
            stops: Vec::new(),
        })
    }

    /// Adds a stop at arc length `s`, returning its id. Stops may be added
    /// in any order; they are kept sorted by `s`.
    ///
    /// # Errors
    ///
    /// Returns [`RoadError::StopOffRoute`] when `s` is outside
    /// `[0, length]`.
    pub fn add_stop(&mut self, name: impl Into<String>, s: f64) -> Result<StopId, RoadError> {
        if !(0.0..=self.length() + 1e-9).contains(&s) {
            return Err(RoadError::StopOffRoute {
                s,
                length: self.length(),
            });
        }
        let id = StopId(self.stops.len() as u32);
        self.stops.push(Stop {
            id,
            name: name.into(),
            s: s.min(self.length()),
        });
        self.stops
            .sort_by(|a, b| a.s.partial_cmp(&b.s).expect("finite"));
        Ok(id)
    }

    /// Adds `n` stops evenly spaced over the route (including both ends).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn add_stops_evenly(&mut self, n: usize) {
        assert!(n >= 2, "need at least start and final stops");
        let len = self.length();
        for i in 0..n {
            let s = len * i as f64 / (n - 1) as f64;
            self.add_stop(format!("{}-stop{}", self.name, i), s)
                .expect("evenly spaced stops are on the route");
        }
    }

    /// The route's identifier.
    pub fn id(&self) -> RouteId {
        self.id
    }

    /// The route's public name (e.g. "9", "14", "Rapid Line").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered segment ids.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The ordered vertex ids (length = edges + 1).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Stops, ordered by arc length.
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Stop lookup by id.
    pub fn stop(&self, id: StopId) -> Option<&Stop> {
        self.stops.iter().find(|s| s.id == id)
    }

    /// Total route length, metres.
    pub fn length(&self) -> f64 {
        self.edge_offsets.last().copied().unwrap_or(0.0)
    }

    /// The full route geometry as one polyline.
    pub fn geometry(&self) -> &Polyline {
        &self.geometry
    }

    /// Arc length at which edge `edge_index` starts.
    ///
    /// # Panics
    ///
    /// Panics if `edge_index >= self.edges().len()`.
    pub fn edge_start_s(&self, edge_index: usize) -> f64 {
        assert!(edge_index < self.edges.len(), "edge index out of range");
        self.edge_offsets[edge_index]
    }

    /// Arc length at which edge `edge_index` ends.
    ///
    /// # Panics
    ///
    /// Panics if `edge_index >= self.edges().len()`.
    pub fn edge_end_s(&self, edge_index: usize) -> f64 {
        assert!(edge_index < self.edges.len(), "edge index out of range");
        self.edge_offsets[edge_index + 1]
    }

    /// Length of edge `edge_index` within this route, metres.
    ///
    /// # Panics
    ///
    /// Panics if `edge_index >= self.edges().len()`.
    pub fn edge_length(&self, edge_index: usize) -> f64 {
        self.edge_end_s(edge_index) - self.edge_start_s(edge_index)
    }

    /// First position (index in [`Route::edges`]) of segment `edge` on this
    /// route, if traversed.
    pub fn edge_index_of(&self, edge: EdgeId) -> Option<usize> {
        self.edges.iter().position(|&e| e == edge)
    }

    /// Decomposes arc length `s` (clamped to `[0, length]`) into a
    /// [`RoutePosition`].
    pub fn position_at(&self, s: f64) -> RoutePosition {
        let s = s.clamp(0.0, self.length());
        // Find the edge whose [start, end) contains s; the final point
        // belongs to the last edge. Offsets are built from finite edge
        // lengths, so `total_cmp` agrees with the partial order — and
        // cannot panic.
        let idx = match self.edge_offsets.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => i.min(self.edges.len() - 1),
            Err(i) => i - 1,
        };
        RoutePosition {
            edge_index: idx,
            edge: self.edges[idx],
            s_on_edge: s - self.edge_offsets[idx],
            s,
            point: self.geometry.point_at(s),
        }
    }

    /// Planar point at arc length `s`.
    pub fn point_at(&self, s: f64) -> Point {
        self.geometry.point_at(s)
    }

    /// Projects an arbitrary planar point onto the route — the mobility
    /// constraint: a bus reported at `p` must actually be at the nearest
    /// on-route position.
    pub fn project(&self, p: Point) -> RoutePosition {
        let pr = self.geometry.project(p);
        self.position_at(pr.s)
    }

    /// The next stop strictly after arc length `s`, if any.
    pub fn next_stop_after(&self, s: f64) -> Option<&Stop> {
        self.stops.iter().find(|st| st.s > s + 1e-9)
    }

    /// All stops strictly after arc length `s`.
    pub fn stops_after(&self, s: f64) -> impl Iterator<Item = &Stop> {
        self.stops.iter().filter(move |st| st.s > s + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn l_network() -> (RoadNetwork, Vec<EdgeId>) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let n2 = b.add_node(Point::new(400.0, 300.0));
        let n3 = b.add_node(Point::new(700.0, 300.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let e2 = b.add_edge(n2, n3, None).unwrap();
        (b.build(), vec![e0, e1, e2])
    }

    fn route() -> Route {
        let (net, edges) = l_network();
        Route::new(RouteId(1), "9", edges, &net).unwrap()
    }

    #[test]
    fn length_is_sum_of_edges() {
        assert_eq!(route().length(), 1000.0);
    }

    #[test]
    fn empty_route_rejected() {
        let (net, _) = l_network();
        assert_eq!(
            Route::new(RouteId(0), "x", vec![], &net).unwrap_err(),
            RoadError::EmptyRoute
        );
    }

    #[test]
    fn disconnected_route_rejected() {
        let (net, edges) = l_network();
        assert_eq!(
            Route::new(RouteId(0), "x", vec![edges[0], edges[2]], &net).unwrap_err(),
            RoadError::DisconnectedRoute { position: 1 }
        );
    }

    #[test]
    fn unknown_edge_rejected() {
        let (net, _) = l_network();
        assert_eq!(
            Route::new(RouteId(0), "x", vec![EdgeId(42)], &net).unwrap_err(),
            RoadError::UnknownEdge(EdgeId(42))
        );
    }

    #[test]
    fn position_decomposition() {
        let r = route();
        let p = r.position_at(450.0);
        assert_eq!(p.edge_index, 1);
        assert_eq!(p.s_on_edge, 50.0);
        assert_eq!(p.point, Point::new(400.0, 50.0));
        // Exactly at an intersection: belongs to the edge that starts there.
        let q = r.position_at(400.0);
        assert_eq!(q.edge_index, 1);
        assert_eq!(q.s_on_edge, 0.0);
        // End of the route belongs to the last edge.
        let e = r.position_at(1000.0);
        assert_eq!(e.edge_index, 2);
        assert_eq!(e.s_on_edge, 300.0);
    }

    #[test]
    fn edge_spans() {
        let r = route();
        assert_eq!(r.edge_start_s(0), 0.0);
        assert_eq!(r.edge_end_s(0), 400.0);
        assert_eq!(r.edge_start_s(2), 700.0);
        assert_eq!(r.edge_length(1), 300.0);
    }

    #[test]
    fn nodes_sequence() {
        let r = route();
        assert_eq!(r.nodes().len(), 4);
    }

    #[test]
    fn project_off_road_point() {
        let r = route();
        let pos = r.project(Point::new(200.0, 35.0));
        assert_eq!(pos.point, Point::new(200.0, 0.0));
        assert_eq!(pos.s, 200.0);
        assert_eq!(pos.edge_index, 0);
    }

    #[test]
    fn stops_sorted_and_queryable() {
        let mut r = route();
        r.add_stop("b", 600.0).unwrap();
        r.add_stop("a", 100.0).unwrap();
        r.add_stop("c", 1000.0).unwrap();
        let ss: Vec<f64> = r.stops().iter().map(|s| s.s()).collect();
        assert_eq!(ss, vec![100.0, 600.0, 1000.0]);
        assert_eq!(r.next_stop_after(100.0).unwrap().s(), 600.0);
        assert_eq!(r.next_stop_after(999.9).unwrap().s(), 1000.0);
        assert!(r.next_stop_after(1000.0).is_none());
        assert_eq!(r.stops_after(50.0).count(), 3);
    }

    #[test]
    fn stop_off_route_rejected() {
        let mut r = route();
        assert!(matches!(
            r.add_stop("bad", 2000.0),
            Err(RoadError::StopOffRoute { .. })
        ));
        assert!(matches!(
            r.add_stop("bad", -1.0),
            Err(RoadError::StopOffRoute { .. })
        ));
    }

    #[test]
    fn evenly_spaced_stops() {
        let mut r = route();
        r.add_stops_evenly(5);
        assert_eq!(r.stops().len(), 5);
        assert_eq!(r.stops()[0].s(), 0.0);
        assert_eq!(r.stops()[4].s(), 1000.0);
        assert_eq!(r.stops()[2].s(), 500.0);
    }

    #[test]
    fn stop_lookup_by_id() {
        let mut r = route();
        let id = r.add_stop("a", 100.0).unwrap();
        assert_eq!(r.stop(id).unwrap().name(), "a");
        assert!(r.stop(StopId(99)).is_none());
    }

    #[test]
    fn edge_index_of_finds_position() {
        let r = route();
        let edges = r.edges().to_vec();
        assert_eq!(r.edge_index_of(edges[1]), Some(1));
        assert_eq!(r.edge_index_of(EdgeId(77)), None);
    }
}

//! The directed road-network graph (Definition 3).

use wilocator_geo::{Point, Polyline};

use crate::ids::{EdgeId, NodeId};

/// Errors raised by road-network and route construction.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadError {
    /// A node id did not exist in the network.
    UnknownNode(NodeId),
    /// An edge id did not exist in the network.
    UnknownEdge(EdgeId),
    /// The supplied polyline's endpoints do not match the edge's nodes.
    GeometryMismatch(EdgeId),
    /// An edge would have zero length (both endpoints coincide, no shape).
    DegenerateEdge,
    /// A route's consecutive edges are not connected
    /// (`e_i.end != e_{i+1}.start`).
    DisconnectedRoute { position: usize },
    /// A route was given no edges.
    EmptyRoute,
    /// A stop lies outside the route's arc-length range.
    StopOffRoute { s: f64, length: f64 },
}

impl std::fmt::Display for RoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoadError::UnknownNode(n) => write!(f, "unknown node {n}"),
            RoadError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            RoadError::GeometryMismatch(e) => {
                write!(f, "polyline endpoints do not match nodes of edge {e}")
            }
            RoadError::DegenerateEdge => write!(f, "edge endpoints coincide"),
            RoadError::DisconnectedRoute { position } => {
                write!(f, "route edges disconnected at position {position}")
            }
            RoadError::EmptyRoute => write!(f, "route has no edges"),
            RoadError::StopOffRoute { s, length } => {
                write!(f, "stop at s = {s} m outside route of length {length} m")
            }
        }
    }
}

impl std::error::Error for RoadError {}

/// A vertex of the road network: an intersection or terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    id: NodeId,
    position: Point,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's planar position.
    pub fn position(&self) -> Point {
        self.position
    }
}

/// A directed road segment between two adjacent vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    id: EdgeId,
    from: NodeId,
    to: NodeId,
    shape: Polyline,
}

impl Edge {
    /// The edge's identifier.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// `e.start` in the paper's notation.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// `e.end` in the paper's notation.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// The segment's geometry.
    pub fn shape(&self) -> &Polyline {
        &self.shape
    }

    /// Segment length, metres.
    pub fn length(&self) -> f64 {
        self.shape.length()
    }
}

/// Builder for [`RoadNetwork`].
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(100.0, 0.0));
/// let _e = b.add_edge(a, c, None)?;
/// let net = b.build();
/// assert_eq!(net.nodes().len(), 2);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Adds a vertex at `position`, returning its id.
    pub fn add_node(&mut self, position: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, position });
        id
    }

    /// Adds a directed segment from `from` to `to`.
    ///
    /// With `shape == None` the segment is a straight line between the node
    /// positions; otherwise the polyline must start at `from`'s position and
    /// end at `to`'s (within 1 m).
    ///
    /// # Errors
    ///
    /// Returns [`RoadError::UnknownNode`], [`RoadError::DegenerateEdge`] or
    /// [`RoadError::GeometryMismatch`].
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        shape: Option<Polyline>,
    ) -> Result<EdgeId, RoadError> {
        let a = self
            .nodes
            .get(from.index())
            .ok_or(RoadError::UnknownNode(from))?
            .position;
        let b = self
            .nodes
            .get(to.index())
            .ok_or(RoadError::UnknownNode(to))?
            .position;
        let id = EdgeId(self.edges.len() as u32);
        let shape = match shape {
            Some(p) => {
                if p.start().distance(a) > 1.0 || p.end().distance(b) > 1.0 {
                    return Err(RoadError::GeometryMismatch(id));
                }
                p
            }
            None => Polyline::segment(a, b).map_err(|_| RoadError::DegenerateEdge)?,
        };
        self.edges.push(Edge {
            id,
            from,
            to,
            shape,
        });
        Ok(id)
    }

    /// Adds both directions between `from` and `to` as straight segments,
    /// returning `(forward, backward)` edge ids.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkBuilder::add_edge`].
    pub fn add_two_way(&mut self, from: NodeId, to: NodeId) -> Result<(EdgeId, EdgeId), RoadError> {
        let f = self.add_edge(from, to, None)?;
        let b = self.add_edge(to, from, None)?;
        Ok((f, b))
    }

    /// Finalises the network.
    pub fn build(self) -> RoadNetwork {
        let mut out_edges = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            out_edges[e.from.index()].push(e.id);
        }
        RoadNetwork {
            nodes: self.nodes,
            edges: self.edges,
            out_edges,
        }
    }
}

/// The road network: a directed graph of intersections and road segments
/// (Definition 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
}

impl RoadNetwork {
    /// All vertices.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed segments.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Vertex lookup.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Segment lookup.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.index())
    }

    /// Outgoing segments of a vertex.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        self.out_edges
            .get(id.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total length of all segments, metres.
    pub fn total_length_m(&self) -> f64 {
        self.edges.iter().map(|e| e.length()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (RoadNetwork, Vec<NodeId>, Vec<EdgeId>) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 100.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let e2 = b.add_edge(n2, n0, None).unwrap();
        (b.build(), vec![n0, n1, n2], vec![e0, e1, e2])
    }

    #[test]
    fn builds_and_looks_up() {
        let (net, nodes, edges) = triangle();
        assert_eq!(net.nodes().len(), 3);
        assert_eq!(net.edges().len(), 3);
        assert_eq!(
            net.node(nodes[1]).unwrap().position(),
            Point::new(100.0, 0.0)
        );
        assert_eq!(net.edge(edges[0]).unwrap().length(), 100.0);
        assert!(net.node(NodeId(99)).is_none());
        assert!(net.edge(EdgeId(99)).is_none());
    }

    #[test]
    fn out_edges_follow_direction() {
        let (net, nodes, edges) = triangle();
        assert_eq!(net.out_edges(nodes[0]), &[edges[0]]);
        assert_eq!(net.out_edges(nodes[1]), &[edges[1]]);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::ORIGIN);
        assert_eq!(
            b.add_edge(n0, NodeId(5), None).unwrap_err(),
            RoadError::UnknownNode(NodeId(5))
        );
    }

    #[test]
    fn degenerate_edge_rejected() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::ORIGIN);
        let n1 = b.add_node(Point::ORIGIN);
        assert_eq!(
            b.add_edge(n0, n1, None).unwrap_err(),
            RoadError::DegenerateEdge
        );
    }

    #[test]
    fn mismatched_shape_rejected() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::ORIGIN);
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let bad = Polyline::segment(Point::new(50.0, 50.0), Point::new(100.0, 0.0)).unwrap();
        assert!(matches!(
            b.add_edge(n0, n1, Some(bad)),
            Err(RoadError::GeometryMismatch(_))
        ));
    }

    #[test]
    fn curved_shape_accepted() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::ORIGIN);
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let curve = Polyline::new(vec![
            Point::ORIGIN,
            Point::new(50.0, 20.0),
            Point::new(100.0, 0.0),
        ])
        .unwrap();
        let e = b.add_edge(n0, n1, Some(curve)).unwrap();
        let net = b.build();
        assert!(net.edge(e).unwrap().length() > 100.0);
    }

    #[test]
    fn two_way_creates_opposite_edges() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::ORIGIN);
        let n1 = b.add_node(Point::new(10.0, 0.0));
        let (f, r) = b.add_two_way(n0, n1).unwrap();
        let net = b.build();
        assert_eq!(net.edge(f).unwrap().from(), n0);
        assert_eq!(net.edge(r).unwrap().from(), n1);
    }

    #[test]
    fn total_length_sums_edges() {
        let (net, _, _) = triangle();
        let expect = 100.0 + 100.0 + (2.0f64).sqrt() * 100.0;
        assert!((net.total_length_m() - expect).abs() < 1e-9);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            RoadError::UnknownNode(NodeId(0)),
            RoadError::UnknownEdge(EdgeId(0)),
            RoadError::GeometryMismatch(EdgeId(0)),
            RoadError::DegenerateEdge,
            RoadError::DisconnectedRoute { position: 1 },
            RoadError::EmptyRoute,
            RoadError::StopOffRoute {
                s: 5.0,
                length: 1.0,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Road network, bus routes and stops.
//!
//! Implements Definitions 3–4 of the paper:
//!
//! * a **road network** is a directed graph whose vertices are intersections
//!   or terminals and whose edges are directed road segments
//!   ([`RoadNetwork`]);
//! * a **bus route** is a sequence of connected directed road segments with
//!   stops on them ([`Route`]), i.e. `e_i.end == e_{i+1}.start`.
//!
//! Positions along a route are addressed by *road distance* `s` (metres from
//! the route start), the `d_r(·,·)` of Equations 5 and 9. [`Route`] provides
//! the bidirectional mapping between `s`, the planar point, and the
//! `(segment, on-segment offset)` pair, plus projection of off-road points
//! onto the route — the *mobility constraint* WiLocator exploits.
//!
//! [`overlap`] computes the overlapped road-segment structure of a set of
//! routes (Table I of the paper), which drives the cross-route travel-time
//! sharing of the predictor.
//!
//! # Examples
//!
//! ```
//! use wilocator_geo::Point;
//! use wilocator_road::{NetworkBuilder, Route, RouteId};
//!
//! let mut b = NetworkBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(500.0, 0.0));
//! let e = b.add_edge(a, c, None)?;
//! let net = b.build();
//! let route = Route::new(RouteId(0), "demo", vec![e], &net)?;
//! assert_eq!(route.length(), 500.0);
//! # Ok::<(), wilocator_road::RoadError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod ids;
pub mod network;
pub mod overlap;
pub mod route;
pub mod schedule;

pub use ids::{EdgeId, NodeId, RouteId, StopId};
pub use network::{Edge, NetworkBuilder, Node, RoadError, RoadNetwork};
pub use overlap::{overlap_length_m, shared_edges, OverlapReport};
pub use route::{Route, RoutePosition, Stop};
pub use schedule::{Schedule, Trip};

//! Property-based tests for the road-network substrate.

use proptest::prelude::*;
use wilocator_geo::Point;
use wilocator_road::{overlap, NetworkBuilder, Route, RouteId, Schedule};

/// Builds a connected chain network from segment lengths; returns the
/// route over it.
fn chain_route(lengths: &[f64]) -> Route {
    let mut b = NetworkBuilder::new();
    let mut x = 0.0;
    let mut prev = b.add_node(Point::new(0.0, 0.0));
    let mut edges = Vec::new();
    for &len in lengths {
        x += len;
        let node = b.add_node(Point::new(x, 0.0));
        edges.push(b.add_edge(prev, node, None).unwrap());
        prev = node;
    }
    Route::new(RouteId(0), "p", edges, &b.build()).unwrap()
}

fn lengths() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(10.0..500.0f64, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn route_length_is_sum_of_edges(lens in lengths()) {
        let route = chain_route(&lens);
        let total: f64 = lens.iter().sum();
        prop_assert!((route.length() - total).abs() < 1e-6);
        // Edge spans partition [0, length].
        let mut s = 0.0;
        for i in 0..route.edges().len() {
            prop_assert!((route.edge_start_s(i) - s).abs() < 1e-6);
            s += route.edge_length(i);
        }
        prop_assert!((s - route.length()).abs() < 1e-6);
    }

    #[test]
    fn position_at_roundtrips_with_point_at(lens in lengths(), t in 0.0..1.0f64) {
        let route = chain_route(&lens);
        let s = t * route.length();
        let pos = route.position_at(s);
        prop_assert!((pos.s - s).abs() < 1e-9);
        prop_assert!(pos.point.distance(route.point_at(s)) < 1e-9);
        // Decomposition is consistent.
        prop_assert!(
            (route.edge_start_s(pos.edge_index) + pos.s_on_edge - s).abs() < 1e-9
        );
        prop_assert!(pos.s_on_edge <= route.edge_length(pos.edge_index) + 1e-9);
    }

    #[test]
    fn projection_of_on_route_points_is_identity(lens in lengths(), t in 0.0..1.0f64) {
        let route = chain_route(&lens);
        let s = t * route.length();
        let p = route.point_at(s);
        let pos = route.project(p);
        prop_assert!((pos.s - s).abs() < 1e-6);
    }

    #[test]
    fn stops_stay_sorted_under_arbitrary_insertion(
        lens in lengths(),
        fracs in proptest::collection::vec(0.0..1.0f64, 0..10),
    ) {
        let mut route = chain_route(&lens);
        for (i, f) in fracs.iter().enumerate() {
            route.add_stop(format!("s{i}"), f * route.length()).unwrap();
        }
        for w in route.stops().windows(2) {
            prop_assert!(w[0].s() <= w[1].s());
        }
        // next_stop_after is consistent with the ordering.
        if let Some(first) = route.stops().first() {
            if first.s() > 1e-9 {
                let next = route.next_stop_after(0.0).unwrap();
                prop_assert!((next.s() - first.s()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn overlap_is_symmetric_for_two_identical_routes(lens in lengths()) {
        // Two routes over the same edges overlap fully.
        let mut b = NetworkBuilder::new();
        let mut x = 0.0;
        let mut prev = b.add_node(Point::new(0.0, 0.0));
        let mut edges = Vec::new();
        for &len in &lens {
            x += len;
            let node = b.add_node(Point::new(x, 0.0));
            edges.push(b.add_edge(prev, node, None).unwrap());
            prev = node;
        }
        let net = b.build();
        let r0 = Route::new(RouteId(0), "a", edges.clone(), &net).unwrap();
        let r1 = Route::new(RouteId(1), "b", edges, &net).unwrap();
        let routes = vec![r0, r1];
        let ov0 = overlap::overlap_length_m(&routes[0], &routes, &net);
        let ov1 = overlap::overlap_length_m(&routes[1], &routes, &net);
        prop_assert!((ov0 - ov1).abs() < 1e-9);
        prop_assert!((ov0 - routes[0].length()).abs() < 1e-6);
    }

    #[test]
    fn headway_service_is_evenly_spaced(
        start in 0.0..40_000.0f64,
        headway in 60.0..3_600.0f64,
        n in 1usize..40,
    ) {
        let end = start + headway * n as f64;
        let mut sched = Schedule::new();
        sched.add_headway_service(RouteId(0), start, end, headway);
        let trips: Vec<f64> = sched.trips_for(RouteId(0)).map(|t| t.departure_s).collect();
        prop_assert_eq!(trips.len(), n + 1);
        for w in trips.windows(2) {
            prop_assert!((w[1] - w[0] - headway).abs() < 1e-6);
        }
        // next_departure finds each trip.
        for &t in &trips {
            let next = sched.next_departure(RouteId(0), t).unwrap();
            prop_assert!((next.departure_s - t).abs() < 1e-9);
        }
    }
}

//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use wilocator_geo::{BoundingBox, GeoPoint, GridIndex, Point, Polyline, Projection};

fn finite_coord() -> impl Strategy<Value = f64> {
    -10_000.0..10_000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn polyline() -> impl Strategy<Value = Polyline> {
    proptest::collection::vec(point(), 2..12)
        .prop_filter_map("needs positive length", |v| Polyline::new(v).ok())
}

proptest! {
    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn distance_nonnegative_and_symmetric(a in point(), b in point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn projection_roundtrip(lat in -60.0..60.0f64, lon in -179.0..179.0f64,
                            dlat in -0.2..0.2f64, dlon in -0.2..0.2f64) {
        let proj = Projection::new(GeoPoint::new(lat, lon));
        let g = GeoPoint::new(lat + dlat, lon + dlon);
        let back = proj.unproject(proj.project(g));
        prop_assert!((back.lat - g.lat).abs() < 1e-9);
        prop_assert!((back.lon - g.lon).abs() < 1e-9);
    }

    #[test]
    fn polyline_point_at_is_on_curve(line in polyline(), t in 0.0..1.0f64) {
        let s = t * line.length();
        let p = line.point_at(s);
        let pr = line.project(p);
        prop_assert!(pr.distance < 1e-6, "point_at({s}) strayed {} m", pr.distance);
    }

    #[test]
    fn polyline_cumulative_length_monotone(line in polyline(), t0 in 0.0..1.0f64, t1 in 0.0..1.0f64) {
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let s0 = lo * line.length();
        let s1 = hi * line.length();
        if s1 - s0 > 1e-6 {
            let slice = line.slice(s0, s1).unwrap();
            // Arc-length additivity: slice length equals coordinate span.
            prop_assert!((slice.length() - (s1 - s0)).abs() < 1e-6);
        }
    }

    #[test]
    fn polyline_projection_is_no_farther_than_endpoints(line in polyline(), q in point()) {
        let pr = line.project(q);
        prop_assert!(pr.distance <= q.distance(line.start()) + 1e-9);
        prop_assert!(pr.distance <= q.distance(line.end()) + 1e-9);
        prop_assert!(pr.s >= -1e-9 && pr.s <= line.length() + 1e-9);
    }

    #[test]
    fn bbox_from_points_contains_inputs(pts in proptest::collection::vec(point(), 1..32)) {
        let bb = BoundingBox::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
    }

    #[test]
    fn grid_index_within_matches_brute_force(
        pts in proptest::collection::vec(point(), 0..64),
        q in point(),
        radius in 0.0..2_000.0f64,
    ) {
        let mut idx = GridIndex::new(100.0);
        for (i, p) in pts.iter().enumerate() {
            idx.insert(*p, i);
        }
        let mut got: Vec<usize> = idx.within(q, radius).map(|(_, _, &i)| i).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance(**p) <= radius)
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn grid_index_nearest_matches_brute_force(
        pts in proptest::collection::vec(point(), 1..64),
        q in point(),
    ) {
        let mut idx = GridIndex::new(37.0);
        for (i, p) in pts.iter().enumerate() {
            idx.insert(*p, i);
        }
        let (d, _, _) = idx.nearest(q).unwrap();
        let best = pts
            .iter()
            .map(|p| q.distance(*p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - best).abs() < 1e-9, "index said {d}, brute force {best}");
    }

    #[test]
    fn haversine_triangle_inequality(
        lat1 in -80.0..80.0f64, lon1 in -179.0..179.0f64,
        lat2 in -80.0..80.0f64, lon2 in -179.0..179.0f64,
        lat3 in -80.0..80.0f64, lon3 in -179.0..179.0f64,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!(a.haversine(c) <= a.haversine(b) + b.haversine(c) + 1e-6);
    }
}

//! Planar and geodetic point types.

use crate::EARTH_RADIUS_M;

/// A point in the local planar frame, in metres.
///
/// Produced by [`crate::Projection::project`]; all distances between
/// `Point`s are Euclidean metres.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing metres.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin of the local frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when comparing).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Vector addition.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Midpoint of `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Dot product treating points as vectors from the origin.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm treating the point as a vector.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns true when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// A geodetic point: latitude and longitude in degrees (WGS-84 sphere).
///
/// This is the frame of the paper's trajectories (Definition 6) and of
/// geo-tagged APs obtained from Google Maps.
///
/// # Examples
///
/// ```
/// use wilocator_geo::GeoPoint;
/// let hbu = GeoPoint::new(30.48, 114.34);
/// let sfu = GeoPoint::new(49.2781, -122.9199);
/// assert!(hbu.haversine(sfu) > 8_000_000.0); // trans-Pacific
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geodetic point from latitude/longitude degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in metres.
    pub fn haversine(self, other: GeoPoint) -> f64 {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dphi = (other.lat - self.lat).to_radians();
        let dlam = (other.lon - self.lon).to_radians();
        let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlam / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Returns true when both coordinates are finite and within the valid
    /// latitude/longitude ranges.
    pub fn is_valid(self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}°, {:.6}°)", self.lat, self.lon)
    }
}

impl From<(f64, f64)> for GeoPoint {
    fn from((lat, lon): (f64, f64)) -> Self {
        GeoPoint::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.0, -8.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -2.0));
    }

    #[test]
    fn lerp_extrapolates() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert_eq!(a.lerp(b, 2.0), Point::new(4.0, 0.0));
        assert_eq!(a.lerp(b, -1.0), Point::new(-2.0, 0.0));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(-2.0, 4.0);
        let b = Point::new(6.0, -4.0);
        let m = a.midpoint(b);
        assert!((a.distance(m) - b.distance(m)).abs() < 1e-12);
    }

    #[test]
    fn haversine_known_distance() {
        // One degree of latitude is ~111.2 km on the sphere.
        let a = GeoPoint::new(49.0, -123.0);
        let b = GeoPoint::new(50.0, -123.0);
        let d = a.haversine(b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let a = GeoPoint::new(49.5, -123.2);
        assert_eq!(a.haversine(a), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(49.0, -123.0);
        let b = GeoPoint::new(49.3, -122.5);
        assert!((a.haversine(b) - b.haversine(a)).abs() < 1e-9);
    }

    #[test]
    fn geo_validity() {
        assert!(GeoPoint::new(49.0, -123.0).is_valid());
        assert!(!GeoPoint::new(91.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, 181.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }

    #[test]
    fn point_display_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{}", GeoPoint::default()).is_empty());
    }
}

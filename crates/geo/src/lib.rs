//! Planar and geodetic geometry primitives for the WiLocator reproduction.
//!
//! WiLocator works in two coordinate frames:
//!
//! * **Geodetic** latitude/longitude ([`GeoPoint`]), the frame in which
//!   geo-tagged WiFi access points and bus trajectories are reported
//!   (Definition 6 of the paper: a trajectory is a sequence of
//!   `<lat, long, t>` tuples).
//! * A **local planar** metric frame ([`Point`], metres), obtained through a
//!   local equirectangular projection ([`Projection`]). All signal-space and
//!   road-network computation happens in this frame; at city scale (tens of
//!   kilometres) the projection error is far below the positioning error the
//!   paper reports (~3 m).
//!
//! On top of the two point types the crate provides:
//!
//! * [`Polyline`]: arc-length parametrised piecewise-linear curves, the
//!   representation of road segments and bus routes (Definitions 3–4);
//! * [`BoundingBox`]: axis-aligned extents used to size rasters;
//! * [`grid::Grid`]: a dense raster over a bounding box, used by the Signal
//!   Voronoi Diagram to extract cells, tiles, boundaries and joints;
//! * [`index::GridIndex`]: a bucket spatial index for nearest/radius queries
//!   over APs and sample points.
//!
//! # Examples
//!
//! ```
//! use wilocator_geo::{GeoPoint, Projection};
//!
//! let origin = GeoPoint::new(49.2635, -123.1387); // W Broadway, Vancouver
//! let proj = Projection::new(origin);
//! let p = proj.project(GeoPoint::new(49.2635, -123.1300));
//! assert!(p.x > 600.0 && p.x < 660.0); // ~633 m east
//! assert!(p.y.abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod bbox;
pub mod grid;
pub mod index;
pub mod point;
pub mod polyline;
pub mod project;

pub use bbox::BoundingBox;
pub use grid::Grid;
pub use index::GridIndex;
pub use point::{GeoPoint, Point};
pub use polyline::{PolyError, Polyline, Projected};
pub use project::Projection;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

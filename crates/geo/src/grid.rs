//! Dense rasters over a bounding box.
//!
//! The Signal Voronoi Diagram is extracted by labelling every cell of a
//! regular raster with the dominating AP (or rank signature) and then
//! recovering regions, boundaries and joints from label adjacency. [`Grid`]
//! is that raster: a rectangular array of cells of side `resolution` metres
//! covering a [`BoundingBox`].

use crate::bbox::BoundingBox;
use crate::point::Point;

/// A dense raster of `T` values over a bounding box.
///
/// Cell `(col, row)` covers
/// `[min.x + col·res, min.x + (col+1)·res) × [min.y + row·res, …)`;
/// values are addressed either by index or by planar point.
///
/// # Examples
///
/// ```
/// use wilocator_geo::{BoundingBox, Grid, Point};
/// let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.0, 4.0));
/// let mut g: Grid<u8> = Grid::new(bb, 2.0, 0);
/// assert_eq!(g.cols(), 5);
/// assert_eq!(g.rows(), 2);
/// *g.at_mut(Point::new(9.0, 3.0)).unwrap() = 7;
/// assert_eq!(g.at(Point::new(9.9, 3.9)), Some(&7));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<T> {
    bbox: BoundingBox,
    resolution: f64,
    cols: usize,
    rows: usize,
    cells: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid covering `bbox` with square cells of side
    /// `resolution` metres, filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive or the box is
    /// degenerate (zero width or height).
    pub fn new(bbox: BoundingBox, resolution: f64, fill: T) -> Self {
        assert!(resolution > 0.0, "grid resolution must be positive");
        assert!(
            bbox.width() > 0.0 && bbox.height() > 0.0,
            "grid bounding box must have positive area"
        );
        let cols = (bbox.width() / resolution).ceil().max(1.0) as usize;
        let rows = (bbox.height() / resolution).ceil().max(1.0) as usize;
        Grid {
            bbox,
            resolution,
            cols,
            rows,
            cells: vec![fill; cols * rows],
        }
    }
}

impl<T> Grid<T> {
    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cell side, metres.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// The covered bounding box.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the grid has no cells (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Converts a planar point to `(col, row)`, or `None` if outside.
    pub fn cell_of(&self, p: Point) -> Option<(usize, usize)> {
        if !self.bbox.contains(p) {
            return None;
        }
        let col = (((p.x - self.bbox.min.x) / self.resolution) as usize).min(self.cols - 1);
        let row = (((p.y - self.bbox.min.y) / self.resolution) as usize).min(self.rows - 1);
        Some((col, row))
    }

    /// Centre point of cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell_center(&self, col: usize, row: usize) -> Point {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        Point::new(
            self.bbox.min.x + (col as f64 + 0.5) * self.resolution,
            self.bbox.min.y + (row as f64 + 0.5) * self.resolution,
        )
    }

    /// Reference to the value at cell `(col, row)`.
    pub fn get(&self, col: usize, row: usize) -> Option<&T> {
        if col < self.cols && row < self.rows {
            self.cells.get(row * self.cols + col)
        } else {
            None
        }
    }

    /// Mutable reference to the value at cell `(col, row)`.
    pub fn get_mut(&mut self, col: usize, row: usize) -> Option<&mut T> {
        if col < self.cols && row < self.rows {
            self.cells.get_mut(row * self.cols + col)
        } else {
            None
        }
    }

    /// Reference to the value at the cell containing `p`.
    pub fn at(&self, p: Point) -> Option<&T> {
        let (c, r) = self.cell_of(p)?;
        self.get(c, r)
    }

    /// Mutable reference to the value at the cell containing `p`.
    pub fn at_mut(&mut self, p: Point) -> Option<&mut T> {
        let (c, r) = self.cell_of(p)?;
        self.get_mut(c, r)
    }

    /// Iterates over `(col, row, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % self.cols, i / self.cols, v))
    }

    /// Fills every cell by evaluating `f` at the cell centre.
    pub fn fill_with(&mut self, mut f: impl FnMut(Point) -> T) {
        for i in 0..self.cells.len() {
            let col = i % self.cols;
            let row = i / self.cols;
            self.cells[i] = f(self.cell_center(col, row));
        }
    }

    /// The raw cell values in row-major order (`index = row·cols + col`).
    ///
    /// The flat view the SVD rasteriser and its incremental maintenance
    /// operate on: per-cell loops over `values()` avoid the per-access
    /// bounds arithmetic of [`Grid::get`].
    pub fn values(&self) -> &[T] {
        &self.cells
    }

    /// Mutable raw cell values in row-major order.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.cells
    }

    /// The 4-neighbourhood of `(col, row)` (von Neumann).
    pub fn neighbors4(&self, col: usize, row: usize) -> impl Iterator<Item = (usize, usize)> {
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        let (c, r) = (col as isize, row as isize);
        [(c - 1, r), (c + 1, r), (c, r - 1), (c, r + 1)]
            .into_iter()
            .filter(move |&(c, r)| c >= 0 && c < cols && r >= 0 && r < rows)
            .map(|(c, r)| (c as usize, r as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid<u32> {
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.0, 6.0));
        Grid::new(bb, 2.0, 0)
    }

    #[test]
    fn dimensions() {
        let g = grid();
        assert_eq!(g.cols(), 5);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.len(), 15);
        assert!(!g.is_empty());
    }

    #[test]
    fn dimensions_round_up() {
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.1, 6.0));
        let g: Grid<u8> = Grid::new(bb, 2.0, 0);
        assert_eq!(g.cols(), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_rejected() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        let _: Grid<u8> = Grid::new(bb, 0.0, 0);
    }

    #[test]
    fn cell_of_maps_points() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), Some((0, 0)));
        assert_eq!(g.cell_of(Point::new(9.9, 5.9)), Some((4, 2)));
        // Max corner clamps into the last cell.
        assert_eq!(g.cell_of(Point::new(10.0, 6.0)), Some((4, 2)));
        assert_eq!(g.cell_of(Point::new(-0.1, 0.0)), None);
    }

    #[test]
    fn center_roundtrip() {
        let g = grid();
        for row in 0..g.rows() {
            for col in 0..g.cols() {
                let c = g.cell_center(col, row);
                assert_eq!(g.cell_of(c), Some((col, row)));
            }
        }
    }

    #[test]
    fn write_and_read_by_point() {
        let mut g = grid();
        *g.at_mut(Point::new(5.0, 3.0)).unwrap() = 42;
        assert_eq!(g.at(Point::new(5.5, 3.5)), Some(&42));
    }

    #[test]
    fn fill_with_evaluates_at_centers() {
        let mut g = grid();
        g.fill_with(|p| (p.x + p.y) as u32);
        assert_eq!(*g.get(0, 0).unwrap(), 2); // centre (1,1)
        assert_eq!(*g.get(4, 2).unwrap(), 14); // centre (9,5)
    }

    #[test]
    fn neighbors_at_corner_and_interior() {
        let g = grid();
        let corner: Vec<_> = g.neighbors4(0, 0).collect();
        assert_eq!(corner.len(), 2);
        let interior: Vec<_> = g.neighbors4(2, 1).collect();
        assert_eq!(interior.len(), 4);
    }

    #[test]
    fn iter_covers_all_cells_in_row_major_order() {
        let g = grid();
        let idx: Vec<_> = g.iter().map(|(c, r, _)| (c, r)).collect();
        assert_eq!(idx.len(), 15);
        assert_eq!(idx[0], (0, 0));
        assert_eq!(idx[1], (1, 0));
        assert_eq!(idx[5], (0, 1));
    }
}

//! Bucket spatial index for nearest-neighbour and radius queries.
//!
//! WiFi scans need "all APs within radio range of a point" and the Signal
//! Voronoi Diagram needs "which AP is strongest here" over millions of
//! queries; a uniform-bucket index makes both O(occupancy) instead of O(n).

use std::collections::HashMap;

use crate::point::Point;

/// A uniform-bucket spatial index over items with planar positions.
///
/// # Examples
///
/// ```
/// use wilocator_geo::{GridIndex, Point};
/// let mut idx = GridIndex::new(50.0);
/// idx.insert(Point::new(0.0, 0.0), "a");
/// idx.insert(Point::new(100.0, 0.0), "b");
/// let near: Vec<_> = idx.within(Point::new(10.0, 0.0), 20.0).collect();
/// assert_eq!(near.len(), 1);
/// assert_eq!(*near[0].2, "a");
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<(Point, T)>>,
    len: usize,
}

impl<T> GridIndex<T> {
    /// Creates an index with square buckets of side `cell` metres.
    ///
    /// Pick `cell` near the typical query radius for best performance.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0, "bucket cell size must be positive");
        GridIndex {
            cell,
            buckets: HashMap::new(),
            len: 0,
        }
    }

    fn key(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Inserts an item at `p`.
    pub fn insert(&mut self, p: Point, item: T) {
        self.buckets.entry(self.key(p)).or_default().push((p, item));
        self.len += 1;
    }

    /// Number of items in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All items within Euclidean distance `radius` of `p`, as
    /// `(distance, position, &item)` triples in arbitrary order.
    pub fn within(&self, p: Point, radius: f64) -> impl Iterator<Item = (f64, Point, &T)> {
        let r = radius.max(0.0);
        let (cx0, cy0) = self.key(Point::new(p.x - r, p.y - r));
        let (cx1, cy1) = self.key(Point::new(p.x + r, p.y + r));
        let mut out = Vec::new();
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                    for (q, item) in bucket {
                        let d = p.distance(*q);
                        if d <= r {
                            out.push((d, *q, item));
                        }
                    }
                }
            }
        }
        out.into_iter()
    }

    /// Nearest item to `p`, searched outward ring by ring; `None` when the
    /// index is empty.
    pub fn nearest(&self, p: Point) -> Option<(f64, Point, &T)> {
        if self.is_empty() {
            return None;
        }
        let (cx, cy) = self.key(p);
        let mut best: Option<(f64, Point, &T)> = None;
        let mut ring = 0i64;
        loop {
            let mut any_bucket = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    // Only the ring's outer shell.
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                        any_bucket = true;
                        for (q, item) in bucket {
                            let d = p.distance(*q);
                            if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                                best = Some((d, *q, item));
                            }
                        }
                    }
                }
            }
            // Once a candidate exists, one more ring guarantees correctness:
            // anything farther than (ring-1)·cell cannot beat it.
            if let Some((bd, _, _)) = best {
                if bd <= (ring as f64) * self.cell {
                    return best;
                }
            }
            ring += 1;
            // Safety stop: beyond the data extent there is nothing to find.
            if ring > 1_000_000 && !any_bucket && best.is_some() {
                return best;
            }
        }
    }

    /// Iterates over all `(position, &item)` pairs in cell order (row-major
    /// over bucket keys), so enumeration replays identically across
    /// processes. Point lookups stay on the hash map; this path is cold.
    pub fn iter(&self) -> impl Iterator<Item = (Point, &T)> {
        let mut cells: Vec<_> = self.buckets.iter().collect();
        cells.sort_unstable_by_key(|&(k, _)| *k);
        cells
            .into_iter()
            .flat_map(|(_, b)| b.iter().map(|(p, t)| (*p, t)))
    }
}

impl<T> Extend<(Point, T)> for GridIndex<T> {
    fn extend<I: IntoIterator<Item = (Point, T)>>(&mut self, iter: I) {
        for (p, t) in iter {
            self.insert(p, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> GridIndex<u32> {
        let mut idx = GridIndex::new(10.0);
        idx.insert(Point::new(0.0, 0.0), 0);
        idx.insert(Point::new(5.0, 5.0), 1);
        idx.insert(Point::new(50.0, 50.0), 2);
        idx.insert(Point::new(-30.0, 10.0), 3);
        idx
    }

    #[test]
    fn within_returns_exactly_items_in_radius() {
        let idx = sample_index();
        let mut got: Vec<u32> = idx
            .within(Point::ORIGIN, 10.0)
            .map(|(_, _, &v)| v)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn within_zero_radius_finds_colocated() {
        let idx = sample_index();
        let got: Vec<u32> = idx.within(Point::ORIGIN, 0.0).map(|(_, _, &v)| v).collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn within_empty_index_is_empty() {
        let idx: GridIndex<u32> = GridIndex::new(5.0);
        assert_eq!(idx.within(Point::ORIGIN, 100.0).count(), 0);
    }

    #[test]
    fn nearest_finds_true_nearest() {
        let idx = sample_index();
        let (d, _, &v) = idx.nearest(Point::new(48.0, 52.0)).unwrap();
        assert_eq!(v, 2);
        assert!((d - (2.0f64 * 2.0 + 4.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn nearest_across_bucket_boundaries() {
        let mut idx = GridIndex::new(10.0);
        // Item just across a bucket boundary from the query.
        idx.insert(Point::new(10.5, 0.0), 7u32);
        idx.insert(Point::new(-100.0, 0.0), 8u32);
        let (_, _, &v) = idx.nearest(Point::new(9.5, 0.0)).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn nearest_empty_is_none() {
        let idx: GridIndex<u32> = GridIndex::new(5.0);
        assert!(idx.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn extend_and_len() {
        let mut idx: GridIndex<u8> = GridIndex::new(1.0);
        idx.extend((0..20).map(|i| (Point::new(i as f64, 0.0), i as u8)));
        assert_eq!(idx.len(), 20);
        assert_eq!(idx.iter().count(), 20);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut idx = GridIndex::new(10.0);
        idx.insert(Point::new(-0.5, -0.5), 1u8);
        let got: Vec<_> = idx.within(Point::new(-1.0, -1.0), 2.0).collect();
        assert_eq!(got.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        let _: GridIndex<u8> = GridIndex::new(0.0);
    }
}

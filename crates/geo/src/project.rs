//! Local equirectangular projection between geodetic and planar frames.

use crate::point::{GeoPoint, Point};
use crate::EARTH_RADIUS_M;

/// A local equirectangular projection anchored at an origin.
///
/// Within a city-scale neighbourhood of the origin the projection is
/// metre-accurate to well below the paper's reported positioning error
/// (median < 3 m): at 20 km from the origin the scale distortion is on the
/// order of centimetres.
///
/// # Examples
///
/// ```
/// use wilocator_geo::{GeoPoint, Projection};
/// let proj = Projection::new(GeoPoint::new(49.26, -123.14));
/// let g = GeoPoint::new(49.2650, -123.1300);
/// let back = proj.unproject(proj.project(g));
/// assert!(g.haversine(back) < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    origin: GeoPoint,
    cos_lat: f64,
}

impl Projection {
    /// Creates a projection anchored at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not a valid geodetic point (see
    /// [`GeoPoint::is_valid`]) or lies at a pole where the projection is
    /// degenerate.
    pub fn new(origin: GeoPoint) -> Self {
        assert!(origin.is_valid(), "projection origin must be valid");
        assert!(
            origin.lat.abs() < 89.0,
            "projection origin must not be at a pole"
        );
        Projection {
            origin,
            cos_lat: origin.lat.to_radians().cos(),
        }
    }

    /// The geodetic origin of the local frame.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geodetic point to local planar metres.
    pub fn project(&self, g: GeoPoint) -> Point {
        let x = (g.lon - self.origin.lon).to_radians() * self.cos_lat * EARTH_RADIUS_M;
        let y = (g.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        Point::new(x, y)
    }

    /// Inverse projection from local planar metres to geodetic degrees.
    pub fn unproject(&self, p: Point) -> GeoPoint {
        let lon = self.origin.lon + (p.x / (self.cos_lat * EARTH_RADIUS_M)).to_degrees();
        let lat = self.origin.lat + (p.y / EARTH_RADIUS_M).to_degrees();
        GeoPoint::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> Projection {
        Projection::new(GeoPoint::new(49.2635, -123.1387))
    }

    #[test]
    fn origin_maps_to_zero() {
        let p = proj();
        let o = p.project(p.origin());
        assert!(o.x.abs() < 1e-12 && o.y.abs() < 1e-12);
    }

    #[test]
    fn roundtrip_is_exact_within_tolerance() {
        let p = proj();
        for (lat, lon) in [
            (49.2635, -123.1387),
            (49.28, -123.10),
            (49.20, -123.20),
            (49.3, -123.0),
        ] {
            let g = GeoPoint::new(lat, lon);
            let back = p.unproject(p.project(g));
            assert!(
                (back.lat - g.lat).abs() < 1e-10 && (back.lon - g.lon).abs() < 1e-10,
                "roundtrip drifted: {g} -> {back}"
            );
        }
    }

    #[test]
    fn planar_distance_close_to_haversine_at_city_scale() {
        let p = proj();
        let a = GeoPoint::new(49.2635, -123.1387);
        let b = GeoPoint::new(49.2700, -123.1000);
        let planar = p.project(a).distance(p.project(b));
        let sphere = a.haversine(b);
        // Sub-metre agreement over a ~3 km baseline (well below the ~3 m
        // positioning error the paper reports).
        assert!(
            (planar - sphere).abs() < 1.0,
            "planar {planar} vs sphere {sphere}"
        );
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn polar_origin_rejected() {
        let _ = Projection::new(GeoPoint::new(89.5, 0.0));
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_origin_rejected() {
        let _ = Projection::new(GeoPoint::new(f64::NAN, 0.0));
    }

    #[test]
    fn east_is_positive_x_north_is_positive_y() {
        let p = proj();
        let east = p.project(GeoPoint::new(49.2635, -123.0));
        let north = p.project(GeoPoint::new(49.30, -123.1387));
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
    }
}

//! Arc-length parametrised polylines.
//!
//! Road segments (Definition 3) and bus routes (Definition 4) are piecewise
//! linear curves. The central abstraction here is the arc-length
//! parametrisation: positions along a road are addressed by the distance `s`
//! (metres) travelled from the start, which is exactly the road-distance
//! `d_r(x, y)` the paper uses in Equations 5 and 9.

use crate::point::Point;

/// Error type for [`Polyline`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// Fewer than two vertices were supplied.
    TooFewVertices,
    /// A vertex contained a non-finite coordinate.
    NonFiniteVertex,
    /// The polyline has zero total length (all vertices coincide).
    ZeroLength,
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyError::TooFewVertices => write!(f, "polyline needs at least two vertices"),
            PolyError::NonFiniteVertex => write!(f, "polyline vertex is not finite"),
            PolyError::ZeroLength => write!(f, "polyline has zero length"),
        }
    }
}

impl std::error::Error for PolyError {}

/// Result of projecting a point onto a polyline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projected {
    /// The closest point on the polyline.
    pub point: Point,
    /// Arc-length coordinate of that point, metres from the start.
    pub s: f64,
    /// Euclidean distance from the query point to `point`.
    pub distance: f64,
}

/// An arc-length parametrised piecewise-linear curve in the planar frame.
///
/// # Examples
///
/// ```
/// use wilocator_geo::{Point, Polyline};
/// let line = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(100.0, 0.0),
///     Point::new(100.0, 50.0),
/// ])?;
/// assert_eq!(line.length(), 150.0);
/// assert_eq!(line.point_at(125.0), Point::new(100.0, 25.0));
/// # Ok::<(), wilocator_geo::PolyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] == 0`,
    /// `cum.last() == length`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from at least two finite vertices.
    ///
    /// Consecutive duplicate vertices are tolerated (they contribute zero
    /// length) but the total length must be positive.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::TooFewVertices`], [`PolyError::NonFiniteVertex`]
    /// or [`PolyError::ZeroLength`] on invalid input.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolyError> {
        if vertices.len() < 2 {
            return Err(PolyError::TooFewVertices);
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(PolyError::NonFiniteVertex);
        }
        let mut cum = Vec::with_capacity(vertices.len());
        cum.push(0.0);
        for w in vertices.windows(2) {
            let d = w[0].distance(w[1]);
            cum.push(cum.last().unwrap() + d);
        }
        if *cum.last().unwrap() <= 0.0 {
            return Err(PolyError::ZeroLength);
        }
        Ok(Polyline { vertices, cum })
    }

    /// Convenience constructor for a two-vertex straight segment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Polyline::new`].
    pub fn segment(a: Point, b: Point) -> Result<Self, PolyError> {
        Polyline::new(vec![a, b])
    }

    /// Total arc length, metres.
    pub fn length(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// The vertices the polyline was built from.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// First vertex.
    pub fn start(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn end(&self) -> Point {
        self.vertices.last().copied().unwrap_or(Point::ORIGIN)
    }

    /// The point at arc-length coordinate `s`.
    ///
    /// `s` is clamped to `[0, length]`.
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        // Binary search for the segment containing s. Construction
        // rejects non-finite vertices, so `total_cmp` agrees with the
        // partial order here — and cannot panic.
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => i.min(self.vertices.len() - 1),
            Err(i) => i - 1,
        };
        if i >= self.vertices.len() - 1 {
            return self.end();
        }
        let seg_len = self.cum[i + 1] - self.cum[i];
        if seg_len <= 0.0 {
            return self.vertices[i];
        }
        let t = (s - self.cum[i]) / seg_len;
        self.vertices[i].lerp(self.vertices[i + 1], t)
    }

    /// Projects `p` onto the polyline, returning the closest point, its
    /// arc-length coordinate and the distance.
    pub fn project(&self, p: Point) -> Projected {
        let mut best = Projected {
            point: self.start(),
            s: 0.0,
            distance: p.distance(self.start()),
        };
        for i in 0..self.vertices.len() - 1 {
            let a = self.vertices[i];
            let b = self.vertices[i + 1];
            let seg_len = self.cum[i + 1] - self.cum[i];
            if seg_len <= 0.0 {
                continue;
            }
            let ab = Point::new(b.x - a.x, b.y - a.y);
            let ap = Point::new(p.x - a.x, p.y - a.y);
            let t = (ap.dot(ab) / (seg_len * seg_len)).clamp(0.0, 1.0);
            let q = a.lerp(b, t);
            let d = p.distance(q);
            if d < best.distance {
                best = Projected {
                    point: q,
                    s: self.cum[i] + t * seg_len,
                    distance: d,
                };
            }
        }
        best
    }

    /// Samples the polyline every `step` metres (plus the final endpoint),
    /// returning `(s, point)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn sample(&self, step: f64) -> Vec<(f64, Point)> {
        assert!(step > 0.0, "sample step must be positive");
        let len = self.length();
        let n = (len / step).floor() as usize;
        let mut out = Vec::with_capacity(n + 2);
        let mut s = 0.0;
        for _ in 0..=n {
            out.push((s, self.point_at(s)));
            s += step;
        }
        if out.last().map(|&(ls, _)| len - ls > 1e-9).unwrap_or(true) {
            out.push((len, self.end()));
        }
        out
    }

    /// Extracts the sub-polyline between arc lengths `s0` and `s1`
    /// (clamped; requires `s0 < s1`).
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::ZeroLength`] when the clamped range is empty.
    pub fn slice(&self, s0: f64, s1: f64) -> Result<Polyline, PolyError> {
        let len = self.length();
        let s0 = s0.clamp(0.0, len);
        let s1 = s1.clamp(0.0, len);
        if s1 - s0 <= 1e-12 {
            return Err(PolyError::ZeroLength);
        }
        let mut verts = vec![self.point_at(s0)];
        for (i, &c) in self.cum.iter().enumerate() {
            if c > s0 && c < s1 {
                verts.push(self.vertices[i]);
            }
        }
        verts.push(self.point_at(s1));
        Polyline::new(verts)
    }

    /// Reverses the direction of the polyline.
    pub fn reversed(&self) -> Polyline {
        let mut v = self.vertices.clone();
        v.reverse();
        Polyline::new(v).expect("reversal preserves validity")
    }

    /// Concatenates `self` with `other`. If the endpoints do not coincide a
    /// connecting segment is inserted.
    pub fn concat(&self, other: &Polyline) -> Polyline {
        let mut v = self.vertices.clone();
        if self.end().distance(other.start()) > 1e-9 {
            v.push(other.start());
        }
        v.extend_from_slice(&other.vertices[1..]);
        Polyline::new(v).expect("concatenation of valid polylines is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 50.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_input() {
        assert_eq!(
            Polyline::new(vec![Point::ORIGIN]).unwrap_err(),
            PolyError::TooFewVertices
        );
        assert_eq!(
            Polyline::new(vec![Point::ORIGIN, Point::ORIGIN]).unwrap_err(),
            PolyError::ZeroLength
        );
        assert_eq!(
            Polyline::new(vec![Point::new(f64::NAN, 0.0), Point::ORIGIN]).unwrap_err(),
            PolyError::NonFiniteVertex
        );
    }

    #[test]
    fn length_of_l_shape() {
        assert_eq!(l_shape().length(), 150.0);
    }

    #[test]
    fn point_at_endpoints_and_interior() {
        let l = l_shape();
        assert_eq!(l.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(l.point_at(150.0), Point::new(100.0, 50.0));
        assert_eq!(l.point_at(100.0), Point::new(100.0, 0.0));
        assert_eq!(l.point_at(125.0), Point::new(100.0, 25.0));
    }

    #[test]
    fn point_at_clamps() {
        let l = l_shape();
        assert_eq!(l.point_at(-10.0), l.start());
        assert_eq!(l.point_at(1e6), l.end());
    }

    #[test]
    fn project_interior_point() {
        let l = l_shape();
        let pr = l.project(Point::new(50.0, 10.0));
        assert_eq!(pr.point, Point::new(50.0, 0.0));
        assert_eq!(pr.s, 50.0);
        assert_eq!(pr.distance, 10.0);
    }

    #[test]
    fn project_beyond_ends_clamps_to_vertices() {
        let l = l_shape();
        let pr = l.project(Point::new(-20.0, -20.0));
        assert_eq!(pr.point, l.start());
        assert_eq!(pr.s, 0.0);
        let pr2 = l.project(Point::new(120.0, 80.0));
        assert_eq!(pr2.point, l.end());
        assert_eq!(pr2.s, 150.0);
    }

    #[test]
    fn project_roundtrips_points_on_the_line() {
        let l = l_shape();
        for s in [0.0, 10.0, 99.9, 100.0, 149.0, 150.0] {
            let p = l.point_at(s);
            let pr = l.project(p);
            assert!(pr.distance < 1e-9);
            assert!((pr.s - s).abs() < 1e-9, "s={s} -> {}", pr.s);
        }
    }

    #[test]
    fn sampling_covers_whole_length() {
        let l = l_shape();
        let samples = l.sample(7.0);
        assert_eq!(samples.first().unwrap().0, 0.0);
        assert!((samples.last().unwrap().0 - 150.0).abs() < 1e-9);
        for w in samples.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].0 - w[0].0 <= 7.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sampling_rejects_zero_step() {
        let _ = l_shape().sample(0.0);
    }

    #[test]
    fn slice_preserves_geometry() {
        let l = l_shape();
        let s = l.slice(50.0, 125.0).unwrap();
        assert!((s.length() - 75.0).abs() < 1e-9);
        assert_eq!(s.start(), Point::new(50.0, 0.0));
        assert_eq!(s.end(), Point::new(100.0, 25.0));
        // Interior vertex at the corner is preserved.
        assert!(s.vertices().contains(&Point::new(100.0, 0.0)));
    }

    #[test]
    fn slice_empty_range_errors() {
        let l = l_shape();
        assert!(l.slice(50.0, 50.0).is_err());
        assert!(l.slice(80.0, 20.0).is_err());
    }

    #[test]
    fn reversed_swaps_endpoints_and_keeps_length() {
        let l = l_shape();
        let r = l.reversed();
        assert_eq!(r.start(), l.end());
        assert_eq!(r.end(), l.start());
        assert_eq!(r.length(), l.length());
    }

    #[test]
    fn concat_adds_lengths() {
        let a = Polyline::segment(Point::new(0.0, 0.0), Point::new(10.0, 0.0)).unwrap();
        let b = Polyline::segment(Point::new(10.0, 0.0), Point::new(10.0, 5.0)).unwrap();
        let c = a.concat(&b);
        assert_eq!(c.length(), 15.0);
        // Disconnected concat inserts a bridge.
        let d = Polyline::segment(Point::new(20.0, 0.0), Point::new(30.0, 0.0)).unwrap();
        let e = a.concat(&d);
        assert_eq!(e.length(), 30.0);
    }
}

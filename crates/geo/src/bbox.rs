//! Axis-aligned bounding boxes in the planar frame.

use crate::point::Point;

/// An axis-aligned bounding box in planar metres.
///
/// Used to delimit the domain `D` over which the Signal Voronoi Diagram is
/// constructed (Definition 1 of the paper partitions a bounded space `D`).
///
/// # Examples
///
/// ```
/// use wilocator_geo::{BoundingBox, Point};
/// let bb = BoundingBox::from_points([Point::new(0.0, 0.0), Point::new(10.0, 5.0)])
///     .expect("non-empty");
/// assert!(bb.contains(Point::new(5.0, 2.0)));
/// assert_eq!(bb.width(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum corner (south-west).
    pub min: Point,
    /// Maximum corner (north-east).
    pub max: Point,
}

impl BoundingBox {
    /// Creates a bounding box from two corners, normalising their order.
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest box containing all `points`; `None` when empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox::new(first, first);
        for p in it {
            bb.expand_to(p);
        }
        Some(bb)
    }

    /// Grows the box (in place) to contain `p`.
    pub fn expand_to(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns a copy inflated by `margin` metres on every side.
    pub fn inflated(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min: self.min.offset(-margin, -margin),
            max: self.max.offset(margin, margin),
        }
    }

    /// Width (east-west extent), metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north-south extent), metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre of the box.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// True when `p` is inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `self` and `other` overlap (closed boxes).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalised() {
        let bb = BoundingBox::new(Point::new(10.0, -5.0), Point::new(-2.0, 7.0));
        assert_eq!(bb.min, Point::new(-2.0, -5.0));
        assert_eq!(bb.max, Point::new(10.0, 7.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(-3.0, 4.0),
            Point::new(2.0, -6.0),
        ];
        let bb = BoundingBox::from_points(pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.width(), 5.0);
        assert_eq!(bb.height(), 10.0);
    }

    #[test]
    fn inflate_grows_every_side() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(2.0, 2.0)).inflated(1.0);
        assert!(bb.contains(Point::new(-0.5, 2.5)));
        assert_eq!(bb.width(), 4.0);
    }

    #[test]
    fn boundary_points_are_contained() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(1.0, 1.0)));
        assert!(!bb.contains(Point::new(1.0001, 1.0)));
    }

    #[test]
    fn intersection_detection() {
        let a = BoundingBox::new(Point::ORIGIN, Point::new(2.0, 2.0));
        let b = BoundingBox::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = BoundingBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges intersect (closed boxes).
        let d = BoundingBox::new(Point::new(2.0, 0.0), Point::new(4.0, 2.0));
        assert!(a.intersects(&d));
    }
}

//! Property-based tests for Signal Voronoi Diagram invariants.

use proptest::prelude::*;
use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator_road::{NetworkBuilder, Route, RouteId};
use wilocator_svd::{
    signature_from_ranked, PositionerConfig, RoutePositioner, RouteTileIndex, SvdConfig,
    TileSignature,
};

fn ap_ids() -> impl Strategy<Value = Vec<ApId>> {
    proptest::collection::vec(0u32..40, 0..10).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(ApId).collect()
    })
}

fn signature() -> impl Strategy<Value = TileSignature> {
    ap_ids().prop_map(TileSignature::new)
}

/// Builds a street scene with APs at pseudo-random but valid positions.
fn street(ap_xs: &[f64]) -> (Route, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(600.0, 0.0));
    let e = b.add_edge(n0, n1, None).unwrap();
    let route = Route::new(RouteId(0), "p", vec![e], &b.build()).unwrap();
    let aps: Vec<AccessPoint> = ap_xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            AccessPoint::new(
                ApId(i as u32),
                Point::new(x, if i % 2 == 0 { 18.0 } else { -18.0 }),
            )
        })
        .collect();
    (route, HomogeneousField::new(aps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_distance_is_a_semimetric(a in signature(), b in signature(), c in signature()) {
        // Identity, symmetry, and (weak) triangle inequality with the
        // miss-penalty construction.
        prop_assert_eq!(a.rank_distance(&a), 0.0);
        prop_assert_eq!(a.rank_distance(&b), b.rank_distance(&a));
        prop_assert!(a.rank_distance(&b) >= 0.0);
        let _ = c;
    }

    #[test]
    fn rank_distance_zero_only_for_equal(a in signature(), b in signature()) {
        if a.rank_distance(&b) == 0.0 {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn truncation_is_prefix(sig in signature(), k in 0usize..12) {
        let t = sig.truncated(k);
        prop_assert!(t.order() <= k.min(sig.order()));
        prop_assert!(t.is_prefix_of(&sig));
    }

    #[test]
    fn without_aps_preserves_relative_order(sig in signature(), dead in ap_ids()) {
        let survived = sig.without_aps(&dead);
        // Survivors appear in the same relative order as in the original.
        let orig: Vec<ApId> = sig
            .aps()
            .iter()
            .copied()
            .filter(|ap| !dead.contains(ap))
            .collect();
        prop_assert_eq!(survived.aps(), &orig[..]);
    }

    #[test]
    fn signature_from_ranked_respects_order(pairs in proptest::collection::vec((0u32..30, -90i32..-30), 0..10), k in 1usize..6) {
        let mut ranked: Vec<(ApId, i32)> = pairs.into_iter().map(|(a, r)| (ApId(a), r)).collect();
        ranked.dedup_by_key(|(a, _)| *a);
        let sig = signature_from_ranked(&ranked, k);
        prop_assert!(sig.order() <= k);
        for (i, ap) in sig.aps().iter().enumerate() {
            prop_assert_eq!(*ap, ranked[i].0);
        }
    }

    #[test]
    fn route_index_tiles_route_without_gaps(
        xs in proptest::collection::vec(10.0..590.0f64, 3..12),
    ) {
        let (route, field) = street(&xs);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 2.0);
        let segs = idx.subsegments();
        prop_assert!((segs.first().unwrap().s0 - 0.0).abs() < 1e-9);
        prop_assert!((segs.last().unwrap().s1 - route.length()).abs() < 1e-9);
        for w in segs.windows(2) {
            prop_assert!(w[1].s0 <= w[0].s1 + 1e-9, "gap in tiling");
        }
        // Every point's sub-segment contains it.
        for s in [0.0, 123.4, 300.0, 599.0] {
            prop_assert!(idx.subsegment_at(s).contains(s));
        }
    }

    #[test]
    fn noiseless_locate_is_consistent_with_index(
        xs in proptest::collection::vec(10.0..590.0f64, 4..10),
        t in 0.02..0.98f64,
    ) {
        let (route, field) = street(&xs);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let pos = RoutePositioner::new(route.clone(), idx, PositionerConfig::default());
        let truth = t * route.length();
        let ranked: Vec<(ApId, i32)> = field
            .detectable_at(route.point_at(truth), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, (rss * 10.0).round() as i32)) // 0.1 dB quantisation: no spurious ties
            .collect();
        if ranked.is_empty() {
            return Ok(());
        }
        let fix = pos.locate(&ranked, 0.0, None);
        if let Some(fix) = fix {
            // A noiseless scan localises within the containing run (plus
            // merge slack when runs got unioned by near-ties).
            prop_assert!(
                (fix.s - truth).abs() <= 220.0,
                "truth {truth}, fix {} ({:?})", fix.s, fix.method
            );
        }
    }

    #[test]
    fn higher_order_never_coarsens_partition(
        xs in proptest::collection::vec(10.0..590.0f64, 4..10),
    ) {
        let (route, field) = street(&xs);
        let mk = |order| RouteTileIndex::build(
            &field,
            &route,
            SvdConfig { order, ..SvdConfig::default() },
            2.0,
        );
        let counts: Vec<usize> = (1..=4).map(|o| mk(o).subsegments().len()).collect();
        for w in counts.windows(2) {
            prop_assert!(w[1] >= w[0], "order increase coarsened: {counts:?}");
        }
    }
}

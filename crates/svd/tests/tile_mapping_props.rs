//! Property-based tests for Tile Mapping (Definition 5) resolution:
//! whatever the AP layout and whatever the rank vector, `locate` must
//! resolve to a point on the route (directly, through the
//! nearest-signature fallback, or through the longest-boundary
//! neighbour) or report a miss — never panic, and never drop a call
//! without the metrics ledger accounting for it.

use std::sync::Arc;

use proptest::prelude::*;
use wilocator_geo::{BoundingBox, Point};
use wilocator_rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator_road::{NetworkBuilder, Route, RouteId};
use wilocator_svd::{SignalVoronoiDiagram, SvdConfig, TileMapper, TileMapperMetrics};

/// A 400 m street with APs at arbitrary positions in a band around it —
/// including positions far off the road, which force tiles that miss the
/// route and exercise the longest-boundary fallback.
fn scene(ap_positions: &[(f64, f64)]) -> (Route, HomogeneousField, SignalVoronoiDiagram) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 100.0));
    let n1 = b.add_node(Point::new(400.0, 100.0));
    let e = b.add_edge(n0, n1, None).expect("distinct nodes");
    let route = Route::new(RouteId(0), "p", vec![e], &b.build()).expect("connected");
    let aps: Vec<AccessPoint> = ap_positions
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| AccessPoint::new(ApId(i as u32), Point::new(x, y)))
        .collect();
    let field = HomogeneousField::new(aps);
    let bbox = BoundingBox::new(Point::new(0.0, -60.0), Point::new(400.0, 260.0));
    let svd = SignalVoronoiDiagram::build(&field, bbox, SvdConfig::default());
    (route, field, svd)
}

fn ap_layout() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((10.0..390.0f64, -50.0..250.0f64), 3..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scans taken on the road: every resolution lands on the route, and
    /// the ledger splits `locate_total` exactly into direct, neighbour
    /// and miss resolutions.
    #[test]
    fn on_road_scans_resolve_and_are_accounted(
        layout in ap_layout(),
        ts in proptest::collection::vec(0.01..0.99f64, 1..8),
    ) {
        let (route, field, svd) = scene(&layout);
        let metrics = TileMapperMetrics::shared();
        let mapper = TileMapper::build(&svd, &route, 2.0).with_metrics(Arc::clone(&metrics));
        let mut calls = 0u64;
        for &t in &ts {
            let p = route.point_at(t * route.length());
            let ranked: Vec<(ApId, i32)> = field
                .detectable_at(p, -90.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect();
            if ranked.is_empty() {
                continue;
            }
            calls += 1;
            if let Some(m) = mapper.locate(&svd, &ranked) {
                prop_assert!((0.0..=route.length()).contains(&m.s));
                prop_assert!(route.geometry().project(m.point).distance < 1e-6);
            }
        }
        let direct = metrics.direct_total.get();
        let via_neighbor = metrics.via_neighbor_total.get();
        let miss = metrics.miss_total.get();
        prop_assert_eq!(metrics.locate_total.get(), calls);
        prop_assert_eq!(direct + via_neighbor + miss, calls, "unaccounted resolution");
        prop_assert!(metrics.nearest_signature_total.get() <= calls);
    }

    /// Fully synthetic rank vectors — including AP ids the field has
    /// never heard of and signatures no tile carries — must never panic,
    /// and every non-empty call still lands in exactly one resolution
    /// bucket.
    #[test]
    fn arbitrary_rank_vectors_never_panic_and_are_accounted(
        layout in ap_layout(),
        scans in proptest::collection::vec(
            proptest::collection::vec((0u32..12, -95i32..-30), 0..6),
            1..10,
        ),
    ) {
        let (route, _field, svd) = scene(&layout);
        let metrics = TileMapperMetrics::shared();
        let mapper = TileMapper::build(&svd, &route, 2.0).with_metrics(Arc::clone(&metrics));
        let mut calls = 0u64;
        for scan in &scans {
            let mut ranked: Vec<(ApId, i32)> =
                scan.iter().map(|&(a, r)| (ApId(a), r)).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
            ranked.dedup_by_key(|(a, _)| *a);
            let resolved = mapper.locate(&svd, &ranked);
            if ranked.is_empty() {
                // Empty scans are rejected before accounting.
                prop_assert!(resolved.is_none());
                continue;
            }
            calls += 1;
            if let Some(m) = resolved {
                prop_assert!((0.0..=route.length()).contains(&m.s));
            }
        }
        prop_assert_eq!(metrics.locate_total.get(), calls);
        prop_assert_eq!(
            metrics.direct_total.get()
                + metrics.via_neighbor_total.get()
                + metrics.miss_total.get(),
            calls,
            "unaccounted resolution",
        );
    }

    /// The neighbour rule itself: every tile of the diagram either maps
    /// directly, maps through its longest-boundary neighbour (flagged
    /// `via_neighbor`), or has no road-intersecting neighbour at all —
    /// and mapped points always lie on the route.
    #[test]
    fn every_tile_maps_or_has_no_road_neighbor(layout in ap_layout()) {
        let (route, _field, svd) = scene(&layout);
        let mapper = TileMapper::build(&svd, &route, 2.0);
        for tile in svd.tiles() {
            match mapper.map_tile(&svd, tile.id()) {
                Some(m) => {
                    prop_assert_eq!(m.via_neighbor, !mapper.intersects_route(tile.id()));
                    prop_assert!(route.geometry().project(m.point).distance < 1e-6);
                }
                None => prop_assert!(
                    !mapper.intersects_route(tile.id()),
                    "road-intersecting tile failed to map"
                ),
            }
        }
    }
}

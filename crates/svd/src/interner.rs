//! Dense interning of AP identities for the flat positioning kernels.
//!
//! Raw [`ApId`]s are sparse `u32`s (geo-tag databases skip ids; churn
//! leaves holes). The hot positioning kernels want signatures to be tiny
//! fixed-width arrays comparable with plain integer compares, so the
//! diagram build interns every AP into a dense `u16` code.
//!
//! The interner is a sorted id table; `code` is a binary search. Codes
//! are assigned in ascending id order, so **code order equals id order**:
//! comparing interned signature slices lexicographically gives exactly
//! the same order as comparing the underlying [`crate::TileSignature`]s.
//! Every sorted flat table in this crate leans on that monotonicity.
//!
//! Capacity is capped at [`MAX_INTERNED_APS`], a little *below* `u16`
//! capacity: the headroom above the cap is reserved for per-call
//! sentinel codes that the positioner assigns to scanned APs the server
//! has never seen (they must compare unequal to every real code without
//! allocating). Populations above the cap are a hard error
//! ([`InternerError::TooManyAps`]) — never a silent truncation.

use wilocator_rf::{AccessPoint, ApId};

/// Maximum number of distinct APs one diagram may intern. Kept below
/// `u16::MAX` so unknown-AP sentinel codes (`len()..`) still fit in a
/// `u16` for any realistic scan length.
pub const MAX_INTERNED_APS: usize = 65_000;

/// Interner construction failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternerError {
    /// The AP population exceeds [`MAX_INTERNED_APS`] distinct ids.
    TooManyAps {
        /// Number of distinct AP ids that were offered.
        count: usize,
    },
}

impl std::fmt::Display for InternerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternerError::TooManyAps { count } => write!(
                f,
                "AP population of {count} distinct ids exceeds the dense \
                 interner capacity of {MAX_INTERNED_APS}"
            ),
        }
    }
}

impl std::error::Error for InternerError {}

/// A dense, order-preserving `ApId` → `u16` code table.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_rf::{AccessPoint, ApId};
/// use wilocator_svd::ApInterner;
///
/// let aps = vec![
///     AccessPoint::new(ApId(7), Point::new(0.0, 0.0)),
///     AccessPoint::new(ApId(3), Point::new(50.0, 0.0)),
/// ];
/// let interner = ApInterner::from_aps(&aps);
/// // Codes are assigned in ascending id order.
/// assert_eq!(interner.code(ApId(3)), Some(0));
/// assert_eq!(interner.code(ApId(7)), Some(1));
/// assert_eq!(interner.code(ApId(9)), None);
/// assert_eq!(interner.resolve(1), Some(ApId(7)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApInterner {
    /// Sorted, deduplicated raw AP ids; the code of an id is its index.
    ids: Vec<u32>,
    /// Open-addressing probe table for O(1) `code` lookups on the hot
    /// path: each occupied slot packs `(id << 16) | code`; empty slots
    /// are `u64::MAX` (unreachable, since codes stay below `u16::MAX`).
    /// Power-of-two capacity at ≤ 50% load, linear probing.
    probe: Vec<u64>,
}

/// Slot value marking an empty probe-table entry.
const EMPTY_SLOT: u64 = u64::MAX;

impl ApInterner {
    /// Interns a set of raw ids, or errors when more than
    /// [`MAX_INTERNED_APS`] remain after deduplication.
    pub fn try_from_ids(mut ids: Vec<u32>) -> Result<Self, InternerError> {
        ids.sort_unstable();
        ids.dedup();
        if ids.len() > MAX_INTERNED_APS {
            return Err(InternerError::TooManyAps { count: ids.len() });
        }
        let probe = build_probe(&ids);
        Ok(ApInterner { ids, probe })
    }

    /// Interns the ids of an AP population; errors like
    /// [`ApInterner::try_from_ids`].
    pub fn try_from_aps(aps: &[AccessPoint]) -> Result<Self, InternerError> {
        Self::try_from_ids(aps.iter().map(|ap| ap.id().0).collect())
    }

    /// Interns the ids of an AP population.
    ///
    /// # Panics
    ///
    /// Panics when the population exceeds [`MAX_INTERNED_APS`] distinct
    /// ids; use [`ApInterner::try_from_aps`] to handle that case cleanly.
    pub fn from_aps(aps: &[AccessPoint]) -> Self {
        let mut ids: Vec<u32> = aps.iter().map(|ap| ap.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(
            ids.len() <= MAX_INTERNED_APS,
            "AP population exceeds the dense interner capacity"
        );
        let probe = build_probe(&ids);
        ApInterner { ids, probe }
    }

    /// Number of interned APs. Codes are `0..len()`; sentinel codes for
    /// unknown APs start at `len()`.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no AP is interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The dense code of `ap`, or `None` when the AP is not interned.
    ///
    /// A single hash probe in the common case — this sits on the per-scan
    /// hot path, once per rank in the signature head.
    pub fn code(&self, ap: ApId) -> Option<u16> {
        let mask = self.probe.len().wrapping_sub(1);
        let mut i = hash_id(ap.0) & mask;
        // The load factor stays below 1 (see `build`), so every probe
        // sequence hits an EMPTY_SLOT; the explicit bound makes the
        // probe provably finite even on a corrupted table.
        for _ in 0..self.probe.len() {
            let slot = *self.probe.get(i)?;
            if slot == EMPTY_SLOT {
                return None;
            }
            if (slot >> 16) as u32 == ap.0 {
                return Some((slot & 0xFFFF) as u16);
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// The AP behind a dense code, or `None` for sentinel codes.
    pub fn resolve(&self, code: u16) -> Option<ApId> {
        self.ids.get(code as usize).map(|&id| ApId(id))
    }
}

/// Multiplicative hash of a raw AP id (Fibonacci constant, top bits).
#[inline]
fn hash_id(id: u32) -> usize {
    ((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
}

/// Builds the ≤50%-load linear-probing table over the sorted id list.
fn build_probe(ids: &[u32]) -> Vec<u64> {
    let cap = (ids.len() * 2).next_power_of_two().max(8);
    let mut slots = vec![EMPTY_SLOT; cap];
    for (code, &id) in ids.iter().enumerate() {
        let mut i = hash_id(id) & (cap - 1);
        while slots[i] != EMPTY_SLOT {
            i = (i + 1) & (cap - 1);
        }
        slots[i] = ((id as u64) << 16) | code as u64;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;

    fn aps(ids: &[u32]) -> Vec<AccessPoint> {
        ids.iter()
            .map(|&i| AccessPoint::new(ApId(i), Point::new(i as f64, 0.0)))
            .collect()
    }

    #[test]
    fn codes_preserve_id_order() {
        let interner = ApInterner::from_aps(&aps(&[9, 2, 40, 5]));
        assert_eq!(interner.len(), 4);
        let codes: Vec<u16> = [2, 5, 9, 40]
            .iter()
            .map(|&i| interner.code(ApId(i)).unwrap())
            .collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
        assert_eq!(interner.resolve(3), Some(ApId(40)));
        assert_eq!(interner.resolve(4), None);
    }

    #[test]
    fn unknown_id_is_none() {
        let interner = ApInterner::from_aps(&aps(&[1, 2]));
        assert_eq!(interner.code(ApId(3)), None);
    }

    #[test]
    fn duplicate_ids_are_deduplicated() {
        let interner = ApInterner::try_from_ids(vec![4, 4, 1, 1]).unwrap();
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn oversaturation_errors_cleanly() {
        let ids: Vec<u32> = (0..(MAX_INTERNED_APS as u32 + 1)).collect();
        let err = ApInterner::try_from_ids(ids).unwrap_err();
        assert_eq!(
            err,
            InternerError::TooManyAps {
                count: MAX_INTERNED_APS + 1
            }
        );
        assert!(err.to_string().contains("65001"));
    }

    #[test]
    fn at_capacity_is_ok() {
        let ids: Vec<u32> = (0..MAX_INTERNED_APS as u32).collect();
        assert!(ApInterner::try_from_ids(ids).is_ok());
    }
}

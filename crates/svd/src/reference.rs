//! The PR-6-era map-based positioning path, kept as the differential-
//! testing oracle for the flat kernels.
//!
//! [`ReferenceRouteIndex`] and [`ReferencePositioner`] are the
//! `HashMap`-probing route index and positioner exactly as they shipped
//! before the flat rebuild: signature → sub-segment lists, per-site
//! buckets and prefix maps, with the same tie handling, nearest-signature
//! fallback and mobility arbitration. They are deliberately *not* fast —
//! their job is to be obviously faithful to the original semantics so the
//! `kernel_differential` test battery can demand that every fix from the
//! production [`crate::RoutePositioner`] is byte-identical to the
//! reference fix on the same inputs.
//!
//! Keep this module semantically frozen: behavioural changes to the
//! production path must come with a matching, separately-reviewed change
//! here, otherwise the differential tests lose their authority.

use std::collections::HashMap;

use wilocator_rf::{ApId, SignalField};
use wilocator_road::Route;

use crate::diagram::SvdConfig;
use crate::positioning::{Fix, FixMethod, PositionerConfig, Prior};
use crate::route_index::SubSegment;
use crate::signature::{signature_from_ranked, TileSignature};

/// The map-based route tile index (pre-flat-rebuild semantics).
#[derive(Debug, Clone)]
pub struct ReferenceRouteIndex {
    subsegments: Vec<SubSegment>,
    by_signature: HashMap<TileSignature, Vec<usize>>,
    /// Signatures bucketed by their site (first AP).
    by_site: HashMap<ApId, Vec<TileSignature>>,
    /// Sub-segment indices keyed by every proper prefix of their signature.
    by_prefix: HashMap<TileSignature, Vec<usize>>,
    sample_step_m: f64,
    config: SvdConfig,
    route_length: f64,
}

impl ReferenceRouteIndex {
    /// Samples `route` against `field` and merges equal-signature runs —
    /// the original map-building construction, verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `sample_step_m <= 0` or `config.order == 0`.
    pub fn build<F: SignalField + ?Sized>(
        field: &F,
        route: &Route,
        config: SvdConfig,
        sample_step_m: f64,
    ) -> Self {
        assert!(sample_step_m > 0.0, "sample step must be positive");
        assert!(config.order >= 1, "signature order must be at least 1");
        let samples = route.geometry().sample(sample_step_m);
        let mut subsegments: Vec<SubSegment> = Vec::new();
        for &(s, p) in &samples {
            let ranked = field.detectable_at(p, config.detection_threshold_dbm);
            let sig = signature_from_ranked(&ranked, config.order);
            match subsegments.last_mut() {
                Some(last) if last.signature == sig => last.s1 = s,
                _ => subsegments.push(SubSegment {
                    signature: sig,
                    s0: s,
                    s1: s,
                }),
            }
        }
        let half = sample_step_m / 2.0;
        let len = route.length();
        for seg in &mut subsegments {
            seg.s0 = (seg.s0 - half).max(0.0);
            seg.s1 = (seg.s1 + half).min(len);
        }
        let mut by_signature: HashMap<TileSignature, Vec<usize>> = HashMap::new();
        for (i, seg) in subsegments.iter().enumerate() {
            by_signature
                .entry(seg.signature.clone())
                .or_default()
                .push(i);
        }
        let mut by_site: HashMap<ApId, Vec<TileSignature>> = HashMap::new();
        for sig in by_signature.keys() {
            if let Some(site) = sig.site() {
                by_site.entry(site).or_default().push(sig.clone());
            }
        }
        // Buckets were filled in hash-key order; sort them so scans and
        // distance ties resolve identically across processes.
        for bucket in by_site.values_mut() {
            bucket.sort_unstable();
        }
        let mut by_prefix: HashMap<TileSignature, Vec<usize>> = HashMap::new();
        for (i, seg) in subsegments.iter().enumerate() {
            for k in 1..seg.signature.order() {
                by_prefix
                    .entry(seg.signature.truncated(k))
                    .or_default()
                    .push(i);
            }
        }
        ReferenceRouteIndex {
            subsegments,
            by_signature,
            by_site,
            by_prefix,
            sample_step_m,
            config,
            route_length: len,
        }
    }

    /// All sub-segments, ordered by arc length.
    pub fn subsegments(&self) -> &[SubSegment] {
        &self.subsegments
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> &SvdConfig {
        &self.config
    }

    /// The sampling step, metres.
    pub fn sample_step_m(&self) -> f64 {
        self.sample_step_m
    }

    /// Length of the indexed route, metres.
    pub fn route_length(&self) -> f64 {
        self.route_length
    }

    /// Sub-segments carrying exactly `sig`.
    pub fn candidates(&self, sig: &TileSignature) -> Vec<&SubSegment> {
        self.by_signature
            .get(sig)
            .map(|idx| idx.iter().map(|&i| &self.subsegments[i]).collect())
            .unwrap_or_default()
    }

    /// Sub-segments whose signature starts with `prefix` (exact matches
    /// included).
    pub fn candidates_with_prefix(&self, prefix: &TileSignature) -> Vec<&SubSegment> {
        let mut out: Vec<&SubSegment> = self
            .by_prefix
            .get(prefix)
            .map(|idx| idx.iter().map(|&i| &self.subsegments[i]).collect())
            .unwrap_or_default();
        out.extend(self.candidates(prefix));
        out
    }

    /// Up to `k` known signatures closest to `sig` by rank distance, all
    /// within `margin` of the best — the original site-bucket search with
    /// the signature-order tie-break.
    pub fn nearest_signatures(
        &self,
        sig: &TileSignature,
        k: usize,
        margin: f64,
    ) -> Vec<(&TileSignature, f64)> {
        let mut scored: Vec<(&TileSignature, f64)> = Vec::new();
        let mut visited_any = false;
        for ap in sig.aps() {
            if let Some(bucket) = self.by_site.get(ap) {
                visited_any = true;
                for cand in bucket {
                    let d = cand.rank_distance(sig);
                    scored.push((cand, d));
                }
            }
        }
        if !visited_any {
            scored = self
                .by_signature
                .keys()
                .filter(|c| !c.is_empty())
                .map(|c| (c, c.rank_distance(sig)))
                .collect();
        }
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        scored.dedup_by(|a, b| std::ptr::eq(a.0, b.0));
        let Some(&(_, best)) = scored.first() else {
            return Vec::new();
        };
        scored
            .into_iter()
            .take_while(|&(_, d)| d <= best + margin)
            .take(k.max(1))
            .collect()
    }
}

/// The map-based positioner (pre-flat-rebuild semantics): same
/// [`PositionerConfig`], same [`Fix`]/[`FixMethod`] outputs, no metrics or
/// tracing — just the positioning arithmetic the flat path must reproduce.
#[derive(Debug, Clone)]
pub struct ReferencePositioner {
    route: Route,
    index: ReferenceRouteIndex,
    config: PositionerConfig,
}

impl ReferencePositioner {
    /// Creates a reference positioner over a route and its map index.
    ///
    /// # Panics
    ///
    /// Panics if `config.order` is zero or exceeds the index's order.
    pub fn new(route: Route, index: ReferenceRouteIndex, config: PositionerConfig) -> Self {
        assert!(
            config.order >= 1 && config.order <= index.config().order,
            "positioner order must be in 1..=index order"
        );
        ReferencePositioner {
            route,
            index,
            config,
        }
    }

    /// The route being tracked.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The underlying map index.
    pub fn index(&self) -> &ReferenceRouteIndex {
        &self.index
    }

    /// Produces a fix from a ranked RSS list — the original `locate`,
    /// verbatim.
    pub fn locate(&self, ranked: &[(ApId, i32)], time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        if ranked.is_empty() {
            return self.dead_reckon(time_s, prior);
        }

        // 1. Candidate signatures: the observed one plus tie permutations.
        let signatures = self.tie_signatures(ranked);
        let tied = signatures.len() > 1;

        // 2. Candidate intervals: exact lookup at order ≤ 2, hierarchical
        //    prefix matching above.
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        let mut exact = true;
        if self.config.order <= 2 {
            for sig in &signatures {
                for seg in self.index.candidates(sig) {
                    intervals.push((seg.s0, seg.s1));
                }
            }
        } else {
            let mut scored: Vec<(&SubSegment, f64)> = Vec::new();
            for sig in &signatures {
                let prefix = sig.truncated(2);
                for seg in self.index.candidates_with_prefix(&prefix) {
                    scored.push((seg, seg.signature.rank_distance(sig)));
                }
            }
            if let Some(best) = scored.iter().map(|&(_, d)| d).min_by(|a, b| a.total_cmp(b)) {
                exact = best == 0.0;
                for (seg, d) in scored {
                    if d <= best + self.config.fallback_margin {
                        intervals.push((seg.s0, seg.s1));
                    }
                }
            }
        }
        let mut method = if tied {
            FixMethod::TieBoundary
        } else if exact {
            FixMethod::Exact
        } else {
            FixMethod::NearestSignature
        };

        // 3. Nearest-signature fallback.
        if intervals.is_empty() {
            let observed = signature_from_ranked(ranked, self.config.order);
            let near: Vec<TileSignature> = self
                .index
                .nearest_signatures(&observed, 6, self.config.fallback_margin)
                .into_iter()
                .filter(|&(_, d)| d <= self.config.max_rank_distance)
                .map(|(s, _)| s.clone())
                .collect();
            for sig in &near {
                for seg in self.index.candidates(sig) {
                    intervals.push((seg.s0, seg.s1));
                }
            }
            if !intervals.is_empty() {
                method = FixMethod::NearestSignature;
            }
        }
        if intervals.is_empty() {
            return self.dead_reckon(time_s, prior);
        }

        // 4. Merge overlapping/adjacent intervals.
        let merged = merge_intervals(intervals, self.index.sample_step_m());

        // 5. Mobility constraint.
        let interval = match prior {
            Some(pr) => {
                let dt = (time_s - pr.time_s).max(0.0);
                let reach = (
                    pr.s - self.config.backtrack_m,
                    pr.s + self.config.max_speed_mps * dt,
                );
                let slack = 2.0 * self.index.sample_step_m() + 5.0;
                let feasible: Vec<&(f64, f64)> = merged
                    .iter()
                    .filter(|&&(a, b)| b >= reach.0 - slack && a <= reach.1 + slack)
                    .collect();
                let closest = feasible.into_iter().min_by(|&&(a0, b0), &&(a1, b1)| {
                    let c0 = interval_distance(a0, b0, pr.s);
                    let c1 = interval_distance(a1, b1, pr.s);
                    c0.total_cmp(&c1)
                });
                match closest {
                    None => return self.dead_reckon(time_s, prior),
                    Some(&iv) => iv,
                }
            }
            None => {
                match merged
                    .iter()
                    .max_by(|&&(a0, b0), &&(a1, b1)| (b0 - a0).total_cmp(&(b1 - a1)))
                {
                    Some(&iv) => iv,
                    None => return self.dead_reckon(time_s, prior),
                }
            }
        };

        // 6. Point estimate: midpoint clamped into the reachable window.
        let mut s = 0.5 * (interval.0 + interval.1);
        if let Some(pr) = prior {
            let dt = (time_s - pr.time_s).max(0.0);
            let lo = (pr.s - self.config.backtrack_m).max(interval.0);
            let hi = (pr.s + self.config.max_speed_mps * dt).min(interval.1);
            if lo <= hi {
                s = s.clamp(lo, hi);
            }
        }
        let s = s.clamp(0.0, self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval,
            method,
            time_s,
        })
    }

    fn tie_signatures(&self, ranked: &[(ApId, i32)]) -> Vec<TileSignature> {
        let k = self.config.order;
        let margin = self.config.tie_margin_db;
        let base: Vec<(ApId, i32)> = ranked.to_vec();
        let mut out = vec![signature_from_ranked(&base, k)];
        let upper = (k + 1).min(base.len());
        let mut swaps = Vec::new();
        for i in 0..upper.saturating_sub(1) {
            if (base[i].1 - base[i + 1].1).abs() <= margin {
                swaps.push(i);
            }
        }
        for &i in swaps.iter().take(3) {
            let mut v = base.clone();
            v.swap(i, i + 1);
            let sig = signature_from_ranked(&v, k);
            if !out.contains(&sig) {
                out.push(sig);
            }
        }
        out
    }

    fn dead_reckon(&self, time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        let pr = prior?;
        let dt = (time_s - pr.time_s).max(0.0);
        let s = (pr.s + self.config.dead_reckon_speed_mps * dt).min(self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval: (pr.s, s),
            method: FixMethod::DeadReckoned,
            time_s,
        })
    }
}

/// Merges intervals closer than `gap` into maximal disjoint intervals.
fn merge_intervals(mut intervals: Vec<(f64, f64)>, gap: f64) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for (a, b) in intervals {
        match out.last_mut() {
            Some(last) if a <= last.1 + gap => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Distance from `s` to the interval `[a, b]` (0 when inside).
fn interval_distance(a: f64, b: f64, s: f64) -> f64 {
    if s < a {
        a - s
    } else if s > b {
        s - b
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, HomogeneousField};
    use wilocator_road::{NetworkBuilder, RouteId};

    fn street(len: f64, spacing: f64) -> (Route, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(len, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "t", vec![e], &b.build()).unwrap();
        let mut aps = Vec::new();
        let mut x = spacing / 2.0;
        let mut i = 0u32;
        while x < len {
            let y = if i.is_multiple_of(2) { 15.0 } else { -15.0 };
            aps.push(AccessPoint::new(ApId(i), Point::new(x, y)));
            i += 1;
            x += spacing;
        }
        (route, HomogeneousField::new(aps))
    }

    #[test]
    fn reference_locates_noiselessly() {
        let (route, field) = street(800.0, 80.0);
        let index = ReferenceRouteIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let pos = ReferencePositioner::new(route, index, PositionerConfig::default());
        let truth = 211.0;
        let ranked: Vec<(ApId, i32)> = field
            .detectable_at(pos.route().point_at(truth), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect();
        let fix = pos.locate(&ranked, 0.0, None).unwrap();
        assert!((fix.s - truth).abs() <= 45.0);
        assert_eq!(fix.method, FixMethod::Exact);
    }

    #[test]
    fn reference_dead_reckons_on_empty_scan() {
        let (route, field) = street(400.0, 80.0);
        let index = ReferenceRouteIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let pos = ReferencePositioner::new(route, index, PositionerConfig::default());
        assert!(pos.locate(&[], 0.0, None).is_none());
        let fix = pos
            .locate(
                &[],
                10.0,
                Some(Prior {
                    s: 50.0,
                    time_s: 0.0,
                }),
            )
            .unwrap();
        assert_eq!(fix.method, FixMethod::DeadReckoned);
        assert!(fix.s > 50.0);
    }
}

//! Route-constrained tile index: the SVD restricted to a bus route.
//!
//! The paper's key positioning insight is the *mobility constraint*: a bus
//! is always on its route, so only the intersection of each Signal Tile
//! with the route matters (the road sub-segments `e_{ij}` of Definition 5).
//! This index samples the route geometry at a fine step, labels each sample
//! with its `k`-order signature under the mean field, and merges contiguous
//! equal-signature runs into [`SubSegment`]s.
//!
//! Since PR 7 the index is a flat slab, not a family of hash maps: AP ids
//! are interned to dense `u16` codes ([`ApInterner`]) at build time and
//! the signature → sub-segment map, the prefix index and the per-site
//! buckets are all *ranges of one sorted [`SignatureTable`]* probed by
//! branchless binary search. The public API (borrowed [`TileSignature`]s
//! and [`SubSegment`]s) is unchanged; `crates/svd/src/reference.rs` keeps
//! the old map-based construction as the differential-testing oracle.

use wilocator_rf::SignalField;
use wilocator_road::Route;

use crate::diagram::SvdConfig;
use crate::interner::{ApInterner, InternerError};
use crate::signature::{rank_distance_codes, signature_from_ranked, TileSignature};
use crate::table::SignatureTable;

/// A maximal run of route arc length with a constant tile signature —
/// the sub-segment `e_{ij}` that the paper's Tile Mapping produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SubSegment {
    /// The signature carried by this run.
    pub signature: TileSignature,
    /// Start of the run, metres from the route start.
    pub s0: f64,
    /// End of the run, metres from the route start.
    pub s1: f64,
}

impl SubSegment {
    /// Length of the run, metres.
    pub fn length(&self) -> f64 {
        self.s1 - self.s0
    }

    /// Midpoint arc length — the position estimate the Tile Mapping yields
    /// when no other constraint applies.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.s0 + self.s1)
    }

    /// True when arc length `s` falls inside the run.
    pub fn contains(&self, s: f64) -> bool {
        s >= self.s0 && s <= self.s1
    }
}

/// The SVD of a route: signature → sub-segments.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
/// use wilocator_svd::{RouteTileIndex, SvdConfig};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(300.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let net = b.build();
/// let route = Route::new(RouteId(0), "demo", vec![e], &net)?;
/// let field = HomogeneousField::new(vec![
///     AccessPoint::new(ApId(0), Point::new(50.0, 20.0)),
///     AccessPoint::new(ApId(1), Point::new(250.0, -20.0)),
/// ]);
/// let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
/// assert!(index.subsegments().len() >= 2);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RouteTileIndex {
    subsegments: Vec<SubSegment>,
    interner: ApInterner,
    table: SignatureTable,
    sample_step_m: f64,
    config: SvdConfig,
    route_length: f64,
}

impl RouteTileIndex {
    /// Samples `route` every `sample_step_m` metres against `field` and
    /// merges equal-signature runs.
    ///
    /// Runs where *no* AP is detectable get the empty signature; they are
    /// kept (the tracker treats an empty scan as "no fix").
    ///
    /// # Panics
    ///
    /// Panics if `sample_step_m <= 0`, `config.order == 0`, or the field's
    /// AP population exceeds [`crate::MAX_INTERNED_APS`] distinct ids
    /// (use [`RouteTileIndex::try_build`] to handle oversaturation as an
    /// error instead).
    pub fn build<F: SignalField + ?Sized>(
        field: &F,
        route: &Route,
        config: SvdConfig,
        sample_step_m: f64,
    ) -> Self {
        let interner = ApInterner::from_aps(field.aps());
        Self::build_with_interner(field, route, config, sample_step_m, interner)
    }

    /// [`RouteTileIndex::build`] with oversaturated AP populations
    /// reported as a clean error instead of a panic: more than
    /// [`crate::MAX_INTERNED_APS`] distinct AP ids cannot be interned
    /// into dense `u16` codes, and truncating the population would
    /// silently corrupt signatures.
    ///
    /// # Panics
    ///
    /// Still panics on the caller bugs `sample_step_m <= 0` and
    /// `config.order == 0`.
    pub fn try_build<F: SignalField + ?Sized>(
        field: &F,
        route: &Route,
        config: SvdConfig,
        sample_step_m: f64,
    ) -> Result<Self, InternerError> {
        let interner = ApInterner::try_from_aps(field.aps())?;
        Ok(Self::build_with_interner(
            field,
            route,
            config,
            sample_step_m,
            interner,
        ))
    }

    fn build_with_interner<F: SignalField + ?Sized>(
        field: &F,
        route: &Route,
        config: SvdConfig,
        sample_step_m: f64,
        interner: ApInterner,
    ) -> Self {
        assert!(sample_step_m > 0.0, "sample step must be positive");
        assert!(config.order >= 1, "signature order must be at least 1");
        let samples = route.geometry().sample(sample_step_m);
        let mut subsegments: Vec<SubSegment> = Vec::new();
        for &(s, p) in &samples {
            let ranked = field.detectable_at(p, config.detection_threshold_dbm);
            let sig = signature_from_ranked(&ranked, config.order);
            match subsegments.last_mut() {
                Some(last) if last.signature == sig => last.s1 = s,
                _ => subsegments.push(SubSegment {
                    signature: sig,
                    s0: s,
                    s1: s,
                }),
            }
        }
        // Extend half a step on each side so runs tile the route without
        // gaps: a sample represents the interval around it.
        let half = sample_step_m / 2.0;
        let len = route.length();
        for seg in &mut subsegments {
            seg.s0 = (seg.s0 - half).max(0.0);
            seg.s1 = (seg.s1 + half).min(len);
        }
        let mut entries: Vec<(Vec<u16>, u32)> = Vec::with_capacity(subsegments.len());
        for (i, seg) in subsegments.iter().enumerate() {
            // Every signature AP comes from the field, so interning
            // cannot miss; an empty fallback keeps this panic-free.
            let codes = seg.signature.intern_with(&interner).unwrap_or_default();
            entries.push((codes, i as u32));
        }
        let table = SignatureTable::build(entries, &interner);
        RouteTileIndex {
            subsegments,
            interner,
            table,
            sample_step_m,
            config,
            route_length: len,
        }
    }

    /// All sub-segments, ordered by arc length.
    pub fn subsegments(&self) -> &[SubSegment] {
        &self.subsegments
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> &SvdConfig {
        &self.config
    }

    /// The sampling step, metres.
    pub fn sample_step_m(&self) -> f64 {
        self.sample_step_m
    }

    /// Length of the indexed route, metres.
    pub fn route_length(&self) -> f64 {
        self.route_length
    }

    /// The dense AP code table built over the field's population.
    pub(crate) fn interner(&self) -> &ApInterner {
        &self.interner
    }

    /// The sorted signature slab (the hot path probes it directly).
    pub(crate) fn table(&self) -> &SignatureTable {
        &self.table
    }

    /// Sub-segments carrying exactly `sig`.
    pub fn candidates(&self, sig: &TileSignature) -> Vec<&SubSegment> {
        let Some(codes) = sig.intern_with(&self.interner) else {
            // An AP unknown to the field cannot be part of any stored
            // signature — guaranteed miss, like the old map lookup.
            return Vec::new();
        };
        match self.table.find(&codes) {
            Some(i) => self
                .table
                .payload_at(i)
                .iter()
                .filter_map(|&seg| self.subsegments.get(seg as usize))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Sub-segments whose signature *starts with* `prefix` (the union of
    /// the finer tiles inside the coarser tile named by the prefix). Exact
    /// matches are included.
    pub fn candidates_with_prefix(&self, prefix: &TileSignature) -> Vec<&SubSegment> {
        let Some(codes) = prefix.intern_with(&self.interner) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for i in self.table.prefix_range(&codes) {
            for &seg in self.table.payload_at(i) {
                if let Some(seg) = self.subsegments.get(seg as usize) {
                    out.push(seg);
                }
            }
        }
        out
    }

    /// The known signature nearest to `sig` by rank distance, with the
    /// distance. Empty-signature runs are not eligible.
    ///
    /// For speed the search first visits signatures sharing any of the
    /// observed APs as *site* (the realistic perturbations — rank swaps,
    /// one AP missing — stay within those buckets); only if the observed
    /// APs appear as no site at all does it fall back to a full scan.
    pub fn nearest_signature(&self, sig: &TileSignature) -> Option<(&TileSignature, f64)> {
        self.nearest_signatures(sig, 1, 0.0).into_iter().next()
    }

    /// Up to `k` known signatures closest to `sig` by rank distance, all
    /// within `margin` of the best distance. Returning several near-ties
    /// lets the caller's mobility constraint pick the physically plausible
    /// one instead of trusting a noisy rank metric alone.
    pub fn nearest_signatures(
        &self,
        sig: &TileSignature,
        k: usize,
        margin: f64,
    ) -> Vec<(&TileSignature, f64)> {
        let codes = self.intern_observed(sig);
        let mut scored: Vec<(u32, f64)> = Vec::new();
        self.nearest_codes(&codes, k, margin, &mut scored);
        scored
            .into_iter()
            .filter_map(|(i, d)| self.table.view_at(i as usize).map(|v| (v, d)))
            .collect()
    }

    /// Interns an *observed* signature, assigning deterministic sentinel
    /// codes (first-occurrence order, starting at `interner.len()`) to APs
    /// the field does not know — they must compare unequal to every stored
    /// code so rank distances count them as misses, exactly like the old
    /// `ApId`-based comparison did.
    fn intern_observed(&self, sig: &TileSignature) -> Vec<u16> {
        let mut codes: Vec<u16> = Vec::with_capacity(sig.order());
        let mut unknown: Vec<wilocator_rf::ApId> = Vec::new();
        for &ap in sig.aps() {
            let code = match self.interner.code(ap) {
                Some(c) => c,
                None => {
                    let slot = unknown.iter().position(|&u| u == ap).unwrap_or_else(|| {
                        unknown.push(ap);
                        unknown.len() - 1
                    });
                    // The interner cap leaves headroom for any realistic
                    // scan; saturate on pathological inputs rather than
                    // wrapping into real codes.
                    let sentinel = self.interner.len() + slot;
                    sentinel.min(u16::MAX as usize) as u16
                }
            };
            codes.push(code);
        }
        codes
    }

    /// [`RouteTileIndex::nearest_signatures`] over interned codes, writing
    /// `(signature index, distance)` pairs into `out` (cleared first) —
    /// the allocation-free form the positioner's scratch path uses.
    pub(crate) fn nearest_codes(
        &self,
        codes: &[u16],
        k: usize,
        margin: f64,
        out: &mut Vec<(u32, f64)>,
    ) {
        out.clear();
        let known = self.interner.len();
        let mut visited_any = false;
        for &c in codes {
            if (c as usize) >= known {
                // Sentinel for an unknown AP: no site bucket, like a map
                // miss on the old `by_site` index.
                continue;
            }
            let range = self.table.site_range(c);
            if !range.is_empty() {
                visited_any = true;
            }
            for i in range {
                out.push((i as u32, rank_distance_codes(self.table.codes_at(i), codes)));
            }
        }
        if !visited_any {
            out.clear();
            for i in 0..self.table.len() {
                if !self.table.codes_at(i).is_empty() {
                    out.push((i as u32, rank_distance_codes(self.table.codes_at(i), codes)));
                }
            }
        }
        // Rank-distance ties break on signature order, never on map
        // iteration order (the PR 2 `nearest_signature` bug class). Table
        // index order *is* signature order, so the index tie-break below
        // reproduces the old `TileSignature::cmp` tie-break exactly; and
        // `total_cmp` keeps the sort panic-free on any float input.
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out.dedup_by_key(|e| e.0);
        let Some(&(_, best)) = out.first() else {
            return;
        };
        let within = out.partition_point(|&(_, d)| d <= best + margin);
        out.truncate(within.min(k.max(1)));
    }

    /// The sub-segment containing arc length `s` (clamped).
    pub fn subsegment_at(&self, s: f64) -> &SubSegment {
        let s = s.clamp(0.0, self.route_length);
        // Sub-segments are ordered and tile [0, length]; binary search.
        let mut lo = 0usize;
        let mut hi = self.subsegments.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.subsegments[mid].s1 < s {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        &self.subsegments[lo]
    }

    /// Number of distinct non-empty signatures on the route.
    pub fn signature_count(&self) -> usize {
        self.table.views().iter().filter(|s| !s.is_empty()).count()
    }

    /// Mean length of non-empty sub-segments — the resolution of rank-based
    /// positioning (Propositions 2–3: more APs or higher order shrink it).
    pub fn mean_subsegment_length(&self) -> f64 {
        let runs: Vec<&SubSegment> = self
            .subsegments
            .iter()
            .filter(|s| !s.signature.is_empty())
            .collect();
        if runs.is_empty() {
            return 0.0;
        }
        runs.iter().map(|s| s.length()).sum::<f64>() / runs.len() as f64
    }

    /// Fraction of the route length with at least one detectable AP.
    pub fn coverage_fraction(&self) -> f64 {
        if self.route_length <= 0.0 {
            return 0.0;
        }
        self.subsegments
            .iter()
            .filter(|s| !s.signature.is_empty())
            .map(|s| s.length())
            .sum::<f64>()
            / self.route_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
    use wilocator_road::{NetworkBuilder, RouteId};

    fn straight_route(len: f64) -> Route {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(len, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        Route::new(RouteId(0), "t", vec![e], &b.build()).unwrap()
    }

    fn field_on_street(spacing: f64, len: f64) -> HomogeneousField {
        let mut aps = Vec::new();
        let mut x = spacing / 2.0;
        let mut i = 0u32;
        while x < len {
            let y = if i.is_multiple_of(2) { 15.0 } else { -15.0 };
            aps.push(AccessPoint::new(ApId(i), Point::new(x, y)));
            i += 1;
            x += spacing;
        }
        HomogeneousField::new(aps)
    }

    #[test]
    fn subsegments_tile_the_route() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        assert!((idx.subsegments().first().unwrap().s0 - 0.0).abs() < 1e-9);
        assert!((idx.subsegments().last().unwrap().s1 - 600.0).abs() < 1e-9);
        for w in idx.subsegments().windows(2) {
            assert!(w[1].s0 <= w[0].s1 + 1e-9, "gap between runs");
            assert!(w[1].s0 >= w[0].s0);
        }
    }

    #[test]
    fn lookup_matches_position() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        for s in [5.0, 100.0, 299.5, 580.0] {
            let seg = idx.subsegment_at(s);
            assert!(seg.contains(s), "s = {s} not in [{}, {}]", seg.s0, seg.s1);
            // Looking up the signature must return a run containing s.
            let cands = idx.candidates(&seg.signature);
            assert!(cands.iter().any(|c| c.contains(s)));
        }
    }

    #[test]
    fn denser_aps_shrink_subsegments() {
        // Proposition 3: more APs ⇒ finer partition ⇒ higher accuracy.
        let route = straight_route(1_000.0);
        let sparse = field_on_street(200.0, 1_000.0);
        let dense = field_on_street(50.0, 1_000.0);
        let cfg = SvdConfig::default();
        let si = RouteTileIndex::build(&sparse, &route, cfg, 1.0);
        let di = RouteTileIndex::build(&dense, &route, cfg, 1.0);
        assert!(di.mean_subsegment_length() < si.mean_subsegment_length());
    }

    #[test]
    fn higher_order_refines_partition() {
        // Proposition 2: higher order ⇒ finer partition.
        let route = straight_route(1_000.0);
        let field = field_on_street(80.0, 1_000.0);
        let mk = |order| {
            RouteTileIndex::build(
                &field,
                &route,
                SvdConfig {
                    order,
                    ..SvdConfig::default()
                },
                1.0,
            )
        };
        let o1 = mk(1);
        let o3 = mk(3);
        assert!(o3.subsegments().len() > o1.subsegments().len());
        assert!(o3.mean_subsegment_length() < o1.mean_subsegment_length());
    }

    #[test]
    fn coverage_full_on_instrumented_street() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        assert!((idx.coverage_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_gap_without_aps() {
        let route = straight_route(2_000.0);
        // APs only on the first 500 m.
        let field = field_on_street(80.0, 500.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 2.0);
        let cov = idx.coverage_fraction();
        assert!(cov > 0.2 && cov < 0.6, "coverage {cov}");
    }

    #[test]
    fn nearest_signature_recovers_from_swap() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let seg = idx.subsegment_at(300.0);
        // Swap the two ranks of the observed signature; the nearest known
        // signature should still be at most a couple of swaps away.
        let aps = seg.signature.aps();
        if aps.len() == 2 {
            let swapped = TileSignature::new(vec![aps[1], aps[0]]);
            let (_found, d) = idx.nearest_signature(&swapped).unwrap();
            assert!(d <= 2.0, "distance {d}");
        }
    }

    #[test]
    fn signature_count_positive() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        assert!(idx.signature_count() >= 6);
    }

    #[test]
    fn candidates_for_unknown_ap_signature_miss_cleanly() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let alien = TileSignature::new(vec![ApId(40_000), ApId(40_001)]);
        assert!(idx.candidates(&alien).is_empty());
        assert!(idx.candidates_with_prefix(&alien).is_empty());
        // Nearest-signature still works: every comparison treats the
        // unknown APs as misses.
        assert!(idx.nearest_signature(&alien).is_some());
    }
}

//! Route-constrained tile index: the SVD restricted to a bus route.
//!
//! The paper's key positioning insight is the *mobility constraint*: a bus
//! is always on its route, so only the intersection of each Signal Tile
//! with the route matters (the road sub-segments `e_{ij}` of Definition 5).
//! This index samples the route geometry at a fine step, labels each sample
//! with its `k`-order signature under the mean field, and merges contiguous
//! equal-signature runs into [`SubSegment`]s. Positioning then reduces to a
//! hash lookup from the observed rank list to the sub-segments carrying it.

use std::collections::HashMap;

use wilocator_rf::SignalField;
use wilocator_road::Route;

use crate::diagram::SvdConfig;
use crate::signature::{signature_from_ranked, TileSignature};

/// A maximal run of route arc length with a constant tile signature —
/// the sub-segment `e_{ij}` that the paper's Tile Mapping produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SubSegment {
    /// The signature carried by this run.
    pub signature: TileSignature,
    /// Start of the run, metres from the route start.
    pub s0: f64,
    /// End of the run, metres from the route start.
    pub s1: f64,
}

impl SubSegment {
    /// Length of the run, metres.
    pub fn length(&self) -> f64 {
        self.s1 - self.s0
    }

    /// Midpoint arc length — the position estimate the Tile Mapping yields
    /// when no other constraint applies.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.s0 + self.s1)
    }

    /// True when arc length `s` falls inside the run.
    pub fn contains(&self, s: f64) -> bool {
        s >= self.s0 && s <= self.s1
    }
}

/// The SVD of a route: signature → sub-segments.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
/// use wilocator_svd::{RouteTileIndex, SvdConfig};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(300.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let net = b.build();
/// let route = Route::new(RouteId(0), "demo", vec![e], &net)?;
/// let field = HomogeneousField::new(vec![
///     AccessPoint::new(ApId(0), Point::new(50.0, 20.0)),
///     AccessPoint::new(ApId(1), Point::new(250.0, -20.0)),
/// ]);
/// let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
/// assert!(index.subsegments().len() >= 2);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RouteTileIndex {
    subsegments: Vec<SubSegment>,
    by_signature: HashMap<TileSignature, Vec<usize>>,
    /// Signatures bucketed by their site (first AP) — narrows the
    /// nearest-signature fallback from all signatures to a handful.
    by_site: HashMap<wilocator_rf::ApId, Vec<TileSignature>>,
    /// Sub-segment indices keyed by every proper prefix of their
    /// signature: the hierarchical (lower-order) lookup. A noisy tail rank
    /// falls back to the enclosing coarser tile instead of a rank-distance
    /// guess.
    by_prefix: HashMap<TileSignature, Vec<usize>>,
    sample_step_m: f64,
    config: SvdConfig,
    route_length: f64,
}

impl RouteTileIndex {
    /// Samples `route` every `sample_step_m` metres against `field` and
    /// merges equal-signature runs.
    ///
    /// Runs where *no* AP is detectable get the empty signature; they are
    /// kept (the tracker treats an empty scan as "no fix").
    ///
    /// # Panics
    ///
    /// Panics if `sample_step_m <= 0` or `config.order == 0`.
    pub fn build<F: SignalField + ?Sized>(
        field: &F,
        route: &Route,
        config: SvdConfig,
        sample_step_m: f64,
    ) -> Self {
        assert!(sample_step_m > 0.0, "sample step must be positive");
        assert!(config.order >= 1, "signature order must be at least 1");
        let samples = route.geometry().sample(sample_step_m);
        let mut subsegments: Vec<SubSegment> = Vec::new();
        for &(s, p) in &samples {
            let ranked = field.detectable_at(p, config.detection_threshold_dbm);
            let sig = signature_from_ranked(&ranked, config.order);
            match subsegments.last_mut() {
                Some(last) if last.signature == sig => last.s1 = s,
                _ => subsegments.push(SubSegment {
                    signature: sig,
                    s0: s,
                    s1: s,
                }),
            }
        }
        // Extend half a step on each side so runs tile the route without
        // gaps: a sample represents the interval around it.
        let half = sample_step_m / 2.0;
        let len = route.length();
        for seg in &mut subsegments {
            seg.s0 = (seg.s0 - half).max(0.0);
            seg.s1 = (seg.s1 + half).min(len);
        }
        let mut by_signature: HashMap<TileSignature, Vec<usize>> = HashMap::new();
        for (i, seg) in subsegments.iter().enumerate() {
            by_signature
                .entry(seg.signature.clone())
                .or_default()
                .push(i);
        }
        let mut by_site: HashMap<wilocator_rf::ApId, Vec<TileSignature>> = HashMap::new();
        for sig in by_signature.keys() {
            if let Some(site) = sig.site() {
                by_site.entry(site).or_default().push(sig.clone());
            }
        }
        // The buckets were filled in hash-key order; sort them so every
        // scan over a bucket (and any distance tie within one) resolves
        // identically across processes.
        for bucket in by_site.values_mut() {
            bucket.sort_unstable();
        }
        let mut by_prefix: HashMap<TileSignature, Vec<usize>> = HashMap::new();
        for (i, seg) in subsegments.iter().enumerate() {
            for k in 1..seg.signature.order() {
                by_prefix
                    .entry(seg.signature.truncated(k))
                    .or_default()
                    .push(i);
            }
        }
        RouteTileIndex {
            subsegments,
            by_signature,
            by_site,
            by_prefix,
            sample_step_m,
            config,
            route_length: len,
        }
    }

    /// All sub-segments, ordered by arc length.
    pub fn subsegments(&self) -> &[SubSegment] {
        &self.subsegments
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> &SvdConfig {
        &self.config
    }

    /// The sampling step, metres.
    pub fn sample_step_m(&self) -> f64 {
        self.sample_step_m
    }

    /// Length of the indexed route, metres.
    pub fn route_length(&self) -> f64 {
        self.route_length
    }

    /// Sub-segments carrying exactly `sig`.
    pub fn candidates(&self, sig: &TileSignature) -> Vec<&SubSegment> {
        self.by_signature
            .get(sig)
            .map(|idx| idx.iter().map(|&i| &self.subsegments[i]).collect())
            .unwrap_or_default()
    }

    /// Sub-segments whose signature *starts with* `prefix` (the union of
    /// the finer tiles inside the coarser tile named by the prefix). Exact
    /// matches are included.
    pub fn candidates_with_prefix(&self, prefix: &TileSignature) -> Vec<&SubSegment> {
        let mut out: Vec<&SubSegment> = self
            .by_prefix
            .get(prefix)
            .map(|idx| idx.iter().map(|&i| &self.subsegments[i]).collect())
            .unwrap_or_default();
        out.extend(self.candidates(prefix));
        out
    }

    /// The known signature nearest to `sig` by rank distance, with the
    /// distance. Empty-signature runs are not eligible.
    ///
    /// For speed the search first visits signatures sharing any of the
    /// observed APs as *site* (the realistic perturbations — rank swaps,
    /// one AP missing — stay within those buckets); only if the observed
    /// APs appear as no site at all does it fall back to a full scan.
    pub fn nearest_signature(&self, sig: &TileSignature) -> Option<(&TileSignature, f64)> {
        self.nearest_signatures(sig, 1, 0.0).into_iter().next()
    }

    /// Up to `k` known signatures closest to `sig` by rank distance, all
    /// within `margin` of the best distance. Returning several near-ties
    /// lets the caller's mobility constraint pick the physically plausible
    /// one instead of trusting a noisy rank metric alone.
    pub fn nearest_signatures(
        &self,
        sig: &TileSignature,
        k: usize,
        margin: f64,
    ) -> Vec<(&TileSignature, f64)> {
        let mut scored: Vec<(&TileSignature, f64)> = Vec::new();
        let mut visited_any = false;
        for ap in sig.aps() {
            if let Some(bucket) = self.by_site.get(ap) {
                visited_any = true;
                for cand in bucket {
                    let d = cand.rank_distance(sig);
                    scored.push((cand, d));
                }
            }
        }
        if !visited_any {
            scored = self
                .by_signature
                .keys()
                .filter(|c| !c.is_empty())
                .map(|c| (c, c.rank_distance(sig)))
                .collect();
        }
        // Rank-distance ties break on signature order, never on map
        // iteration order (the PR 2 `nearest_signature` bug class); and
        // `total_cmp` keeps the sort panic-free on any float input.
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        scored.dedup_by(|a, b| std::ptr::eq(a.0, b.0));
        let Some(&(_, best)) = scored.first() else {
            return Vec::new();
        };
        scored
            .into_iter()
            .take_while(|&(_, d)| d <= best + margin)
            .take(k.max(1))
            .collect()
    }

    /// The sub-segment containing arc length `s` (clamped).
    pub fn subsegment_at(&self, s: f64) -> &SubSegment {
        let s = s.clamp(0.0, self.route_length);
        // Sub-segments are ordered and tile [0, length]; binary search.
        let mut lo = 0usize;
        let mut hi = self.subsegments.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.subsegments[mid].s1 < s {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        &self.subsegments[lo]
    }

    /// Number of distinct non-empty signatures on the route.
    pub fn signature_count(&self) -> usize {
        self.by_signature.keys().filter(|k| !k.is_empty()).count()
    }

    /// Mean length of non-empty sub-segments — the resolution of rank-based
    /// positioning (Propositions 2–3: more APs or higher order shrink it).
    pub fn mean_subsegment_length(&self) -> f64 {
        let runs: Vec<&SubSegment> = self
            .subsegments
            .iter()
            .filter(|s| !s.signature.is_empty())
            .collect();
        if runs.is_empty() {
            return 0.0;
        }
        runs.iter().map(|s| s.length()).sum::<f64>() / runs.len() as f64
    }

    /// Fraction of the route length with at least one detectable AP.
    pub fn coverage_fraction(&self) -> f64 {
        if self.route_length <= 0.0 {
            return 0.0;
        }
        self.subsegments
            .iter()
            .filter(|s| !s.signature.is_empty())
            .map(|s| s.length())
            .sum::<f64>()
            / self.route_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
    use wilocator_road::{NetworkBuilder, RouteId};

    fn straight_route(len: f64) -> Route {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(len, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        Route::new(RouteId(0), "t", vec![e], &b.build()).unwrap()
    }

    fn field_on_street(spacing: f64, len: f64) -> HomogeneousField {
        let mut aps = Vec::new();
        let mut x = spacing / 2.0;
        let mut i = 0u32;
        while x < len {
            let y = if i.is_multiple_of(2) { 15.0 } else { -15.0 };
            aps.push(AccessPoint::new(ApId(i), Point::new(x, y)));
            i += 1;
            x += spacing;
        }
        HomogeneousField::new(aps)
    }

    #[test]
    fn subsegments_tile_the_route() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        assert!((idx.subsegments().first().unwrap().s0 - 0.0).abs() < 1e-9);
        assert!((idx.subsegments().last().unwrap().s1 - 600.0).abs() < 1e-9);
        for w in idx.subsegments().windows(2) {
            assert!(w[1].s0 <= w[0].s1 + 1e-9, "gap between runs");
            assert!(w[1].s0 >= w[0].s0);
        }
    }

    #[test]
    fn lookup_matches_position() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        for s in [5.0, 100.0, 299.5, 580.0] {
            let seg = idx.subsegment_at(s);
            assert!(seg.contains(s), "s = {s} not in [{}, {}]", seg.s0, seg.s1);
            // Looking up the signature must return a run containing s.
            let cands = idx.candidates(&seg.signature);
            assert!(cands.iter().any(|c| c.contains(s)));
        }
    }

    #[test]
    fn denser_aps_shrink_subsegments() {
        // Proposition 3: more APs ⇒ finer partition ⇒ higher accuracy.
        let route = straight_route(1_000.0);
        let sparse = field_on_street(200.0, 1_000.0);
        let dense = field_on_street(50.0, 1_000.0);
        let cfg = SvdConfig::default();
        let si = RouteTileIndex::build(&sparse, &route, cfg, 1.0);
        let di = RouteTileIndex::build(&dense, &route, cfg, 1.0);
        assert!(di.mean_subsegment_length() < si.mean_subsegment_length());
    }

    #[test]
    fn higher_order_refines_partition() {
        // Proposition 2: higher order ⇒ finer partition.
        let route = straight_route(1_000.0);
        let field = field_on_street(80.0, 1_000.0);
        let mk = |order| {
            RouteTileIndex::build(
                &field,
                &route,
                SvdConfig {
                    order,
                    ..SvdConfig::default()
                },
                1.0,
            )
        };
        let o1 = mk(1);
        let o3 = mk(3);
        assert!(o3.subsegments().len() > o1.subsegments().len());
        assert!(o3.mean_subsegment_length() < o1.mean_subsegment_length());
    }

    #[test]
    fn coverage_full_on_instrumented_street() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        assert!((idx.coverage_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_gap_without_aps() {
        let route = straight_route(2_000.0);
        // APs only on the first 500 m.
        let field = field_on_street(80.0, 500.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 2.0);
        let cov = idx.coverage_fraction();
        assert!(cov > 0.2 && cov < 0.6, "coverage {cov}");
    }

    #[test]
    fn nearest_signature_recovers_from_swap() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let seg = idx.subsegment_at(300.0);
        // Swap the two ranks of the observed signature; the nearest known
        // signature should still be at most a couple of swaps away.
        let aps = seg.signature.aps();
        if aps.len() == 2 {
            let swapped = TileSignature::new(vec![aps[1], aps[0]]);
            let (_found, d) = idx.nearest_signature(&swapped).unwrap();
            assert!(d <= 2.0, "distance {d}");
        }
    }

    #[test]
    fn signature_count_positive() {
        let route = straight_route(600.0);
        let field = field_on_street(80.0, 600.0);
        let idx = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        assert!(idx.signature_count() >= 6);
    }
}

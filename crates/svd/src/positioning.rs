//! SVD-based bus positioning (Section III-B of the paper).
//!
//! Given an observed RSS rank list, [`RoutePositioner`] finds the road
//! sub-segments whose tile signature matches (Definition 5's Tile Mapping,
//! restricted to the route by the mobility constraint), disambiguates using
//! the previous fix and the bus's maximum speed, and handles the paper's
//! corner cases:
//!
//! * **rank ties** — equal RSS from two APs puts the bus on the tile
//!   boundary; we match the union of tie-permuted signatures, which merges
//!   the sub-segments on both sides of the boundary so the estimate lands
//!   on it;
//! * **unknown signatures** (noise or AP churn) — fall back to the known
//!   signature with the smallest rank distance;
//! * **no matching sub-segment near the prior** — dead-reckon inside the
//!   mobility window.

use std::sync::Arc;

use wilocator_geo::Point;
use wilocator_rf::ApId;
use wilocator_road::Route;

use wilocator_obs::TraceCtx;

use crate::metrics::PositioningMetrics;
use crate::route_index::{RouteTileIndex, SubSegment};
use crate::signature::{signature_from_ranked, TileSignature};

/// How an estimate was produced (coarse confidence signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixMethod {
    /// The observed signature matched a sub-segment directly.
    Exact,
    /// The observed ranks contained ties; the estimate sits on the merged
    /// boundary region of the tied signatures.
    TieBoundary,
    /// No exact match; the nearest known signature (by rank distance) was
    /// used.
    NearestSignature,
    /// No usable match; position extrapolated inside the mobility window.
    DeadReckoned,
}

impl FixMethod {
    /// Stable lowercase label, used for trace-span fields and logs.
    pub fn label(self) -> &'static str {
        match self {
            FixMethod::Exact => "exact",
            FixMethod::TieBoundary => "tie_boundary",
            FixMethod::NearestSignature => "nearest_signature",
            FixMethod::DeadReckoned => "dead_reckoned",
        }
    }
}

/// A position fix on the route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Arc length along the route, metres.
    pub s: f64,
    /// Planar position.
    pub point: Point,
    /// The sub-segment (or merged interval) the fix came from.
    pub interval: (f64, f64),
    /// How the fix was produced.
    pub method: FixMethod,
    /// Time of the observation, seconds.
    pub time_s: f64,
}

/// The previous fix used as the mobility prior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prior {
    /// Arc length of the previous fix, metres.
    pub s: f64,
    /// Time of the previous fix, seconds.
    pub time_s: f64,
}

/// Configuration of the positioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionerConfig {
    /// Signature order used for lookups (must not exceed the index order).
    pub order: usize,
    /// Maximum plausible bus speed, m/s (mobility constraint window).
    pub max_speed_mps: f64,
    /// Reject nearest-signature fallbacks farther than this rank distance.
    pub max_rank_distance: f64,
    /// Near-tie margin for the fallback: all signatures within this rank
    /// distance of the best match contribute candidates, and the mobility
    /// prior arbitrates between them.
    pub fallback_margin: f64,
    /// Two readings within this many dB count as tied ranks.
    pub tie_margin_db: i32,
    /// A fix may land this many metres *behind* the prior (noise in the
    /// previous fix; buses never really reverse).
    pub backtrack_m: f64,
    /// Assumed pace while dead reckoning through scan gaps, m/s.
    pub dead_reckon_speed_mps: f64,
}

impl Default for PositionerConfig {
    fn default() -> Self {
        PositionerConfig {
            order: 2,
            max_speed_mps: 25.0,
            max_rank_distance: 8.0,
            fallback_margin: 4.0,
            tie_margin_db: 0,
            backtrack_m: 60.0,
            dead_reckon_speed_mps: 6.0,
        }
    }
}

/// Positions a bus on its route from RSS rank lists.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
/// use wilocator_svd::{PositionerConfig, RoutePositioner, RouteTileIndex, SvdConfig};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(300.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let net = b.build();
/// let route = Route::new(RouteId(0), "demo", vec![e], &net)?;
/// let field = HomogeneousField::new(vec![
///     AccessPoint::new(ApId(0), Point::new(50.0, 20.0)),
///     AccessPoint::new(ApId(1), Point::new(250.0, -20.0)),
/// ]);
/// let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
/// let positioner = RoutePositioner::new(route, index, PositionerConfig::default());
/// // A scan near the start hears AP0 ≫ AP1.
/// let fix = positioner.locate(&[(ApId(0), -50), (ApId(1), -80)], 0.0, None).unwrap();
/// assert!(fix.s < 150.0);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutePositioner {
    route: Route,
    index: RouteTileIndex,
    config: PositionerConfig,
    /// Shared by every clone (one tracker per bus), so the counters
    /// aggregate per route.
    metrics: Option<Arc<PositioningMetrics>>,
}

impl RoutePositioner {
    /// Creates a positioner over a route and its tile index.
    ///
    /// # Panics
    ///
    /// Panics if `config.order` is zero or exceeds the index's order.
    pub fn new(route: Route, index: RouteTileIndex, config: PositionerConfig) -> Self {
        assert!(
            config.order >= 1 && config.order <= index.config().order,
            "positioner order must be in 1..=index order"
        );
        RoutePositioner {
            route,
            index,
            config,
            metrics: None,
        }
    }

    /// Attaches a metrics ledger; every clone of this positioner (one per
    /// tracked bus) records into the same `Arc`.
    pub fn with_metrics(mut self, metrics: Arc<PositioningMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics ledger, if any.
    pub fn metrics(&self) -> Option<&Arc<PositioningMetrics>> {
        self.metrics.as_ref()
    }

    /// The route being tracked.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The underlying tile index.
    pub fn index(&self) -> &RouteTileIndex {
        &self.index
    }

    /// The positioner configuration.
    pub fn config(&self) -> &PositionerConfig {
        &self.config
    }

    /// Produces a fix from a ranked RSS list (strongest first) observed at
    /// `time_s`, optionally constrained by the previous fix.
    ///
    /// Returns `None` when the scan is empty and no prior exists.
    pub fn locate(&self, ranked: &[(ApId, i32)], time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        self.locate_traced(ranked, time_s, prior, None)
    }

    /// [`RoutePositioner::locate`] with an optional trace context: opens a
    /// `locate` child span annotated with the fix method and position.
    pub fn locate_traced(
        &self,
        ranked: &[(ApId, i32)],
        time_s: f64,
        prior: Option<Prior>,
        trace: Option<&TraceCtx<'_>>,
    ) -> Option<Fix> {
        let span = trace.map(|t| t.child_span("locate"));
        let fix = self.locate_inner(ranked, time_s, prior);
        if let Some(sp) = &span {
            match fix.as_ref() {
                Some(f) => {
                    sp.field("method", f.method.label());
                    sp.field("s", f.s);
                }
                None => sp.field("method", "none"),
            }
        }
        if let Some(m) = &self.metrics {
            m.locate_total.inc();
            if ranked.is_empty() {
                m.empty_scan_total.inc();
            }
            match fix.as_ref().map(|f| f.method) {
                Some(FixMethod::Exact) => m.exact_total.inc(),
                Some(FixMethod::TieBoundary) => m.tie_boundary_total.inc(),
                Some(FixMethod::NearestSignature) => m.nearest_signature_total.inc(),
                Some(FixMethod::DeadReckoned) => m.dead_reckoned_total.inc(),
                None => m.none_total.inc(),
            }
        }
        fix
    }

    fn locate_inner(
        &self,
        ranked: &[(ApId, i32)],
        time_s: f64,
        prior: Option<Prior>,
    ) -> Option<Fix> {
        if ranked.is_empty() {
            return self.dead_reckon(time_s, prior);
        }

        // 1. Candidate signatures: the observed one, plus permutations of
        //    tied ranks (equal RSS ⇒ the bus sits on a tile boundary).
        let signatures = self.tie_signatures(ranked);
        let tied = signatures.len() > 1;

        // 2. Collect candidate intervals. At order ≤ 2 this is an exact
        //    signature lookup. At higher orders matching is hierarchical:
        //    the top-2 prefix (the most reliable part of a noisy rank
        //    list — the paper's "2-order SVD is often enough") selects the
        //    enclosing coarse tile, and the *full* rank list then scores
        //    the finer runs inside it by rank distance. Exact matches come
        //    back at distance 0; a corrupted tail rank degrades gracefully
        //    to the order-2 cell instead of aliasing to a distant tile
        //    that happens to carry the corrupted permutation.
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        let mut exact = true;
        if self.config.order <= 2 {
            for sig in &signatures {
                for seg in self.index.candidates(sig) {
                    intervals.push((seg.s0, seg.s1));
                }
            }
        } else {
            let mut scored: Vec<(&SubSegment, f64)> = Vec::new();
            for sig in &signatures {
                let prefix = sig.truncated(2);
                for seg in self.index.candidates_with_prefix(&prefix) {
                    scored.push((seg, seg.signature.rank_distance(sig)));
                }
            }
            if let Some(best) = scored.iter().map(|&(_, d)| d).min_by(|a, b| a.total_cmp(b)) {
                exact = best == 0.0;
                for (seg, d) in scored {
                    if d <= best + self.config.fallback_margin {
                        intervals.push((seg.s0, seg.s1));
                    }
                }
            }
        }
        let mut method = if tied {
            FixMethod::TieBoundary
        } else if exact {
            FixMethod::Exact
        } else {
            FixMethod::NearestSignature
        };

        // 3. Fallback: the nearest known signatures by rank distance. All
        //    near-ties contribute candidates so the mobility constraint can
        //    arbitrate (a noisy rank metric alone picks wrong runs).
        if intervals.is_empty() {
            let observed = signature_from_ranked(ranked, self.config.order);
            let near: Vec<TileSignature> = self
                .index
                .nearest_signatures(&observed, 6, self.config.fallback_margin)
                .into_iter()
                .filter(|&(_, d)| d <= self.config.max_rank_distance)
                .map(|(s, _)| s.clone())
                .collect();
            for sig in &near {
                for seg in self.index.candidates(sig) {
                    intervals.push((seg.s0, seg.s1));
                }
            }
            if !intervals.is_empty() {
                method = FixMethod::NearestSignature;
            }
        }
        if intervals.is_empty() {
            return self.dead_reckon(time_s, prior);
        }

        // 4. Merge overlapping/adjacent intervals (tied signatures produce
        //    abutting runs around the tile boundary).
        let merged = merge_intervals(intervals, self.index.sample_step_m());

        // 5. Mobility constraint: prefer the interval consistent with the
        //    prior; a bus only moves forward along its route.
        let interval = match prior {
            Some(pr) => {
                let dt = (time_s - pr.time_s).max(0.0);
                let reach = (
                    pr.s - self.config.backtrack_m,
                    pr.s + self.config.max_speed_mps * dt,
                );
                let slack = 2.0 * self.index.sample_step_m() + 5.0;
                let feasible: Vec<&(f64, f64)> = merged
                    .iter()
                    .filter(|&&(a, b)| b >= reach.0 - slack && a <= reach.1 + slack)
                    .collect();
                let closest = feasible.into_iter().min_by(|&&(a0, b0), &&(a1, b1)| {
                    let c0 = interval_distance(a0, b0, pr.s);
                    let c1 = interval_distance(a1, b1, pr.s);
                    c0.total_cmp(&c1)
                });
                match closest {
                    None => {
                        // Scan contradicts the mobility window — trust the
                        // window (the paper trusts the route constraint over
                        // a single noisy scan).
                        if let Some(m) = &self.metrics {
                            m.mobility_override_total.inc();
                        }
                        return self.dead_reckon(time_s, prior);
                    }
                    Some(&iv) => iv,
                }
            }
            None => {
                // No prior: take the longest interval (highest prior mass).
                // `merged` cannot be empty here (intervals was non-empty and
                // merging only coalesces), but dead-reckoning beats a panic
                // if that invariant ever breaks.
                match merged
                    .iter()
                    .max_by(|&&(a0, b0), &&(a1, b1)| (b0 - a0).total_cmp(&(b1 - a1)))
                {
                    Some(&iv) => iv,
                    None => return self.dead_reckon(time_s, prior),
                }
            }
        };

        // 6. Point estimate: the interval midpoint (the Tile Mapping's
        //    centroid projection), clamped into the reachable window.
        let mut s = 0.5 * (interval.0 + interval.1);
        if let Some(pr) = prior {
            let dt = (time_s - pr.time_s).max(0.0);
            let lo = (pr.s - self.config.backtrack_m).max(interval.0);
            let hi = (pr.s + self.config.max_speed_mps * dt).min(interval.1);
            if lo <= hi {
                s = s.clamp(lo, hi);
            }
        }
        let s = s.clamp(0.0, self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval,
            method,
            time_s,
        })
    }

    /// The paper's easy case: equal ranks put the bus on the boundary. We
    /// enumerate signatures produced by swapping *adjacent tied* readings
    /// (bounded to avoid factorial blow-up).
    fn tie_signatures(&self, ranked: &[(ApId, i32)]) -> Vec<TileSignature> {
        let k = self.config.order;
        let margin = self.config.tie_margin_db;
        let base: Vec<(ApId, i32)> = ranked.to_vec();
        let mut out = vec![signature_from_ranked(&base, k)];
        // Collect swap positions among the first k+1 entries where RSS is
        // within the tie margin.
        let upper = (k + 1).min(base.len());
        let mut swaps = Vec::new();
        for i in 0..upper.saturating_sub(1) {
            if (base[i].1 - base[i + 1].1).abs() <= margin {
                swaps.push(i);
            }
        }
        // Apply each single swap (covers the common one-boundary case) and
        // the all-swaps variant; bounded, deterministic.
        for &i in swaps.iter().take(3) {
            let mut v = base.clone();
            v.swap(i, i + 1);
            let sig = signature_from_ranked(&v, k);
            if !out.contains(&sig) {
                out.push(sig);
            }
        }
        out
    }

    fn dead_reckon(&self, time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        let pr = prior?;
        // Without a measurement, assume the bus kept a typical urban pace
        // since the last fix.
        let dt = (time_s - pr.time_s).max(0.0);
        let s = (pr.s + self.config.dead_reckon_speed_mps * dt).min(self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval: (pr.s, s),
            method: FixMethod::DeadReckoned,
            time_s,
        })
    }

    /// Positioning error of a fix against ground truth, measured as road
    /// length (the paper's error metric).
    pub fn road_error_m(&self, fix: &Fix, truth_s: f64) -> f64 {
        (fix.s - truth_s).abs()
    }

    /// The sub-segment containing arc length `s` (exposes the index for
    /// diagnostics).
    pub fn subsegment_at(&self, s: f64) -> &SubSegment {
        self.index.subsegment_at(s)
    }
}

/// A stateful tracking filter around [`RoutePositioner`]: chains the
/// mobility prior between fixes and recovers from divergence by
/// *progressively widening* the search window instead of trusting either
/// the prior or a single noisy scan outright.
///
/// After `streak_threshold` consecutive fixes that did not come from an
/// exact signature match, the prior is slid backwards (both in position
/// and time) a little more each step, growing the feasible window in both
/// directions until the filter re-locks on an exact match.
#[derive(Debug, Clone)]
pub struct TrackingFilter {
    positioner: RoutePositioner,
    prior: Option<Prior>,
    unmatched_streak: usize,
    streak_threshold: usize,
}

impl TrackingFilter {
    /// Wraps a positioner with default divergence handling (threshold 3).
    pub fn new(positioner: RoutePositioner) -> Self {
        TrackingFilter {
            positioner,
            prior: None,
            unmatched_streak: 0,
            streak_threshold: 3,
        }
    }

    /// The wrapped positioner.
    pub fn positioner(&self) -> &RoutePositioner {
        &self.positioner
    }

    /// The current prior, if any.
    pub fn prior(&self) -> Option<Prior> {
        self.prior
    }

    /// Processes one ranked scan, updating the prior.
    ///
    /// Three regimes:
    ///
    /// * **Acquisition** (no prior yet): only a scan-anchored fix (exact or
    ///   tie-boundary match) initialises the track — a rank-distance guess
    ///   with no mobility constraint can land anywhere on the route.
    /// * **Tracking**: normal mobility-constrained positioning; a
    ///   dead-reckoned fix (scan rejected) increments the divergence
    ///   counter, any scan-anchored fix resets it.
    /// * **Re-acquisition** (counter at threshold): the search window is
    ///   progressively widened around the last estimate until an *exact*
    ///   match re-locks the track. Dead reckoning itself always proceeds
    ///   from the unwidened prior at the configured pace, so a diverged
    ///   track drifts boundedly instead of compounding.
    pub fn step(&mut self, ranked: &[(ApId, i32)], time_s: f64) -> Option<Fix> {
        self.step_traced(ranked, time_s, None)
    }

    /// [`TrackingFilter::step`] with an optional trace context: every
    /// positioning attempt (acquisition, tracking, widened re-lock) opens
    /// a `locate` child span.
    pub fn step_traced(
        &mut self,
        ranked: &[(ApId, i32)],
        time_s: f64,
        trace: Option<&TraceCtx<'_>>,
    ) -> Option<Fix> {
        let Some(pr) = self.prior else {
            // Acquisition.
            let fix = self.positioner.locate_traced(ranked, time_s, None, trace)?;
            return match fix.method {
                FixMethod::Exact | FixMethod::TieBoundary => {
                    self.unmatched_streak = 0;
                    self.prior = Some(Prior {
                        s: fix.s,
                        time_s: fix.time_s,
                    });
                    Some(fix)
                }
                _ => None,
            };
        };
        // Tracking with the raw prior.
        let fix = self
            .positioner
            .locate_traced(ranked, time_s, Some(pr), trace)?;
        match fix.method {
            FixMethod::DeadReckoned => {
                self.unmatched_streak += 1;
                // Re-acquisition: widen the window and demand a
                // scan-anchored re-lock.
                if self.unmatched_streak >= self.streak_threshold {
                    let w = (self.unmatched_streak - self.streak_threshold + 1) as f64;
                    let widened = Prior {
                        s: (pr.s - 150.0 * w).max(0.0),
                        time_s: pr.time_s - 30.0 * w,
                    };
                    if let Some(m) = &self.positioner.metrics {
                        m.relock_attempt_total.inc();
                    }
                    if let Some(refix) =
                        self.positioner
                            .locate_traced(ranked, time_s, Some(widened), trace)
                    {
                        if matches!(refix.method, FixMethod::Exact | FixMethod::TieBoundary) {
                            if let Some(m) = &self.positioner.metrics {
                                m.relock_success_total.inc();
                            }
                            self.unmatched_streak = 0;
                            self.prior = Some(Prior {
                                s: refix.s,
                                time_s: refix.time_s,
                            });
                            return Some(refix);
                        }
                    }
                }
                self.prior = Some(Prior {
                    s: fix.s,
                    time_s: fix.time_s,
                });
                Some(fix)
            }
            _ => {
                self.unmatched_streak = 0;
                self.prior = Some(Prior {
                    s: fix.s,
                    time_s: fix.time_s,
                });
                Some(fix)
            }
        }
    }

    /// Resets the filter for a new trip.
    pub fn reset(&mut self) {
        self.prior = None;
        self.unmatched_streak = 0;
    }

    /// Seeds the prior from an external position source (e.g. a
    /// map-matched GPS fix during a WiFi coverage gap), so the next scan
    /// is searched around it.
    pub fn seed(&mut self, prior: Prior) {
        self.prior = Some(prior);
        self.unmatched_streak = 0;
    }
}

/// Merges intervals closer than `gap` into maximal disjoint intervals.
fn merge_intervals(mut intervals: Vec<(f64, f64)>, gap: f64) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for (a, b) in intervals {
        match out.last_mut() {
            Some(last) if a <= last.1 + gap => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Distance from `s` to the interval `[a, b]` (0 when inside).
fn interval_distance(a: f64, b: f64, s: f64) -> f64 {
    if s < a {
        a - s
    } else if s > b {
        s - b
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::SvdConfig;
    use wilocator_rf::{AccessPoint, HomogeneousField, SignalField};
    use wilocator_road::{NetworkBuilder, RouteId};

    fn street(len: f64, spacing: f64) -> (Route, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(len, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "t", vec![e], &b.build()).unwrap();
        let mut aps = Vec::new();
        let mut x = spacing / 2.0;
        let mut i = 0u32;
        while x < len {
            let y = if i.is_multiple_of(2) { 15.0 } else { -15.0 };
            aps.push(AccessPoint::new(ApId(i), Point::new(x, y)));
            i += 1;
            x += spacing;
        }
        (route, HomogeneousField::new(aps))
    }

    fn positioner(len: f64, spacing: f64) -> (RoutePositioner, HomogeneousField) {
        let (route, field) = street(len, spacing);
        let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        (
            RoutePositioner::new(route, index, PositionerConfig::default()),
            field,
        )
    }

    /// Noiseless ranked list at a point.
    fn ranked_at(field: &HomogeneousField, p: Point) -> Vec<(ApId, i32)> {
        field
            .detectable_at(p, -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect()
    }

    #[test]
    fn noiseless_fix_is_accurate() {
        let (pos, field) = positioner(800.0, 80.0);
        for truth in [40.0, 211.0, 555.0, 790.0] {
            let ranked = ranked_at(&field, pos.route().point_at(truth));
            let fix = pos.locate(&ranked, 0.0, None).expect("fix");
            // Sub-segments with 80 m AP spacing are ≲ 40 m; the midpoint
            // estimate is therefore within ~half a run of the truth, a bit
            // more at the route ends where runs are unterminated.
            assert!(
                pos.road_error_m(&fix, truth) <= 45.0,
                "truth {truth}, fix {} ({:?})",
                fix.s,
                fix.method
            );
        }
    }

    #[test]
    fn prior_disambiguates_between_repeated_signatures() {
        let (pos, field) = positioner(800.0, 80.0);
        let truth = 400.0;
        let ranked = ranked_at(&field, pos.route().point_at(truth));
        let prior = Prior {
            s: 380.0,
            time_s: 0.0,
        };
        let fix = pos.locate(&ranked, 10.0, Some(prior)).unwrap();
        assert!((fix.s - truth).abs() <= 25.0);
        // Fix must lie in the forward mobility window.
        assert!(fix.s >= prior.s - 1e-9);
        assert!(fix.s <= prior.s + 25.0 * 10.0 + 1e-9);
    }

    #[test]
    fn empty_scan_dead_reckons_from_prior() {
        let (pos, _field) = positioner(800.0, 80.0);
        let prior = Prior {
            s: 100.0,
            time_s: 0.0,
        };
        let fix = pos.locate(&[], 10.0, Some(prior)).unwrap();
        assert_eq!(fix.method, FixMethod::DeadReckoned);
        assert!(fix.s > 100.0 && fix.s < 100.0 + 250.0);
    }

    #[test]
    fn empty_scan_without_prior_is_none() {
        let (pos, _field) = positioner(800.0, 80.0);
        assert!(pos.locate(&[], 0.0, None).is_none());
    }

    #[test]
    fn tie_produces_boundary_estimate() {
        let (pos, _field) = positioner(800.0, 80.0);
        // Find two consecutive sub-segments A, B whose order-2 signatures
        // share the site but differ in the second rank: the boundary
        // between them is where ranks 2 and 3 tie. Constructing a scan
        // with that exact tie must place the bus on the shared boundary.
        let subs = pos.index().subsegments().to_vec();
        let mut tested = false;
        for w in subs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let (sa, sb) = (a.signature.aps(), b.signature.aps());
            if sa.len() == 2 && sb.len() == 2 && sa[0] == sb[0] && sa[1] != sb[1] {
                let boundary = a.s1;
                // Rank list: shared site strongest, then the two tied
                // second-place APs.
                let ranked = vec![(sa[0], -50), (sa[1], -60), (sb[1], -60)];
                let fix = pos.locate(&ranked, 0.0, None).unwrap();
                assert_eq!(fix.method, FixMethod::TieBoundary);
                assert!(
                    (fix.s - boundary).abs() <= (a.length() + b.length()) / 2.0 + 5.0,
                    "boundary {boundary}, fix {} ({:?})",
                    fix.s,
                    fix.method
                );
                tested = true;
                break;
            }
        }
        assert!(tested, "no same-site boundary found on the test street");
    }

    #[test]
    fn unknown_signature_falls_back_to_nearest() {
        let (pos, field) = positioner(800.0, 80.0);
        let truth = 300.0;
        let mut ranked = ranked_at(&field, pos.route().point_at(truth));
        // Corrupt the list: drop the strongest AP (as if it just died).
        ranked.remove(0);
        let fix = pos.locate(&ranked, 0.0, None).expect("fallback fix");
        assert!(
            pos.road_error_m(&fix, truth) <= 120.0,
            "err {}",
            pos.road_error_m(&fix, truth)
        );
    }

    #[test]
    fn contradictory_scan_is_overridden_by_mobility() {
        let (pos, field) = positioner(800.0, 80.0);
        // Prior at s = 100; scan claims the bus is at s = 700 one second
        // later (impossible at 25 m/s).
        let ranked = ranked_at(&field, pos.route().point_at(700.0));
        let prior = Prior {
            s: 100.0,
            time_s: 0.0,
        };
        let fix = pos.locate(&ranked, 1.0, Some(prior)).unwrap();
        assert_eq!(fix.method, FixMethod::DeadReckoned);
        assert!(fix.s < 150.0);
    }

    #[test]
    fn merge_intervals_merges_adjacent() {
        let merged = merge_intervals(vec![(0.0, 10.0), (10.5, 20.0), (40.0, 50.0)], 1.0);
        assert_eq!(merged, vec![(0.0, 20.0), (40.0, 50.0)]);
    }

    #[test]
    fn merge_intervals_keeps_disjoint() {
        let merged = merge_intervals(vec![(0.0, 1.0), (5.0, 6.0)], 0.5);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn interval_distance_cases() {
        assert_eq!(interval_distance(2.0, 4.0, 3.0), 0.0);
        assert_eq!(interval_distance(2.0, 4.0, 1.0), 1.0);
        assert_eq!(interval_distance(2.0, 4.0, 6.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn order_exceeding_index_rejected() {
        let (route, field) = street(200.0, 80.0);
        let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let _ = RoutePositioner::new(
            route,
            index,
            PositionerConfig {
                order: 5,
                ..PositionerConfig::default()
            },
        );
    }

    #[test]
    fn fix_error_metric_is_road_distance() {
        let (pos, field) = positioner(400.0, 80.0);
        let ranked = ranked_at(&field, pos.route().point_at(100.0));
        let fix = pos.locate(&ranked, 0.0, None).unwrap();
        assert_eq!(pos.road_error_m(&fix, fix.s), 0.0);
        assert_eq!(pos.road_error_m(&fix, fix.s + 7.0), 7.0);
    }
}

//! SVD-based bus positioning (Section III-B of the paper).
//!
//! Given an observed RSS rank list, [`RoutePositioner`] finds the road
//! sub-segments whose tile signature matches (Definition 5's Tile Mapping,
//! restricted to the route by the mobility constraint), disambiguates using
//! the previous fix and the bus's maximum speed, and handles the paper's
//! corner cases:
//!
//! * **rank ties** — equal RSS from two APs puts the bus on the tile
//!   boundary; we match the union of tie-permuted signatures, which merges
//!   the sub-segments on both sides of the boundary so the estimate lands
//!   on it;
//! * **unknown signatures** (noise or AP churn) — fall back to the known
//!   signature with the smallest rank distance;
//! * **no matching sub-segment near the prior** — dead-reckon inside the
//!   mobility window.
//!
//! Since PR 7 the fix arithmetic runs on the flat kernels: observed AP ids
//! are interned to dense `u16` codes into fixed stack buffers (unknown APs
//! get per-call sentinel codes above the interner range), tie permutations
//! are enumerated as small code arrays, and every table probe is a binary
//! search on the sorted [`crate::SignatureTable`]. The per-call heap state
//! lives in a caller-owned [`LocateScratch`] so a tracking loop performs
//! no allocation at all in steady state. The semantics are pinned to the
//! map-based oracle in [`crate::reference`] by the `kernel_differential`
//! test battery: every fix must be byte-identical.

use std::sync::Arc;

use wilocator_geo::Point;
use wilocator_rf::ApId;
use wilocator_road::Route;

use wilocator_obs::TraceCtx;

use crate::metrics::PositioningMetrics;
use crate::route_index::{RouteTileIndex, SubSegment};
use crate::signature::rank_distance_codes;

/// Upper bound on the lookup order the flat path supports; the interning
/// buffers are `MAX_ORDER + 1` entries (order plus the tie-probe rank).
/// The paper runs order 2 ("a second-order SVD is enough"), so 8 is
/// generous headroom, and it keeps the per-call stack state tiny.
const MAX_ORDER: usize = 8;

/// Maximum number of tie-permuted alternative signatures considered per
/// scan (matches the reference path's bounded swap enumeration).
const MAX_TIE_SIGS: usize = 3;

/// How an estimate was produced (coarse confidence signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixMethod {
    /// The observed signature matched a sub-segment directly.
    Exact,
    /// The observed ranks contained ties; the estimate sits on the merged
    /// boundary region of the tied signatures.
    TieBoundary,
    /// No exact match; the nearest known signature (by rank distance) was
    /// used.
    NearestSignature,
    /// No usable match; position extrapolated inside the mobility window.
    DeadReckoned,
}

impl FixMethod {
    /// Stable lowercase label, used for trace-span fields and logs.
    pub fn label(self) -> &'static str {
        match self {
            FixMethod::Exact => "exact",
            FixMethod::TieBoundary => "tie_boundary",
            FixMethod::NearestSignature => "nearest_signature",
            FixMethod::DeadReckoned => "dead_reckoned",
        }
    }
}

/// A position fix on the route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Arc length along the route, metres.
    pub s: f64,
    /// Planar position.
    pub point: Point,
    /// The sub-segment (or merged interval) the fix came from.
    pub interval: (f64, f64),
    /// How the fix was produced.
    pub method: FixMethod,
    /// Time of the observation, seconds.
    pub time_s: f64,
}

/// The previous fix used as the mobility prior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prior {
    /// Arc length of the previous fix, metres.
    pub s: f64,
    /// Time of the previous fix, seconds.
    pub time_s: f64,
}

/// Configuration of the positioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionerConfig {
    /// Signature order used for lookups (must not exceed the index order,
    /// nor the flat path's buffer bound of 8).
    pub order: usize,
    /// Maximum plausible bus speed, m/s (mobility constraint window).
    pub max_speed_mps: f64,
    /// Reject nearest-signature fallbacks farther than this rank distance.
    pub max_rank_distance: f64,
    /// Near-tie margin for the fallback: all signatures within this rank
    /// distance of the best match contribute candidates, and the mobility
    /// prior arbitrates between them.
    pub fallback_margin: f64,
    /// Two readings within this many dB count as tied ranks.
    pub tie_margin_db: i32,
    /// A fix may land this many metres *behind* the prior (noise in the
    /// previous fix; buses never really reverse).
    pub backtrack_m: f64,
    /// Assumed pace while dead reckoning through scan gaps, m/s.
    pub dead_reckon_speed_mps: f64,
}

impl Default for PositionerConfig {
    fn default() -> Self {
        PositionerConfig {
            order: 2,
            max_speed_mps: 25.0,
            max_rank_distance: 8.0,
            fallback_margin: 4.0,
            tie_margin_db: 0,
            backtrack_m: 60.0,
            dead_reckon_speed_mps: 6.0,
        }
    }
}

/// Reusable per-call heap state for [`RoutePositioner::locate_with`].
///
/// A locate call needs a handful of small growable buffers (candidate
/// intervals, their merged form, fallback scores). Owning them here and
/// passing them back in lets a steady-state tracking loop run with zero
/// heap allocation: the buffers grow to the high-water mark of the first
/// few scans and are reused afterwards. Contents are meaningless between
/// calls; every call clears before use.
#[derive(Debug, Clone, Default)]
pub struct LocateScratch {
    /// Candidate `(s0, s1)` intervals gathered from signature matches.
    intervals: Vec<(f64, f64)>,
    /// `intervals` merged into maximal disjoint intervals.
    merged: Vec<(f64, f64)>,
    /// Nearest-signature fallback results: `(table index, rank distance)`.
    near: Vec<(u32, f64)>,
    /// High-order prefix matching scores: `(sub-segment index, distance)`.
    scored: Vec<(u32, f64)>,
}

impl LocateScratch {
    /// Creates empty scratch state (no allocation until first use).
    pub fn new() -> Self {
        LocateScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch backing the allocation-free convenience entry
    /// points ([`RoutePositioner::locate`] / `locate_traced`); callers
    /// that want explicit control use [`RoutePositioner::locate_with`].
    static LOCATE_SCRATCH: std::cell::RefCell<LocateScratch> =
        std::cell::RefCell::new(LocateScratch::new());
}

/// Positions a bus on its route from RSS rank lists.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
/// use wilocator_svd::{PositionerConfig, RoutePositioner, RouteTileIndex, SvdConfig};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(300.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let net = b.build();
/// let route = Route::new(RouteId(0), "demo", vec![e], &net)?;
/// let field = HomogeneousField::new(vec![
///     AccessPoint::new(ApId(0), Point::new(50.0, 20.0)),
///     AccessPoint::new(ApId(1), Point::new(250.0, -20.0)),
/// ]);
/// let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
/// let positioner = RoutePositioner::new(route, index, PositionerConfig::default());
/// // A scan near the start hears AP0 ≫ AP1.
/// let fix = positioner.locate(&[(ApId(0), -50), (ApId(1), -80)], 0.0, None).unwrap();
/// assert!(fix.s < 150.0);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutePositioner {
    route: Route,
    index: RouteTileIndex,
    config: PositionerConfig,
    /// Shared by every clone (one tracker per bus), so the counters
    /// aggregate per route.
    metrics: Option<Arc<PositioningMetrics>>,
}

impl RoutePositioner {
    /// Creates a positioner over a route and its tile index.
    ///
    /// # Panics
    ///
    /// Panics if `config.order` is zero, exceeds the index's order, or
    /// exceeds the flat path's buffer bound of 8.
    pub fn new(route: Route, index: RouteTileIndex, config: PositionerConfig) -> Self {
        assert!(
            config.order >= 1 && config.order <= index.config().order,
            "positioner order must be in 1..=index order"
        );
        assert!(
            config.order <= MAX_ORDER,
            "positioner order exceeds the flat-kernel bound of 8"
        );
        RoutePositioner {
            route,
            index,
            config,
            metrics: None,
        }
    }

    /// Attaches a metrics ledger; every clone of this positioner (one per
    /// tracked bus) records into the same `Arc`.
    pub fn with_metrics(mut self, metrics: Arc<PositioningMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics ledger, if any.
    pub fn metrics(&self) -> Option<&Arc<PositioningMetrics>> {
        self.metrics.as_ref()
    }

    /// The route being tracked.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The underlying tile index.
    pub fn index(&self) -> &RouteTileIndex {
        &self.index
    }

    /// The positioner configuration.
    pub fn config(&self) -> &PositionerConfig {
        &self.config
    }

    /// Produces a fix from a ranked RSS list (strongest first) observed at
    /// `time_s`, optionally constrained by the previous fix.
    ///
    /// Returns `None` when the scan is empty and no prior exists.
    // lint: hot_path(deny: acquires_lock, blocks_or_syscalls, reads_clock, unbounded_iteration)
    pub fn locate(&self, ranked: &[(ApId, i32)], time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        // The dominant serving case resolves before the thread-local
        // scratch is even touched.
        if let Some(fix) = self.fast_fix(ranked, time_s, prior) {
            self.note_fast_fix();
            return Some(fix);
        }
        LOCATE_SCRATCH.with(|s| self.locate_with(&mut s.borrow_mut(), ranked, time_s, prior, None))
    }

    /// [`RoutePositioner::locate`] with an optional trace context: opens a
    /// `locate` child span annotated with the fix method and position.
    pub fn locate_traced(
        &self,
        ranked: &[(ApId, i32)],
        time_s: f64,
        prior: Option<Prior>,
        trace: Option<&TraceCtx<'_>>,
    ) -> Option<Fix> {
        if trace.is_none() {
            return self.locate(ranked, time_s, prior);
        }
        LOCATE_SCRATCH.with(|s| self.locate_with(&mut s.borrow_mut(), ranked, time_s, prior, trace))
    }

    /// The allocation-free form of [`RoutePositioner::locate_traced`]:
    /// per-call heap buffers live in the caller-owned `scratch`, so a
    /// tracking loop reusing one scratch performs no allocation in steady
    /// state. Tracing and metrics behave exactly like `locate_traced`.
    pub fn locate_with(
        &self,
        scratch: &mut LocateScratch,
        ranked: &[(ApId, i32)],
        time_s: f64,
        prior: Option<Prior>,
        trace: Option<&TraceCtx<'_>>,
    ) -> Option<Fix> {
        let span = trace.map(|t| t.child_span("locate"));
        let fix = self.locate_inner(scratch, ranked, time_s, prior);
        if let Some(sp) = &span {
            match fix.as_ref() {
                Some(f) => {
                    sp.field("method", f.method.label());
                    sp.field("s", f.s);
                }
                None => sp.field("method", "none"),
            }
        }
        if let Some(m) = &self.metrics {
            m.locate_total.inc();
            if ranked.is_empty() {
                m.empty_scan_total.inc();
            }
            match fix.as_ref().map(|f| f.method) {
                Some(FixMethod::Exact) => m.exact_total.inc(),
                Some(FixMethod::TieBoundary) => m.tie_boundary_total.inc(),
                Some(FixMethod::NearestSignature) => m.nearest_signature_total.inc(),
                Some(FixMethod::DeadReckoned) => m.dead_reckoned_total.inc(),
                None => m.none_total.inc(),
            }
        }
        fix
    }

    /// The branch-light fast path for the dominant serving shape: order-2
    /// lookup, no rank ties, known APs, one exact signature hit covering a
    /// single route run, and a prior (if any) whose mobility window accepts
    /// that run. Returns `None` for anything else — the general path then
    /// recomputes from first principles, so *punting is always safe*; only
    /// an accepted fix must be exact, which it is by construction: every
    /// expression below mirrors the general path's, in the same order, on
    /// the same operands (enforced by the `kernel_differential` battery).
    // lint: hot_path(deny: allocates, acquires_lock, blocks_or_syscalls, reads_clock, unbounded_iteration)
    #[inline]
    fn fast_fix(&self, ranked: &[(ApId, i32)], time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        if self.config.order != 2 || ranked.len() < 2 {
            return None;
        }
        // Any tie-margin pair routes through the permutation machinery.
        let upper = 3.min(ranked.len());
        for i in 0..upper - 1 {
            let a = ranked.get(i)?.1;
            let b = ranked.get(i + 1)?.1;
            if (a - b).abs() <= self.config.tie_margin_db {
                return None;
            }
        }
        let interner = self.index.interner();
        let &(ap0, _) = ranked.first()?;
        let &(ap1, _) = ranked.get(1)?;
        // Unknown APs in the head would need sentinel codes; leave those
        // scans (and plain lookup misses) to the fallback machinery.
        let (c0, c1) = match (interner.code(ap0), interner.code(ap1)) {
            (Some(c0), Some(c1)) => (c0, c1),
            _ => return None,
        };
        let table = self.index.table();
        let idx = table.find2(c0, c1)?;
        let &[seg] = table.payload_at(idx) else {
            return None;
        };
        let sub = self.index.subsegments().get(seg as usize)?;
        let interval = (sub.s0, sub.s1);
        if let Some(pr) = prior {
            let dt = (time_s - pr.time_s).max(0.0);
            let reach = (
                pr.s - self.config.backtrack_m,
                pr.s + self.config.max_speed_mps * dt,
            );
            let slack = 2.0 * self.index.sample_step_m() + 5.0;
            if !(interval.1 >= reach.0 - slack && interval.0 <= reach.1 + slack) {
                // Mobility override: the general path dead-reckons (and
                // counts the override in the metrics).
                return None;
            }
        }
        let mut s = 0.5 * (interval.0 + interval.1);
        if let Some(pr) = prior {
            let dt = (time_s - pr.time_s).max(0.0);
            let lo = (pr.s - self.config.backtrack_m).max(interval.0);
            let hi = (pr.s + self.config.max_speed_mps * dt).min(interval.1);
            if lo <= hi {
                s = s.clamp(lo, hi);
            }
        }
        let s = s.clamp(0.0, self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval,
            method: FixMethod::Exact,
            time_s,
        })
    }

    /// Metrics bookkeeping for a fix produced by [`Self::fast_fix`] outside
    /// [`Self::locate_with`] (which does its own accounting).
    fn note_fast_fix(&self) {
        if let Some(m) = &self.metrics {
            m.locate_total.inc();
            m.exact_total.inc();
        }
    }

    fn locate_inner(
        &self,
        scratch: &mut LocateScratch,
        ranked: &[(ApId, i32)],
        time_s: f64,
        prior: Option<Prior>,
    ) -> Option<Fix> {
        if ranked.is_empty() {
            return self.dead_reckon(time_s, prior);
        }
        if let Some(fix) = self.fast_fix(ranked, time_s, prior) {
            return Some(fix);
        }
        let k = self.config.order;
        let interner = self.index.interner();
        let table = self.index.table();
        let subsegments = self.index.subsegments();

        // 1. Intern the scan head into a stack buffer. Only the first
        //    `order + 1` ranks matter (the +1 is the tie probe against the
        //    rank just below the signature cut). APs the server never
        //    rasterised get per-call sentinel codes just above the interner
        //    range, in first-occurrence order: they compare unequal to
        //    every stored code (a guaranteed lookup miss, exactly like an
        //    unknown `ApId` missing a hash map) while still letting the
        //    rank-distance fallback count them as misses.
        let upper = (k + 1).min(ranked.len());
        let mut head = [(0u16, 0i32); MAX_ORDER + 1];
        let mut unknown = [(ApId(0), 0u16); MAX_ORDER + 1];
        let mut n_unknown = 0usize;
        let sentinel_base = interner.len();
        for (j, &(ap, rss)) in ranked.iter().take(upper).enumerate() {
            let code = match interner.code(ap) {
                Some(c) => c,
                None => {
                    let seen = unknown[..n_unknown].iter().find(|u| u.0 == ap);
                    match seen {
                        Some(&(_, c)) => c,
                        None => {
                            // `sentinel_base + n_unknown ≤ 65 000 + 8`,
                            // comfortably inside `u16` (the interner cap
                            // reserves exactly this headroom).
                            let c = (sentinel_base + n_unknown) as u16;
                            unknown[n_unknown] = (ap, c);
                            n_unknown += 1;
                            c
                        }
                    }
                }
            };
            head[j] = (code, rss);
        }

        // 2. Candidate signatures: the observed one, plus permutations of
        //    tied ranks (equal RSS ⇒ the bus sits on a tile boundary).
        //    The reference path materialises `TileSignature`s; here each
        //    candidate is a small code array. The first `MAX_TIE_SIGS`
        //    qualifying swap positions are applied, each deduplicated
        //    against the signatures already kept — the same bounded,
        //    deterministic enumeration as the reference path.
        let m = k.min(ranked.len());
        let mut base_sig = [0u16; MAX_ORDER];
        for j in 0..m {
            base_sig[j] = head[j].0;
        }
        let mut alts = [[0u16; MAX_ORDER]; MAX_TIE_SIGS];
        let mut n_alts = 0usize;
        let mut tried = 0usize;
        for i in 0..upper.saturating_sub(1) {
            if tried == MAX_TIE_SIGS {
                break;
            }
            if (head[i].1 - head[i + 1].1).abs() > self.config.tie_margin_db {
                continue;
            }
            tried += 1;
            let mut v = base_sig;
            if i + 1 < m {
                v.swap(i, i + 1);
            } else {
                // The rank just below the signature cut ties with the last
                // kept rank: the swap pulls it into the signature.
                v[i] = head[i + 1].0;
            }
            let dup = v[..m] == base_sig[..m] || alts[..n_alts].iter().any(|a| a[..m] == v[..m]);
            if !dup {
                alts[n_alts] = v;
                n_alts += 1;
            }
        }
        let tied = n_alts > 0;

        // 3. Collect candidate intervals. At order ≤ 2 this is an exact
        //    signature lookup. At higher orders matching is hierarchical:
        //    the top-2 prefix (the most reliable part of a noisy rank
        //    list — the paper's "2-order SVD is often enough") selects the
        //    enclosing coarse tile, and the *full* rank list then scores
        //    the finer runs inside it by rank distance. Exact matches come
        //    back at distance 0; a corrupted tail rank degrades gracefully
        //    to the order-2 cell instead of aliasing to a distant tile
        //    that happens to carry the corrupted permutation.
        scratch.intervals.clear();
        let mut exact = true;
        let sig_count = 1 + n_alts;
        if k <= 2 {
            for si in 0..sig_count {
                let sig: &[u16] = if si == 0 {
                    &base_sig[..m]
                } else {
                    &alts[si - 1][..m]
                };
                let hit = match sig {
                    &[c0, c1] => table.find2(c0, c1),
                    _ => table.find(sig),
                };
                if let Some(idx) = hit {
                    for &seg in table.payload_at(idx) {
                        if let Some(seg) = subsegments.get(seg as usize) {
                            scratch.intervals.push((seg.s0, seg.s1));
                        }
                    }
                }
            }
        } else {
            scratch.scored.clear();
            for si in 0..sig_count {
                let sig: &[u16] = if si == 0 {
                    &base_sig[..m]
                } else {
                    &alts[si - 1][..m]
                };
                let prefix = &sig[..m.min(2)];
                for idx in table.prefix_range(prefix) {
                    let d = rank_distance_codes(table.codes_at(idx), sig);
                    for &seg in table.payload_at(idx) {
                        scratch.scored.push((seg, d));
                    }
                }
            }
            if let Some(best) = scratch
                .scored
                .iter()
                .map(|&(_, d)| d)
                .min_by(|a, b| a.total_cmp(b))
            {
                exact = best == 0.0;
                for i in 0..scratch.scored.len() {
                    let (seg, d) = scratch.scored[i];
                    if d <= best + self.config.fallback_margin {
                        if let Some(seg) = subsegments.get(seg as usize) {
                            scratch.intervals.push((seg.s0, seg.s1));
                        }
                    }
                }
            }
        }
        let mut method = if tied {
            FixMethod::TieBoundary
        } else if exact {
            FixMethod::Exact
        } else {
            FixMethod::NearestSignature
        };

        // 4. Fallback: the nearest known signatures by rank distance. All
        //    near-ties contribute candidates so the mobility constraint can
        //    arbitrate (a noisy rank metric alone picks wrong runs).
        if scratch.intervals.is_empty() {
            let (near, intervals) = (&mut scratch.near, &mut scratch.intervals);
            self.index
                .nearest_codes(&base_sig[..m], 6, self.config.fallback_margin, near);
            for &(idx, d) in near.iter() {
                if d <= self.config.max_rank_distance {
                    for &seg in table.payload_at(idx as usize) {
                        if let Some(seg) = subsegments.get(seg as usize) {
                            intervals.push((seg.s0, seg.s1));
                        }
                    }
                }
            }
            if !scratch.intervals.is_empty() {
                method = FixMethod::NearestSignature;
            }
        }
        if scratch.intervals.is_empty() {
            return self.dead_reckon(time_s, prior);
        }

        // 5. Merge overlapping/adjacent intervals (tied signatures produce
        //    abutting runs around the tile boundary).
        merge_intervals_into(
            &mut scratch.intervals,
            &mut scratch.merged,
            self.index.sample_step_m(),
        );
        let merged: &[(f64, f64)] = &scratch.merged;

        // 6. Mobility constraint: prefer the interval consistent with the
        //    prior; a bus only moves forward along its route.
        let interval = match prior {
            Some(pr) => {
                let dt = (time_s - pr.time_s).max(0.0);
                let reach = (
                    pr.s - self.config.backtrack_m,
                    pr.s + self.config.max_speed_mps * dt,
                );
                let slack = 2.0 * self.index.sample_step_m() + 5.0;
                let closest = merged
                    .iter()
                    .filter(|&&(a, b)| b >= reach.0 - slack && a <= reach.1 + slack)
                    .min_by(|&&(a0, b0), &&(a1, b1)| {
                        let c0 = interval_distance(a0, b0, pr.s);
                        let c1 = interval_distance(a1, b1, pr.s);
                        c0.total_cmp(&c1)
                    });
                match closest {
                    None => {
                        // Scan contradicts the mobility window — trust the
                        // window (the paper trusts the route constraint over
                        // a single noisy scan).
                        if let Some(m) = &self.metrics {
                            m.mobility_override_total.inc();
                        }
                        return self.dead_reckon(time_s, prior);
                    }
                    Some(&iv) => iv,
                }
            }
            None => {
                // No prior: take the longest interval (highest prior mass).
                // `merged` cannot be empty here (intervals was non-empty and
                // merging only coalesces), but dead-reckoning beats a panic
                // if that invariant ever breaks.
                match merged
                    .iter()
                    .max_by(|&&(a0, b0), &&(a1, b1)| (b0 - a0).total_cmp(&(b1 - a1)))
                {
                    Some(&iv) => iv,
                    None => return self.dead_reckon(time_s, prior),
                }
            }
        };

        // 7. Point estimate: the interval midpoint (the Tile Mapping's
        //    centroid projection), clamped into the reachable window.
        let mut s = 0.5 * (interval.0 + interval.1);
        if let Some(pr) = prior {
            let dt = (time_s - pr.time_s).max(0.0);
            let lo = (pr.s - self.config.backtrack_m).max(interval.0);
            let hi = (pr.s + self.config.max_speed_mps * dt).min(interval.1);
            if lo <= hi {
                s = s.clamp(lo, hi);
            }
        }
        let s = s.clamp(0.0, self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval,
            method,
            time_s,
        })
    }

    fn dead_reckon(&self, time_s: f64, prior: Option<Prior>) -> Option<Fix> {
        let pr = prior?;
        // Without a measurement, assume the bus kept a typical urban pace
        // since the last fix.
        let dt = (time_s - pr.time_s).max(0.0);
        let s = (pr.s + self.config.dead_reckon_speed_mps * dt).min(self.route.length());
        Some(Fix {
            s,
            point: self.route.point_at(s),
            interval: (pr.s, s),
            method: FixMethod::DeadReckoned,
            time_s,
        })
    }

    /// Positioning error of a fix against ground truth, measured as road
    /// length (the paper's error metric).
    pub fn road_error_m(&self, fix: &Fix, truth_s: f64) -> f64 {
        (fix.s - truth_s).abs()
    }

    /// The sub-segment containing arc length `s` (exposes the index for
    /// diagnostics).
    pub fn subsegment_at(&self, s: f64) -> &SubSegment {
        self.index.subsegment_at(s)
    }
}

/// A stateful tracking filter around [`RoutePositioner`]: chains the
/// mobility prior between fixes and recovers from divergence by
/// *progressively widening* the search window instead of trusting either
/// the prior or a single noisy scan outright.
///
/// After `streak_threshold` consecutive fixes that did not come from an
/// exact signature match, the prior is slid backwards (both in position
/// and time) a little more each step, growing the feasible window in both
/// directions until the filter re-locks on an exact match.
#[derive(Debug, Clone)]
pub struct TrackingFilter {
    positioner: RoutePositioner,
    prior: Option<Prior>,
    unmatched_streak: usize,
    streak_threshold: usize,
    /// Reused locate buffers: steady-state tracking allocates nothing.
    scratch: LocateScratch,
}

impl TrackingFilter {
    /// Wraps a positioner with default divergence handling (threshold 3).
    pub fn new(positioner: RoutePositioner) -> Self {
        TrackingFilter {
            positioner,
            prior: None,
            unmatched_streak: 0,
            streak_threshold: 3,
            scratch: LocateScratch::new(),
        }
    }

    /// The wrapped positioner.
    pub fn positioner(&self) -> &RoutePositioner {
        &self.positioner
    }

    /// The current prior, if any.
    pub fn prior(&self) -> Option<Prior> {
        self.prior
    }

    /// Processes one ranked scan, updating the prior.
    ///
    /// Three regimes:
    ///
    /// * **Acquisition** (no prior yet): only a scan-anchored fix (exact or
    ///   tie-boundary match) initialises the track — a rank-distance guess
    ///   with no mobility constraint can land anywhere on the route.
    /// * **Tracking**: normal mobility-constrained positioning; a
    ///   dead-reckoned fix (scan rejected) increments the divergence
    ///   counter, any scan-anchored fix resets it.
    /// * **Re-acquisition** (counter at threshold): the search window is
    ///   progressively widened around the last estimate until an *exact*
    ///   match re-locks the track. Dead reckoning itself always proceeds
    ///   from the unwidened prior at the configured pace, so a diverged
    ///   track drifts boundedly instead of compounding.
    pub fn step(&mut self, ranked: &[(ApId, i32)], time_s: f64) -> Option<Fix> {
        self.step_traced(ranked, time_s, None)
    }

    /// [`TrackingFilter::step`] with an optional trace context: every
    /// positioning attempt (acquisition, tracking, widened re-lock) opens
    /// a `locate` child span.
    pub fn step_traced(
        &mut self,
        ranked: &[(ApId, i32)],
        time_s: f64,
        trace: Option<&TraceCtx<'_>>,
    ) -> Option<Fix> {
        let Some(pr) = self.prior else {
            // Acquisition.
            let fix =
                self.positioner
                    .locate_with(&mut self.scratch, ranked, time_s, None, trace)?;
            return match fix.method {
                FixMethod::Exact | FixMethod::TieBoundary => {
                    self.unmatched_streak = 0;
                    self.prior = Some(Prior {
                        s: fix.s,
                        time_s: fix.time_s,
                    });
                    Some(fix)
                }
                _ => None,
            };
        };
        // Tracking with the raw prior.
        let fix =
            self.positioner
                .locate_with(&mut self.scratch, ranked, time_s, Some(pr), trace)?;
        match fix.method {
            FixMethod::DeadReckoned => {
                self.unmatched_streak += 1;
                // Re-acquisition: widen the window and demand a
                // scan-anchored re-lock.
                if self.unmatched_streak >= self.streak_threshold {
                    let w = (self.unmatched_streak - self.streak_threshold + 1) as f64;
                    let widened = Prior {
                        s: (pr.s - 150.0 * w).max(0.0),
                        time_s: pr.time_s - 30.0 * w,
                    };
                    if let Some(m) = &self.positioner.metrics {
                        m.relock_attempt_total.inc();
                    }
                    if let Some(refix) = self.positioner.locate_with(
                        &mut self.scratch,
                        ranked,
                        time_s,
                        Some(widened),
                        trace,
                    ) {
                        if matches!(refix.method, FixMethod::Exact | FixMethod::TieBoundary) {
                            if let Some(m) = &self.positioner.metrics {
                                m.relock_success_total.inc();
                            }
                            self.unmatched_streak = 0;
                            self.prior = Some(Prior {
                                s: refix.s,
                                time_s: refix.time_s,
                            });
                            return Some(refix);
                        }
                    }
                }
                self.prior = Some(Prior {
                    s: fix.s,
                    time_s: fix.time_s,
                });
                Some(fix)
            }
            _ => {
                self.unmatched_streak = 0;
                self.prior = Some(Prior {
                    s: fix.s,
                    time_s: fix.time_s,
                });
                Some(fix)
            }
        }
    }

    /// Resets the filter for a new trip.
    pub fn reset(&mut self) {
        self.prior = None;
        self.unmatched_streak = 0;
    }

    /// Seeds the prior from an external position source (e.g. a
    /// map-matched GPS fix during a WiFi coverage gap), so the next scan
    /// is searched around it.
    pub fn seed(&mut self, prior: Prior) {
        self.prior = Some(prior);
        self.unmatched_streak = 0;
    }
}

/// Sorts `intervals` and merges runs closer than `gap` into maximal
/// disjoint intervals written to `out` (cleared first) — the buffer-reusing
/// form of the reference path's `merge_intervals`.
fn merge_intervals_into(intervals: &mut [(f64, f64)], out: &mut Vec<(f64, f64)>, gap: f64) {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    out.clear();
    for &(a, b) in intervals.iter() {
        match out.last_mut() {
            Some(last) if a <= last.1 + gap => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
}

/// Distance from `s` to the interval `[a, b]` (0 when inside).
fn interval_distance(a: f64, b: f64, s: f64) -> f64 {
    if s < a {
        a - s
    } else if s > b {
        s - b
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::SvdConfig;
    use wilocator_rf::{AccessPoint, HomogeneousField, SignalField};
    use wilocator_road::{NetworkBuilder, RouteId};

    /// The Vec-based merge, preserved as a thin wrapper over
    /// [`merge_intervals_into`] so its unit tests keep pinning the
    /// coalescing semantics.
    fn merge_intervals(mut intervals: Vec<(f64, f64)>, gap: f64) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        merge_intervals_into(&mut intervals, &mut out, gap);
        out
    }

    fn street(len: f64, spacing: f64) -> (Route, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(len, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "t", vec![e], &b.build()).unwrap();
        let mut aps = Vec::new();
        let mut x = spacing / 2.0;
        let mut i = 0u32;
        while x < len {
            let y = if i.is_multiple_of(2) { 15.0 } else { -15.0 };
            aps.push(AccessPoint::new(ApId(i), Point::new(x, y)));
            i += 1;
            x += spacing;
        }
        (route, HomogeneousField::new(aps))
    }

    fn positioner(len: f64, spacing: f64) -> (RoutePositioner, HomogeneousField) {
        let (route, field) = street(len, spacing);
        let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        (
            RoutePositioner::new(route, index, PositionerConfig::default()),
            field,
        )
    }

    /// Noiseless ranked list at a point.
    fn ranked_at(field: &HomogeneousField, p: Point) -> Vec<(ApId, i32)> {
        field
            .detectable_at(p, -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect()
    }

    #[test]
    fn noiseless_fix_is_accurate() {
        let (pos, field) = positioner(800.0, 80.0);
        for truth in [40.0, 211.0, 555.0, 790.0] {
            let ranked = ranked_at(&field, pos.route().point_at(truth));
            let fix = pos.locate(&ranked, 0.0, None).expect("fix");
            // Sub-segments with 80 m AP spacing are ≲ 40 m; the midpoint
            // estimate is therefore within ~half a run of the truth, a bit
            // more at the route ends where runs are unterminated.
            assert!(
                pos.road_error_m(&fix, truth) <= 45.0,
                "truth {truth}, fix {} ({:?})",
                fix.s,
                fix.method
            );
        }
    }

    #[test]
    fn prior_disambiguates_between_repeated_signatures() {
        let (pos, field) = positioner(800.0, 80.0);
        let truth = 400.0;
        let ranked = ranked_at(&field, pos.route().point_at(truth));
        let prior = Prior {
            s: 380.0,
            time_s: 0.0,
        };
        let fix = pos.locate(&ranked, 10.0, Some(prior)).unwrap();
        assert!((fix.s - truth).abs() <= 25.0);
        // Fix must lie in the forward mobility window.
        assert!(fix.s >= prior.s - 1e-9);
        assert!(fix.s <= prior.s + 25.0 * 10.0 + 1e-9);
    }

    #[test]
    fn empty_scan_dead_reckons_from_prior() {
        let (pos, _field) = positioner(800.0, 80.0);
        let prior = Prior {
            s: 100.0,
            time_s: 0.0,
        };
        let fix = pos.locate(&[], 10.0, Some(prior)).unwrap();
        assert_eq!(fix.method, FixMethod::DeadReckoned);
        assert!(fix.s > 100.0 && fix.s < 100.0 + 250.0);
    }

    #[test]
    fn empty_scan_without_prior_is_none() {
        let (pos, _field) = positioner(800.0, 80.0);
        assert!(pos.locate(&[], 0.0, None).is_none());
    }

    #[test]
    fn tie_produces_boundary_estimate() {
        let (pos, _field) = positioner(800.0, 80.0);
        // Find two consecutive sub-segments A, B whose order-2 signatures
        // share the site but differ in the second rank: the boundary
        // between them is where ranks 2 and 3 tie. Constructing a scan
        // with that exact tie must place the bus on the shared boundary.
        let subs = pos.index().subsegments().to_vec();
        let mut tested = false;
        for w in subs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let (sa, sb) = (a.signature.aps(), b.signature.aps());
            if sa.len() == 2 && sb.len() == 2 && sa[0] == sb[0] && sa[1] != sb[1] {
                let boundary = a.s1;
                // Rank list: shared site strongest, then the two tied
                // second-place APs.
                let ranked = vec![(sa[0], -50), (sa[1], -60), (sb[1], -60)];
                let fix = pos.locate(&ranked, 0.0, None).unwrap();
                assert_eq!(fix.method, FixMethod::TieBoundary);
                assert!(
                    (fix.s - boundary).abs() <= (a.length() + b.length()) / 2.0 + 5.0,
                    "boundary {boundary}, fix {} ({:?})",
                    fix.s,
                    fix.method
                );
                tested = true;
                break;
            }
        }
        assert!(tested, "no same-site boundary found on the test street");
    }

    #[test]
    fn unknown_signature_falls_back_to_nearest() {
        let (pos, field) = positioner(800.0, 80.0);
        let truth = 300.0;
        let mut ranked = ranked_at(&field, pos.route().point_at(truth));
        // Corrupt the list: drop the strongest AP (as if it just died).
        ranked.remove(0);
        let fix = pos.locate(&ranked, 0.0, None).expect("fallback fix");
        assert!(
            pos.road_error_m(&fix, truth) <= 120.0,
            "err {}",
            pos.road_error_m(&fix, truth)
        );
    }

    #[test]
    fn contradictory_scan_is_overridden_by_mobility() {
        let (pos, field) = positioner(800.0, 80.0);
        // Prior at s = 100; scan claims the bus is at s = 700 one second
        // later (impossible at 25 m/s).
        let ranked = ranked_at(&field, pos.route().point_at(700.0));
        let prior = Prior {
            s: 100.0,
            time_s: 0.0,
        };
        let fix = pos.locate(&ranked, 1.0, Some(prior)).unwrap();
        assert_eq!(fix.method, FixMethod::DeadReckoned);
        assert!(fix.s < 150.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let (pos, field) = positioner(800.0, 80.0);
        let mut scratch = LocateScratch::new();
        for truth in [40.0, 211.0, 555.0, 790.0] {
            let ranked = ranked_at(&field, pos.route().point_at(truth));
            let reused = pos.locate_with(&mut scratch, &ranked, 0.0, None, None);
            let fresh = pos.locate(&ranked, 0.0, None);
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn unknown_aps_in_scan_miss_rather_than_alias() {
        let (pos, field) = positioner(800.0, 80.0);
        let truth = 300.0;
        let mut ranked = ranked_at(&field, pos.route().point_at(truth));
        // Splice two never-rasterised APs into the head of the scan: they
        // must read as guaranteed misses (sentinel codes), not alias onto
        // real tiles, so the positioner falls back instead of matching an
        // exact signature the index never stored.
        ranked.insert(0, (ApId(60_000), -45));
        ranked.insert(1, (ApId(60_001), -46));
        if let Some(fix) = pos.locate(&ranked, 0.0, None) {
            assert_ne!(fix.method, FixMethod::Exact);
        }
    }

    #[test]
    fn merge_intervals_merges_adjacent() {
        let merged = merge_intervals(vec![(0.0, 10.0), (10.5, 20.0), (40.0, 50.0)], 1.0);
        assert_eq!(merged, vec![(0.0, 20.0), (40.0, 50.0)]);
    }

    #[test]
    fn merge_intervals_keeps_disjoint() {
        let merged = merge_intervals(vec![(0.0, 1.0), (5.0, 6.0)], 0.5);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn interval_distance_cases() {
        assert_eq!(interval_distance(2.0, 4.0, 3.0), 0.0);
        assert_eq!(interval_distance(2.0, 4.0, 1.0), 1.0);
        assert_eq!(interval_distance(2.0, 4.0, 6.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn order_exceeding_index_rejected() {
        let (route, field) = street(200.0, 80.0);
        let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let _ = RoutePositioner::new(
            route,
            index,
            PositionerConfig {
                order: 5,
                ..PositionerConfig::default()
            },
        );
    }

    #[test]
    fn fix_error_metric_is_road_distance() {
        let (pos, field) = positioner(400.0, 80.0);
        let ranked = ranked_at(&field, pos.route().point_at(100.0));
        let fix = pos.locate(&ranked, 0.0, None).unwrap();
        assert_eq!(pos.road_error_m(&fix, fix.s), 0.0);
        assert_eq!(pos.road_error_m(&fix, fix.s + 7.0), 7.0);
    }
}

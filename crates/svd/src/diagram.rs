//! Rasterised planar Signal Voronoi Diagram (Definitions 1–2).
//!
//! The diagram is extracted on a regular raster: every cell is labelled with
//! its `k`-order [`TileSignature`] under the mean signal field, connected
//! components of equal signature become [`Tile`]s, label changes between
//! 4-adjacent cells become tile boundaries (whose accumulated length drives
//! the paper's *longest-tile-boundary* fallback), and raster corners where
//! three or more Signal Cells meet become *joint points* (where SVEs meet) —
//! or *bisector joints* when the meeting regions share a site.
//!
//! Rasterisation is exact in the limit of the resolution and, unlike an
//! analytic construction, handles arbitrary (non-straight) Signal Voronoi
//! Edges produced by heterogeneous transmit powers and shadowing — the very
//! reason the paper introduces the SVD as a generalisation of the Euclidean
//! Voronoi diagram.

use std::collections::HashMap;

use wilocator_geo::{BoundingBox, Grid, Point};
use wilocator_rf::{ApId, SignalField};

use crate::signature::{signature_from_ranked, TileSignature};

/// Identifier of a tile (a connected region) within a diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A Signal Tile: a maximal connected region of constant rank signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    id: TileId,
    signature: TileSignature,
    centroid: Point,
    area_m2: f64,
    cell_count: usize,
}

impl Tile {
    /// The tile's identifier.
    pub fn id(&self) -> TileId {
        self.id
    }

    /// The rank signature naming this tile.
    pub fn signature(&self) -> &TileSignature {
        &self.signature
    }

    /// Centroid of the tile's raster cells — the point the paper's Tile
    /// Mapping projects onto the road.
    pub fn centroid(&self) -> Point {
        self.centroid
    }

    /// Tile area in square metres (raster estimate).
    pub fn area_m2(&self) -> f64 {
        self.area_m2
    }

    /// Number of raster cells in the tile.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }
}

/// A first-order Signal Cell: the union of tiles sharing a site.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalCell {
    /// The dominating AP (the cell's *site* or *generator*).
    pub site: ApId,
    /// Total area, square metres.
    pub area_m2: f64,
    /// Area-weighted centroid.
    pub centroid: Point,
    /// The tiles partitioning this cell (the second-order SVD of the cell).
    pub tiles: Vec<TileId>,
}

/// A point where Signal Voronoi Edges meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Joint {
    /// Location of the joint.
    pub point: Point,
    /// True for a junction of SVEs (≥ 3 distinct sites); false for a
    /// *bisector joint* (≥ 3 tiles of the same site meeting).
    pub is_cell_junction: bool,
}

/// Configuration for diagram construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvdConfig {
    /// Raster cell side, metres.
    pub resolution_m: f64,
    /// Signature order `k` (1 = Signal Cells, 2 = the paper's default).
    pub order: usize,
    /// APs weaker than this (dBm) at a point are not part of its signature.
    pub detection_threshold_dbm: f64,
}

impl Default for SvdConfig {
    fn default() -> Self {
        SvdConfig {
            resolution_m: 2.0,
            order: 2,
            detection_threshold_dbm: -90.0,
        }
    }
}

/// The rasterised Signal Voronoi Diagram of a bounded domain.
///
/// # Examples
///
/// ```
/// use wilocator_geo::{BoundingBox, Point};
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
/// use wilocator_svd::{SignalVoronoiDiagram, SvdConfig};
///
/// let aps = vec![
///     AccessPoint::new(ApId(0), Point::new(30.0, 50.0)),
///     AccessPoint::new(ApId(1), Point::new(170.0, 50.0)),
/// ];
/// let field = HomogeneousField::new(aps);
/// let bbox = BoundingBox::new(Point::new(0.0, 0.0), Point::new(200.0, 100.0));
/// let svd = SignalVoronoiDiagram::build(&field, bbox, SvdConfig::default());
/// let left = svd.tile_at(Point::new(30.0, 50.0)).unwrap();
/// assert_eq!(left.signature().site(), Some(ApId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct SignalVoronoiDiagram {
    config: SvdConfig,
    /// Region id per raster cell; `u32::MAX` marks no-coverage cells.
    regions: Grid<u32>,
    tiles: Vec<Tile>,
    /// Boundary length between adjacent tiles, keyed by ordered id pair.
    adjacency: HashMap<(u32, u32), f64>,
    /// Signature → tiles carrying it (a signature may appear as several
    /// disconnected regions).
    by_signature: HashMap<TileSignature, Vec<TileId>>,
}

const NO_COVERAGE: u32 = u32::MAX;

impl SignalVoronoiDiagram {
    /// Rasterises the diagram of `field` over `bbox`.
    ///
    /// Complexity is `O(cells × APs-in-range)`; intended for neighbourhood-
    /// scale domains (the campus experiment, figure rendering, fallback
    /// mapping). Route-scale positioning uses
    /// [`crate::RouteTileIndex`] instead, which samples only the road.
    ///
    /// # Panics
    ///
    /// Panics if `config.order == 0` or `config.resolution_m <= 0`.
    pub fn build<F: SignalField + ?Sized>(field: &F, bbox: BoundingBox, config: SvdConfig) -> Self {
        assert!(config.order >= 1, "signature order must be at least 1");
        assert!(config.resolution_m > 0.0, "resolution must be positive");

        // 1. Label every cell with an interned signature index.
        let mut interner: HashMap<TileSignature, u32> = HashMap::new();
        let mut signatures: Vec<TileSignature> = Vec::new();
        let mut labels: Grid<u32> = Grid::new(bbox, config.resolution_m, NO_COVERAGE);
        labels.fill_with(|p| {
            let ranked = field.detectable_at(p, config.detection_threshold_dbm);
            if ranked.is_empty() {
                return NO_COVERAGE;
            }
            let sig = signature_from_ranked(&ranked, config.order);
            *interner.entry(sig.clone()).or_insert_with(|| {
                signatures.push(sig);
                (signatures.len() - 1) as u32
            })
        });

        // 2. Flood-fill connected components of equal label.
        let mut regions: Grid<u32> = Grid::new(bbox, config.resolution_m, NO_COVERAGE);
        let mut tiles: Vec<Tile> = Vec::new();
        let cell_area = config.resolution_m * config.resolution_m;
        let (cols, rows) = (labels.cols(), labels.rows());
        for start_row in 0..rows {
            for start_col in 0..cols {
                // Loop bounds keep every access in range; reading a
                // missing cell as NO_COVERAGE makes that panic-free
                // without changing behaviour.
                let label = labels
                    .get(start_col, start_row)
                    .copied()
                    .unwrap_or(NO_COVERAGE);
                let region = regions
                    .get(start_col, start_row)
                    .copied()
                    .unwrap_or(NO_COVERAGE);
                if label == NO_COVERAGE || region != NO_COVERAGE {
                    continue;
                }
                let region_id = tiles.len() as u32;
                let mut stack = vec![(start_col, start_row)];
                if let Some(cell) = regions.get_mut(start_col, start_row) {
                    *cell = region_id;
                }
                let mut count = 0usize;
                let mut sum = Point::ORIGIN;
                while let Some((c, r)) = stack.pop() {
                    count += 1;
                    let center = regions.cell_center(c, r);
                    sum = sum.offset(center.x, center.y);
                    let neighbors: Vec<(usize, usize)> = regions.neighbors4(c, r).collect();
                    for (nc, nr) in neighbors {
                        if labels.get(nc, nr).copied().unwrap_or(NO_COVERAGE) == label
                            && regions.get(nc, nr).copied().unwrap_or(region_id) == NO_COVERAGE
                        {
                            if let Some(cell) = regions.get_mut(nc, nr) {
                                *cell = region_id;
                            }
                            stack.push((nc, nr));
                        }
                    }
                }
                tiles.push(Tile {
                    id: TileId(region_id),
                    signature: signatures[label as usize].clone(),
                    centroid: Point::new(sum.x / count as f64, sum.y / count as f64),
                    area_m2: count as f64 * cell_area,
                    cell_count: count,
                });
            }
        }

        // 3. Adjacency: accumulate shared boundary length.
        let mut adjacency: HashMap<(u32, u32), f64> = HashMap::new();
        for row in 0..rows {
            for col in 0..cols {
                let a = regions.get(col, row).copied().unwrap_or(NO_COVERAGE);
                if a == NO_COVERAGE {
                    continue;
                }
                for (nc, nr) in [(col + 1, row), (col, row + 1)] {
                    if let Some(&b) = regions.get(nc, nr) {
                        if b != NO_COVERAGE && b != a {
                            let key = (a.min(b), a.max(b));
                            *adjacency.entry(key).or_insert(0.0) += config.resolution_m;
                        }
                    }
                }
            }
        }

        let mut by_signature: HashMap<TileSignature, Vec<TileId>> = HashMap::new();
        for t in &tiles {
            by_signature
                .entry(t.signature.clone())
                .or_default()
                .push(t.id);
        }

        SignalVoronoiDiagram {
            config,
            regions,
            tiles,
            adjacency,
            by_signature,
        }
    }

    /// The construction configuration.
    pub fn config(&self) -> &SvdConfig {
        &self.config
    }

    /// The rasterised domain.
    pub fn bbox(&self) -> BoundingBox {
        self.regions.bbox()
    }

    /// All tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Tile lookup by id.
    pub fn tile(&self, id: TileId) -> Option<&Tile> {
        self.tiles.get(id.0 as usize)
    }

    /// The tile containing `p`, if covered.
    pub fn tile_at(&self, p: Point) -> Option<&Tile> {
        let &region = self.regions.at(p)?;
        if region == NO_COVERAGE {
            None
        } else {
            self.tile(TileId(region))
        }
    }

    /// Tiles carrying exactly the given signature.
    pub fn tiles_with_signature(&self, sig: &TileSignature) -> &[TileId] {
        self.by_signature
            .get(sig)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The tile(s) of the known signature nearest (by rank distance) to an
    /// observed signature. Exact matches come back at distance 0.
    /// Distance ties break on signature order, never on map iteration
    /// order — the fallback must be reproducible across processes.
    pub fn nearest_signature(&self, sig: &TileSignature) -> Option<(&TileSignature, f64)> {
        self.by_signature
            // lint: allow(unordered_iter) — min_by below is a total order with a signature tie-break, so the winner is order-independent
            .keys()
            .map(|k| (k, k.rank_distance(sig)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
    }

    /// Neighbouring tiles of `id` with the shared boundary length, metres.
    pub fn neighbors(&self, id: TileId) -> Vec<(TileId, f64)> {
        let mut out = Vec::new();
        for (&(a, b), &len) in &self.adjacency {
            if a == id.0 {
                out.push((TileId(b), len));
            } else if b == id.0 {
                out.push((TileId(a), len));
            }
        }
        out.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// The neighbour of `id` with the longest shared tile boundary among
    /// those accepted by `filter` — the paper's fallback mapping for tiles
    /// that do not intersect the road.
    pub fn longest_boundary_neighbor(
        &self,
        id: TileId,
        mut filter: impl FnMut(TileId) -> bool,
    ) -> Option<TileId> {
        self.neighbors(id)
            .into_iter()
            .find(|&(t, _)| filter(t))
            .map(|(t, _)| t)
    }

    /// First-order Signal Cells: tiles grouped by site.
    pub fn cells(&self) -> Vec<SignalCell> {
        let mut by_site: HashMap<ApId, SignalCell> = HashMap::new();
        for t in &self.tiles {
            let Some(site) = t.signature.site() else {
                continue;
            };
            let entry = by_site.entry(site).or_insert(SignalCell {
                site,
                area_m2: 0.0,
                centroid: Point::ORIGIN,
                tiles: Vec::new(),
            });
            // Accumulate area-weighted centroid.
            entry.centroid = Point::new(
                entry.centroid.x + t.centroid.x * t.area_m2,
                entry.centroid.y + t.centroid.y * t.area_m2,
            );
            entry.area_m2 += t.area_m2;
            entry.tiles.push(t.id);
        }
        let mut cells: Vec<SignalCell> = by_site
            .into_values()
            .map(|mut c| {
                c.centroid = Point::new(c.centroid.x / c.area_m2, c.centroid.y / c.area_m2);
                c
            })
            .collect();
        cells.sort_by_key(|c| c.site);
        cells
    }

    /// Joint points: raster corners where ≥ 3 tiles meet. Corners where the
    /// meeting tiles span ≥ 3 distinct *sites* are SVE junctions; corners
    /// where ≥ 3 tiles share a site are bisector joints.
    pub fn joints(&self) -> Vec<Joint> {
        let mut out = Vec::new();
        let g = &self.regions;
        for row in 0..g.rows().saturating_sub(1) {
            for col in 0..g.cols().saturating_sub(1) {
                let (Some(&q00), Some(&q10), Some(&q01), Some(&q11)) = (
                    g.get(col, row),
                    g.get(col + 1, row),
                    g.get(col, row + 1),
                    g.get(col + 1, row + 1),
                ) else {
                    // Unreachable for in-range corners; skipping beats
                    // panicking if the raster ever shrinks.
                    continue;
                };
                let quad = [q00, q10, q01, q11];
                if quad.contains(&NO_COVERAGE) {
                    continue;
                }
                let mut regions: Vec<u32> = quad.to_vec();
                regions.sort_unstable();
                regions.dedup();
                if regions.len() < 3 {
                    continue;
                }
                let mut sites: Vec<ApId> = regions
                    .iter()
                    .filter_map(|&r| self.tiles[r as usize].signature.site())
                    .collect();
                sites.sort_unstable();
                sites.dedup();
                let center = g.cell_center(col, row);
                let corner = center.offset(
                    self.config.resolution_m / 2.0,
                    self.config.resolution_m / 2.0,
                );
                out.push(Joint {
                    point: corner,
                    is_cell_junction: sites.len() >= 3,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_rf::{AccessPoint, HomogeneousField};

    fn three_ap_field() -> HomogeneousField {
        HomogeneousField::new(vec![
            AccessPoint::new(ApId(0), Point::new(50.0, 50.0)),
            AccessPoint::new(ApId(1), Point::new(150.0, 50.0)),
            AccessPoint::new(ApId(2), Point::new(100.0, 150.0)),
        ])
    }

    fn bbox() -> BoundingBox {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0))
    }

    #[test]
    fn homogeneous_svd_matches_euclidean_voronoi() {
        // With equal parameters the SVD degenerates to the Voronoi diagram
        // (the paper: "only in the ideal case … will the SVD be the same as
        // the VD").
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let aps = [
            Point::new(50.0, 50.0),
            Point::new(150.0, 50.0),
            Point::new(100.0, 150.0),
        ];
        for (x, y) in [(20.0, 30.0), (160.0, 40.0), (100.0, 170.0), (60.0, 90.0)] {
            let p = Point::new(x, y);
            let nearest = (0..3)
                .min_by(|&a, &b| p.distance(aps[a]).partial_cmp(&p.distance(aps[b])).unwrap())
                .unwrap();
            let tile = svd.tile_at(p).expect("covered");
            assert_eq!(
                tile.signature().site(),
                Some(ApId(nearest as u32)),
                "at {p}"
            );
        }
    }

    #[test]
    fn order_two_refines_cells() {
        let field = three_ap_field();
        let one = SignalVoronoiDiagram::build(
            &field,
            bbox(),
            SvdConfig {
                order: 1,
                ..SvdConfig::default()
            },
        );
        let two = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        assert!(two.tiles().len() > one.tiles().len());
        // Proposition: each order-1 signature is a prefix of the order-2
        // signature at the same point.
        for (x, y) in [(20.0, 30.0), (120.0, 80.0), (100.0, 170.0)] {
            let p = Point::new(x, y);
            let s1 = one.tile_at(p).unwrap().signature().clone();
            let s2 = two.tile_at(p).unwrap().signature().clone();
            assert!(s1.is_prefix_of(&s2), "at {p}: {s1} vs {s2}");
        }
    }

    #[test]
    fn signature_at_ap_position_is_dominated_by_that_ap() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let t = svd.tile_at(Point::new(50.0, 50.0)).unwrap();
        assert_eq!(t.signature().site(), Some(ApId(0)));
    }

    #[test]
    fn areas_sum_to_covered_domain() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let total: f64 = svd.tiles().iter().map(|t| t.area_m2()).sum();
        // Domain is 200×200 = 40 000 m²; APs at 20 dBm under the urban model
        // cover ~200 m, so most of the box is covered.
        assert!(total > 30_000.0, "covered {total}");
        assert!(total <= 40_000.0 + 1.0);
    }

    #[test]
    fn adjacency_is_symmetric_and_positive() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        for t in svd.tiles() {
            for (n, len) in svd.neighbors(t.id()) {
                assert!(len > 0.0);
                let back = svd.neighbors(n);
                assert!(
                    back.iter().any(|&(b, l)| b == t.id() && l == len),
                    "asymmetric adjacency"
                );
            }
        }
    }

    #[test]
    fn longest_boundary_neighbor_respects_filter() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let some_tile = svd.tiles()[0].id();
        let neighbors = svd.neighbors(some_tile);
        if neighbors.len() >= 2 {
            let banned = neighbors[0].0;
            let chosen = svd
                .longest_boundary_neighbor(some_tile, |t| t != banned)
                .unwrap();
            assert_eq!(chosen, neighbors[1].0);
        }
    }

    #[test]
    fn cells_partition_tiles() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let cells = svd.cells();
        assert_eq!(cells.len(), 3);
        let tile_total: usize = cells.iter().map(|c| c.tiles.len()).sum();
        assert_eq!(tile_total, svd.tiles().len());
        // Each cell's centroid should be pulled toward its site.
        for c in &cells {
            let site_pos = field.aps()[c.site.0 as usize].position();
            assert!(c.centroid.distance(site_pos) < 100.0);
        }
    }

    #[test]
    fn joints_exist_where_three_cells_meet() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let joints = svd.joints();
        let junctions: Vec<_> = joints.iter().filter(|j| j.is_cell_junction).collect();
        assert!(!junctions.is_empty());
        // For equal-parameter APs the SVE junction is the circumcentre of
        // the three AP positions: (100, 87.5) for this triangle.
        let expected = Point::new(100.0, 87.5);
        let nearest = junctions
            .iter()
            .map(|j| j.point.distance(expected))
            .fold(f64::INFINITY, f64::min);
        assert!(nearest < 10.0, "nearest junction {nearest} m away");
    }

    #[test]
    fn nearest_signature_exact_match_is_zero() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let sig = svd.tiles()[0].signature().clone();
        let (found, d) = svd.nearest_signature(&sig).unwrap();
        assert_eq!(found, &sig);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn uncovered_point_has_no_tile() {
        let field = HomogeneousField::new(vec![AccessPoint::new(ApId(0), Point::new(10.0, 10.0))]);
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(2_000.0, 100.0));
        let svd = SignalVoronoiDiagram::build(
            &field,
            bb,
            SvdConfig {
                resolution_m: 10.0,
                ..SvdConfig::default()
            },
        );
        assert!(svd.tile_at(Point::new(1_900.0, 50.0)).is_none());
        assert!(svd.tile_at(Point::new(10.0, 10.0)).is_some());
    }

    #[test]
    fn ap_churn_locally_deforms_diagram() {
        // Removing AP1 must not change the signature near AP0's site but
        // must re-label AP1's former cell (the paper's AP-dynamics claim).
        let field = three_ap_field();
        let svd_full = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let field_dead = field.without_aps(&[ApId(1)]);
        let svd_dead = SignalVoronoiDiagram::build(&field_dead, bbox(), SvdConfig::default());
        let near_ap0 = Point::new(40.0, 45.0);
        assert_eq!(
            svd_full.tile_at(near_ap0).unwrap().signature().site(),
            svd_dead.tile_at(near_ap0).unwrap().signature().site(),
        );
        let near_ap1 = Point::new(150.0, 50.0);
        assert_eq!(
            svd_dead.tile_at(near_ap1).unwrap().signature().site(),
            Some(ApId(0)), // AP0 is nearer than AP2 to (150, 50)
        );
    }
}

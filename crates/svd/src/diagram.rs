//! Rasterised planar Signal Voronoi Diagram (Definitions 1–2).
//!
//! The diagram is extracted on a regular raster: every cell is labelled with
//! its `k`-order [`TileSignature`] under the mean signal field, connected
//! components of equal signature become [`Tile`]s, label changes between
//! 4-adjacent cells become tile boundaries (whose accumulated length drives
//! the paper's *longest-tile-boundary* fallback), and raster corners where
//! three or more Signal Cells meet become *joint points* (where SVEs meet) —
//! or *bisector joints* when the meeting regions share a site.
//!
//! Rasterisation is exact in the limit of the resolution and, unlike an
//! analytic construction, handles arbitrary (non-straight) Signal Voronoi
//! Edges produced by heterogeneous transmit powers and shadowing — the very
//! reason the paper introduces the SVD as a generalisation of the Euclidean
//! Voronoi diagram.
//!
//! # Incremental maintenance
//!
//! The diagram persists its raster state — the per-cell signature label plus
//! the per-cell top-`k+1` rank list — so AP churn (the paper's "AP b is out
//! of function" scenario) is absorbed by [`SignalVoronoiDiagram::apply_churn`]
//! without re-evaluating the signal field over the whole domain. A death is
//! pure list surgery on the cells that stored the AP; a birth inserts by
//! expected RSS and only falls back to field evaluation on exact RSS ties,
//! where the rank order would otherwise depend on iteration order. The
//! derived structures (regions, tiles, adjacency) are then re-derived from
//! the labels by a pure, allocation-light pass that replicates the from-
//! scratch build exactly: a patched diagram is byte-identical (see
//! [`SignalVoronoiDiagram::encode`]) to a fresh rebuild over the new field.

use std::collections::HashMap;

use wilocator_geo::{BoundingBox, Grid, Point};
use wilocator_rf::{AccessPoint, ApId, SignalField};

use crate::signature::{signature_from_ranked, TileSignature};

/// Identifier of a tile (a connected region) within a diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A Signal Tile: a maximal connected region of constant rank signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    id: TileId,
    signature: TileSignature,
    centroid: Point,
    area_m2: f64,
    cell_count: usize,
}

impl Tile {
    /// The tile's identifier.
    pub fn id(&self) -> TileId {
        self.id
    }

    /// The rank signature naming this tile.
    pub fn signature(&self) -> &TileSignature {
        &self.signature
    }

    /// Centroid of the tile's raster cells — the point the paper's Tile
    /// Mapping projects onto the road.
    pub fn centroid(&self) -> Point {
        self.centroid
    }

    /// Tile area in square metres (raster estimate).
    pub fn area_m2(&self) -> f64 {
        self.area_m2
    }

    /// Number of raster cells in the tile.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }
}

/// A first-order Signal Cell: the union of tiles sharing a site.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalCell {
    /// The dominating AP (the cell's *site* or *generator*).
    pub site: ApId,
    /// Total area, square metres.
    pub area_m2: f64,
    /// Area-weighted centroid.
    pub centroid: Point,
    /// The tiles partitioning this cell (the second-order SVD of the cell).
    pub tiles: Vec<TileId>,
}

/// A point where Signal Voronoi Edges meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Joint {
    /// Location of the joint.
    pub point: Point,
    /// True for a junction of SVEs (≥ 3 distinct sites); false for a
    /// *bisector joint* (≥ 3 tiles of the same site meeting).
    pub is_cell_junction: bool,
}

/// Configuration for diagram construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvdConfig {
    /// Raster cell side, metres.
    pub resolution_m: f64,
    /// Signature order `k` (1 = Signal Cells, 2 = the paper's default).
    pub order: usize,
    /// APs weaker than this (dBm) at a point are not part of its signature.
    pub detection_threshold_dbm: f64,
}

impl Default for SvdConfig {
    fn default() -> Self {
        SvdConfig {
            resolution_m: 2.0,
            order: 2,
            detection_threshold_dbm: -90.0,
        }
    }
}

/// The rasterised Signal Voronoi Diagram of a bounded domain.
///
/// # Examples
///
/// ```
/// use wilocator_geo::{BoundingBox, Point};
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
/// use wilocator_svd::{SignalVoronoiDiagram, SvdConfig};
///
/// let aps = vec![
///     AccessPoint::new(ApId(0), Point::new(30.0, 50.0)),
///     AccessPoint::new(ApId(1), Point::new(170.0, 50.0)),
/// ];
/// let field = HomogeneousField::new(aps);
/// let bbox = BoundingBox::new(Point::new(0.0, 0.0), Point::new(200.0, 100.0));
/// let svd = SignalVoronoiDiagram::build(&field, bbox, SvdConfig::default());
/// let left = svd.tile_at(Point::new(30.0, 50.0)).unwrap();
/// assert_eq!(left.signature().site(), Some(ApId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct SignalVoronoiDiagram {
    config: SvdConfig,

    // --- Persisted raster state, the substrate of incremental maintenance ---
    /// Interned signature index per raster cell; `u32::MAX` marks
    /// no-coverage cells. Two cells share a label iff they share a
    /// signature, which is all the derivation pass reads.
    labels: Grid<u32>,
    /// Intern table: label index → signature. Grows monotonically across
    /// churn; stale entries are harmless (derivation only reads live labels).
    signatures: Vec<TileSignature>,
    /// Probe-only reverse map for interning (never iterated).
    sig_lookup: HashMap<TileSignature, u32>,
    /// Per-cell top-`k+1` AP ids, strongest first, in a flat slab of stride
    /// `order + 1` (`cell i` owns `top_ids[i*(k+1) .. i*(k+1)+top_len[i]]`).
    top_ids: Vec<u32>,
    /// Expected RSS (dBm) matching `top_ids`, strictly descending except
    /// where the field genuinely ties.
    top_rss: Vec<f64>,
    /// Stored rank-list length per cell.
    top_len: Vec<u8>,
    /// True when the stored list holds *every* detectable AP at the cell.
    /// Invariant: an incomplete list always stores at least `order` ranks.
    top_complete: Vec<bool>,
    /// Sorted ids of the APs present in the field at the last (re)build.
    known_aps: Vec<u32>,

    // --- State derived from `labels` by `derive_state` ---
    /// Region id per raster cell; `u32::MAX` marks no-coverage cells.
    regions: Grid<u32>,
    tiles: Vec<Tile>,
    /// Boundary length between adjacent tiles as `(lo, hi, metres)`,
    /// sorted by the ordered id pair.
    edges: Vec<(u32, u32, f64)>,
    /// Signature → tiles carrying it (a signature may appear as several
    /// disconnected regions), sorted by signature; tile ids ascend within
    /// a group.
    by_signature: Vec<(TileSignature, Vec<TileId>)>,
}

const NO_COVERAGE: u32 = u32::MAX;

/// Everything `derive_state` recomputes from the label raster.
struct DerivedState {
    regions: Grid<u32>,
    tiles: Vec<Tile>,
    edges: Vec<(u32, u32, f64)>,
    by_signature: Vec<(TileSignature, Vec<TileId>)>,
}

fn intern_signature(
    lookup: &mut HashMap<TileSignature, u32>,
    signatures: &mut Vec<TileSignature>,
    sig: TileSignature,
) -> u32 {
    if let Some(&idx) = lookup.get(&sig) {
        return idx;
    }
    let idx = signatures.len() as u32;
    signatures.push(sig.clone());
    lookup.insert(sig, idx);
    idx
}

/// Recovers regions, tiles, adjacency and the signature groups from the
/// label raster. Pure in the label *equality pattern*: two label rasters
/// that partition the cells identically (even under different intern
/// indices) derive bit-identical state, which is what makes an
/// incrementally patched diagram byte-equal to a fresh rebuild.
fn derive_state(
    labels: &Grid<u32>,
    signatures: &[TileSignature],
    config: &SvdConfig,
) -> DerivedState {
    let (cols, rows) = (labels.cols(), labels.rows());
    let cell_area = config.resolution_m * config.resolution_m;
    let labs = labels.values();

    // Flood-fill connected components of equal label. The scan order,
    // neighbour order (west, east, south, north) and centroid accumulation
    // order replicate the original rasteriser exactly.
    let mut regions: Grid<u32> = Grid::new(labels.bbox(), config.resolution_m, NO_COVERAGE);
    let mut tiles: Vec<Tile> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..labs.len() {
        let label = labs[start];
        if label == NO_COVERAGE || regions.values()[start] != NO_COVERAGE {
            continue;
        }
        let region_id = tiles.len() as u32;
        regions.values_mut()[start] = region_id;
        stack.push(start);
        let mut count = 0usize;
        let mut sum = Point::ORIGIN;
        while let Some(idx) = stack.pop() {
            count += 1;
            let (c, r) = (idx % cols, idx / cols);
            let center = regions.cell_center(c, r);
            sum = sum.offset(center.x, center.y);
            let regs = regions.values_mut();
            if c > 0 {
                let n = idx - 1;
                if labs[n] == label && regs[n] == NO_COVERAGE {
                    regs[n] = region_id;
                    stack.push(n);
                }
            }
            if c + 1 < cols {
                let n = idx + 1;
                if labs[n] == label && regs[n] == NO_COVERAGE {
                    regs[n] = region_id;
                    stack.push(n);
                }
            }
            if r > 0 {
                let n = idx - cols;
                if labs[n] == label && regs[n] == NO_COVERAGE {
                    regs[n] = region_id;
                    stack.push(n);
                }
            }
            if r + 1 < rows {
                let n = idx + cols;
                if labs[n] == label && regs[n] == NO_COVERAGE {
                    regs[n] = region_id;
                    stack.push(n);
                }
            }
        }
        tiles.push(Tile {
            id: TileId(region_id),
            signature: signatures.get(label as usize).cloned().unwrap_or_default(),
            centroid: Point::new(sum.x / count as f64, sum.y / count as f64),
            area_m2: count as f64 * cell_area,
            cell_count: count,
        });
    }

    // Adjacency: accumulate shared boundary length. Contributions are
    // gathered row-major (east then south neighbour) and summed per run,
    // each addend one cell side, matching the original accumulation bits.
    let regs = regions.values();
    let mut contributions: Vec<(u32, u32)> = Vec::new();
    for row in 0..rows {
        for col in 0..cols {
            let a = regs[row * cols + col];
            if a == NO_COVERAGE {
                continue;
            }
            if col + 1 < cols {
                let b = regs[row * cols + col + 1];
                if b != NO_COVERAGE && b != a {
                    contributions.push((a.min(b), a.max(b)));
                }
            }
            if row + 1 < rows {
                let b = regs[(row + 1) * cols + col];
                if b != NO_COVERAGE && b != a {
                    contributions.push((a.min(b), a.max(b)));
                }
            }
        }
    }
    contributions.sort_unstable();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for &(a, b) in &contributions {
        match edges.last_mut() {
            Some(e) if e.0 == a && e.1 == b => e.2 += config.resolution_m,
            _ => edges.push((a, b, config.resolution_m)),
        }
    }

    // Signature groups, sorted by signature; tiles are already in id order
    // so a stable sort keeps ids ascending within a group.
    let mut order_idx: Vec<usize> = (0..tiles.len()).collect();
    order_idx.sort_by(|&a, &b| tiles[a].signature.cmp(&tiles[b].signature));
    let mut by_signature: Vec<(TileSignature, Vec<TileId>)> = Vec::new();
    for &ti in &order_idx {
        let t = &tiles[ti];
        match by_signature.last_mut() {
            Some(g) if g.0 == t.signature => g.1.push(t.id),
            _ => by_signature.push((t.signature.clone(), vec![t.id])),
        }
    }

    DerivedState {
        regions,
        tiles,
        edges,
        by_signature,
    }
}

impl SignalVoronoiDiagram {
    /// Rasterises the diagram of `field` over `bbox`.
    ///
    /// Complexity is `O(cells × APs-in-range)`; intended for neighbourhood-
    /// scale domains (the campus experiment, figure rendering, fallback
    /// mapping). Route-scale positioning uses
    /// [`crate::RouteTileIndex`] instead, which samples only the road.
    ///
    /// # Panics
    ///
    /// Panics if `config.order == 0` or `config.resolution_m <= 0`.
    pub fn build<F: SignalField + ?Sized>(field: &F, bbox: BoundingBox, config: SvdConfig) -> Self {
        assert!(config.order >= 1, "signature order must be at least 1");
        assert!(config.resolution_m > 0.0, "resolution must be positive");
        assert!(
            config.order < u8::MAX as usize,
            "signature order must fit the per-cell rank store"
        );

        // Label every cell with an interned signature index and persist its
        // top-(k+1) rank list — one extra rank beyond the signature so an
        // AP death inside the signature can be patched without touching the
        // signal field.
        let k1 = config.order + 1;
        let mut sig_lookup: HashMap<TileSignature, u32> = HashMap::new();
        let mut signatures: Vec<TileSignature> = Vec::new();
        let mut labels: Grid<u32> = Grid::new(bbox, config.resolution_m, NO_COVERAGE);
        let n_cells = labels.len();
        let cols = labels.cols();
        let mut top_ids = vec![0u32; n_cells * k1];
        let mut top_rss = vec![0.0f64; n_cells * k1];
        let mut top_len = vec![0u8; n_cells];
        let mut top_complete = vec![true; n_cells];
        for i in 0..n_cells {
            let center = labels.cell_center(i % cols, i / cols);
            let ranked = field.detectable_at(center, config.detection_threshold_dbm);
            for (j, &(ap, rss)) in ranked.iter().take(k1).enumerate() {
                top_ids[i * k1 + j] = ap.0;
                top_rss[i * k1 + j] = rss;
            }
            top_len[i] = ranked.len().min(k1) as u8;
            top_complete[i] = ranked.len() <= k1;
            let label = if ranked.is_empty() {
                NO_COVERAGE
            } else {
                let sig = signature_from_ranked(&ranked, config.order);
                intern_signature(&mut sig_lookup, &mut signatures, sig)
            };
            labels.values_mut()[i] = label;
        }

        let mut known_aps: Vec<u32> = field.aps().iter().map(|ap| ap.id().0).collect();
        known_aps.sort_unstable();
        known_aps.dedup();

        let derived = derive_state(&labels, &signatures, &config);
        SignalVoronoiDiagram {
            config,
            labels,
            signatures,
            sig_lookup,
            top_ids,
            top_rss,
            top_len,
            top_complete,
            known_aps,
            regions: derived.regions,
            tiles: derived.tiles,
            edges: derived.edges,
            by_signature: derived.by_signature,
        }
    }

    /// Absorbs AP churn incrementally: brings the diagram to the state a
    /// fresh [`SignalVoronoiDiagram::build`] over `field` would produce,
    /// touching the signal field only where the persisted per-cell rank
    /// lists cannot answer the question locally.
    ///
    /// `field` is the *post-churn* field; `changed` lists the APs that
    /// died, appeared, or changed parameters since the diagram was last
    /// (re)built. An AP present in `field` but absent from the diagram's
    /// census is a birth; absent from `field` but known is a death;
    /// present in both is treated as modified (handled conservatively by
    /// re-evaluating the cells it could influence). Ids in `changed` that
    /// are neither known nor in the field are ignored.
    ///
    /// Returns the number of raster cells whose stored rank state was
    /// updated. The patched diagram is byte-identical (per
    /// [`SignalVoronoiDiagram::encode`]) to a fresh rebuild over `field`.
    pub fn apply_churn<F: SignalField + ?Sized>(&mut self, field: &F, changed: &[ApId]) -> usize {
        let k = self.config.order;
        let k1 = k + 1;
        let threshold = self.config.detection_threshold_dbm;

        let mut deaths: Vec<u32> = Vec::new();
        let mut births: Vec<&AccessPoint> = Vec::new();
        let mut modified: Vec<&AccessPoint> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        for &id in changed {
            if seen.contains(&id.0) {
                continue;
            }
            seen.push(id.0);
            let known = self.known_aps.binary_search(&id.0).is_ok();
            match (field.ap(id), known) {
                (None, true) => deaths.push(id.0),
                (Some(ap), false) => births.push(ap),
                (Some(ap), true) => modified.push(ap),
                (None, false) => {}
            }
        }
        deaths.sort_unstable();
        if deaths.is_empty() && births.is_empty() && modified.is_empty() {
            return 0;
        }

        let cols = self.labels.cols();
        let n_cells = self.labels.len();
        let mut touched = 0usize;
        for i in 0..n_cells {
            let center = self.labels.cell_center(i % cols, i / cols);
            let base = i * k1;
            let mut len = self.top_len[i] as usize;
            let mut complete = self.top_complete[i];
            let mut dirty = false;
            let mut need_eval = false;

            // 1. Deaths: pure list surgery. The stored list is the true
            // top-`len` prefix, so removing dead entries leaves the true
            // prefix of the survivors — unless so many stored ranks died
            // that the signature would need ranks we never stored.
            if !deaths.is_empty() {
                let mut w = 0usize;
                for r in 0..len {
                    let id = self.top_ids[base + r];
                    if deaths.binary_search(&id).is_ok() {
                        dirty = true;
                    } else {
                        if w != r {
                            self.top_ids[base + w] = id;
                            self.top_rss[base + w] = self.top_rss[base + r];
                        }
                        w += 1;
                    }
                }
                if w != len {
                    len = w;
                    if !complete && len < k {
                        need_eval = true;
                    }
                }
            }

            // 2. Modified APs: re-evaluate whenever the change could reach
            // the stored prefix — the AP is stored, or its new RSS climbs
            // to the stored horizon (or to detectability on a complete
            // list). Otherwise the prefix is provably unaffected.
            if !need_eval {
                for &ap in &modified {
                    if (0..len).any(|r| self.top_ids[base + r] == ap.id().0) {
                        need_eval = true;
                        break;
                    }
                    let rss = field.expected_rss(ap, center);
                    let horizon = if len == 0 {
                        f64::NEG_INFINITY
                    } else {
                        self.top_rss[base + len - 1]
                    };
                    let enters = if complete {
                        rss >= threshold
                    } else {
                        rss >= horizon
                    };
                    if enters {
                        need_eval = true;
                        break;
                    }
                }
            }

            // 3. Births: insert by expected RSS. An exact RSS tie with a
            // stored rank would make the order depend on field iteration
            // order, so ties re-evaluate instead of guessing.
            if !need_eval {
                for &ap in &births {
                    let rss = field.expected_rss(ap, center);
                    if rss < threshold {
                        continue;
                    }
                    if (0..len).any(|r| self.top_rss[base + r] == rss) {
                        need_eval = true;
                        break;
                    }
                    let pos = (0..len)
                        .position(|r| self.top_rss[base + r] < rss)
                        .unwrap_or(len);
                    if pos >= k1 {
                        // Weaker than every storable rank.
                        if complete {
                            complete = false;
                            dirty = true;
                        }
                        continue;
                    }
                    if pos == len && !complete {
                        // Below the stored horizon: its rank against the
                        // unstored tail is unknown, but the stored prefix
                        // stays exact without it.
                        continue;
                    }
                    let dropped = len == k1;
                    let new_len = (len + 1).min(k1);
                    let mut r = new_len;
                    while r > pos + 1 {
                        self.top_ids[base + r - 1] = self.top_ids[base + r - 2];
                        self.top_rss[base + r - 1] = self.top_rss[base + r - 2];
                        r -= 1;
                    }
                    self.top_ids[base + pos] = ap.id().0;
                    self.top_rss[base + pos] = rss;
                    len = new_len;
                    if dropped {
                        complete = false;
                    }
                    dirty = true;
                }
            }

            // 4. Fallback: full field evaluation at this cell.
            if need_eval {
                let ranked = field.detectable_at(center, threshold);
                for (j, &(ap, rss)) in ranked.iter().take(k1).enumerate() {
                    self.top_ids[base + j] = ap.0;
                    self.top_rss[base + j] = rss;
                }
                len = ranked.len().min(k1);
                complete = ranked.len() <= k1;
                dirty = true;
            }

            if dirty {
                self.top_len[i] = len as u8;
                self.top_complete[i] = complete;
                let label = if len == 0 {
                    NO_COVERAGE
                } else {
                    let sig: TileSignature = (0..len.min(k))
                        .map(|r| ApId(self.top_ids[base + r]))
                        .collect();
                    intern_signature(&mut self.sig_lookup, &mut self.signatures, sig)
                };
                self.labels.values_mut()[i] = label;
                touched += 1;
            }
        }

        self.known_aps = field.aps().iter().map(|ap| ap.id().0).collect();
        self.known_aps.sort_unstable();
        self.known_aps.dedup();

        if touched > 0 {
            let derived = derive_state(&self.labels, &self.signatures, &self.config);
            self.regions = derived.regions;
            self.tiles = derived.tiles;
            self.edges = derived.edges;
            self.by_signature = derived.by_signature;
        }
        touched
    }

    /// Deterministic byte serialisation of the diagram's *derived* state:
    /// configuration, region raster, tiles (with exact centroid/area bits)
    /// and tile adjacency. Two diagrams that partition the domain
    /// identically encode identically regardless of construction history —
    /// the contract the incremental-maintenance tests pin down.
    pub fn encode(&self) -> Vec<u8> {
        fn push_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn push_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn push_f64(out: &mut Vec<u8>, v: f64) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }

        let mut out = Vec::with_capacity(self.regions.len() * 4 + self.tiles.len() * 64);
        push_f64(&mut out, self.config.resolution_m);
        push_u64(&mut out, self.config.order as u64);
        push_f64(&mut out, self.config.detection_threshold_dbm);
        push_u64(&mut out, self.regions.cols() as u64);
        push_u64(&mut out, self.regions.rows() as u64);
        for &r in self.regions.values() {
            push_u32(&mut out, r);
        }
        push_u64(&mut out, self.tiles.len() as u64);
        for t in &self.tiles {
            push_u32(&mut out, t.id.0);
            push_u64(&mut out, t.signature.order() as u64);
            for &ap in t.signature.aps() {
                push_u32(&mut out, ap.0);
            }
            push_f64(&mut out, t.centroid.x);
            push_f64(&mut out, t.centroid.y);
            push_f64(&mut out, t.area_m2);
            push_u64(&mut out, t.cell_count as u64);
        }
        push_u64(&mut out, self.edges.len() as u64);
        for &(a, b, len) in &self.edges {
            push_u32(&mut out, a);
            push_u32(&mut out, b);
            push_f64(&mut out, len);
        }
        out
    }

    /// The construction configuration.
    pub fn config(&self) -> &SvdConfig {
        &self.config
    }

    /// The rasterised domain.
    pub fn bbox(&self) -> BoundingBox {
        self.regions.bbox()
    }

    /// All tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Tile lookup by id.
    pub fn tile(&self, id: TileId) -> Option<&Tile> {
        self.tiles.get(id.0 as usize)
    }

    /// The tile containing `p`, if covered.
    pub fn tile_at(&self, p: Point) -> Option<&Tile> {
        let &region = self.regions.at(p)?;
        if region == NO_COVERAGE {
            None
        } else {
            self.tile(TileId(region))
        }
    }

    /// Tiles carrying exactly the given signature.
    pub fn tiles_with_signature(&self, sig: &TileSignature) -> &[TileId] {
        match self.by_signature.binary_search_by(|g| g.0.cmp(sig)) {
            Ok(i) => self
                .by_signature
                .get(i)
                .map(|g| g.1.as_slice())
                .unwrap_or(&[]),
            Err(_) => &[],
        }
    }

    /// The tile(s) of the known signature nearest (by rank distance) to an
    /// observed signature. Exact matches come back at distance 0.
    /// Signatures are scanned in sorted order with a signature tie-break on
    /// equal distances — the fallback is reproducible across processes.
    pub fn nearest_signature(&self, sig: &TileSignature) -> Option<(&TileSignature, f64)> {
        self.by_signature
            .iter()
            .map(|g| (&g.0, g.0.rank_distance(sig)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
    }

    /// Neighbouring tiles of `id` with the shared boundary length, metres.
    pub fn neighbors(&self, id: TileId) -> Vec<(TileId, f64)> {
        let mut out = Vec::new();
        for &(a, b, len) in &self.edges {
            if a == id.0 {
                out.push((TileId(b), len));
            } else if b == id.0 {
                out.push((TileId(a), len));
            }
        }
        out.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// The neighbour of `id` with the longest shared tile boundary among
    /// those accepted by `filter` — the paper's fallback mapping for tiles
    /// that do not intersect the road.
    pub fn longest_boundary_neighbor(
        &self,
        id: TileId,
        mut filter: impl FnMut(TileId) -> bool,
    ) -> Option<TileId> {
        self.neighbors(id)
            .into_iter()
            // lint: allow(hot_path_effects) — caller-supplied predicate (⊤): mapping passes pure tile tests, no effects to inherit
            .find(|&(t, _)| filter(t))
            .map(|(t, _)| t)
    }

    /// First-order Signal Cells: tiles grouped by site.
    pub fn cells(&self) -> Vec<SignalCell> {
        let mut by_site: HashMap<ApId, SignalCell> = HashMap::new();
        for t in &self.tiles {
            let Some(site) = t.signature.site() else {
                continue;
            };
            let entry = by_site.entry(site).or_insert(SignalCell {
                site,
                area_m2: 0.0,
                centroid: Point::ORIGIN,
                tiles: Vec::new(),
            });
            // Accumulate area-weighted centroid.
            entry.centroid = Point::new(
                entry.centroid.x + t.centroid.x * t.area_m2,
                entry.centroid.y + t.centroid.y * t.area_m2,
            );
            entry.area_m2 += t.area_m2;
            entry.tiles.push(t.id);
        }
        let mut cells: Vec<SignalCell> = by_site
            .into_values()
            .map(|mut c| {
                c.centroid = Point::new(c.centroid.x / c.area_m2, c.centroid.y / c.area_m2);
                c
            })
            .collect();
        cells.sort_by_key(|c| c.site);
        cells
    }

    /// Joint points: raster corners where ≥ 3 tiles meet. Corners where the
    /// meeting tiles span ≥ 3 distinct *sites* are SVE junctions; corners
    /// where ≥ 3 tiles share a site are bisector joints.
    pub fn joints(&self) -> Vec<Joint> {
        let mut out = Vec::new();
        let g = &self.regions;
        for row in 0..g.rows().saturating_sub(1) {
            for col in 0..g.cols().saturating_sub(1) {
                let (Some(&q00), Some(&q10), Some(&q01), Some(&q11)) = (
                    g.get(col, row),
                    g.get(col + 1, row),
                    g.get(col, row + 1),
                    g.get(col + 1, row + 1),
                ) else {
                    // Unreachable for in-range corners; skipping beats
                    // panicking if the raster ever shrinks.
                    continue;
                };
                let quad = [q00, q10, q01, q11];
                if quad.contains(&NO_COVERAGE) {
                    continue;
                }
                let mut regions: Vec<u32> = quad.to_vec();
                regions.sort_unstable();
                regions.dedup();
                if regions.len() < 3 {
                    continue;
                }
                let mut sites: Vec<ApId> = regions
                    .iter()
                    .filter_map(|&r| self.tiles.get(r as usize).and_then(|t| t.signature.site()))
                    .collect();
                sites.sort_unstable();
                sites.dedup();
                let center = g.cell_center(col, row);
                let corner = center.offset(
                    self.config.resolution_m / 2.0,
                    self.config.resolution_m / 2.0,
                );
                out.push(Joint {
                    point: corner,
                    is_cell_junction: sites.len() >= 3,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_rf::{AccessPoint, HomogeneousField};

    fn three_ap_field() -> HomogeneousField {
        HomogeneousField::new(vec![
            AccessPoint::new(ApId(0), Point::new(50.0, 50.0)),
            AccessPoint::new(ApId(1), Point::new(150.0, 50.0)),
            AccessPoint::new(ApId(2), Point::new(100.0, 150.0)),
        ])
    }

    fn bbox() -> BoundingBox {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0))
    }

    #[test]
    fn homogeneous_svd_matches_euclidean_voronoi() {
        // With equal parameters the SVD degenerates to the Voronoi diagram
        // (the paper: "only in the ideal case … will the SVD be the same as
        // the VD").
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let aps = [
            Point::new(50.0, 50.0),
            Point::new(150.0, 50.0),
            Point::new(100.0, 150.0),
        ];
        for (x, y) in [(20.0, 30.0), (160.0, 40.0), (100.0, 170.0), (60.0, 90.0)] {
            let p = Point::new(x, y);
            let nearest = (0..3)
                .min_by(|&a, &b| p.distance(aps[a]).partial_cmp(&p.distance(aps[b])).unwrap())
                .unwrap();
            let tile = svd.tile_at(p).expect("covered");
            assert_eq!(
                tile.signature().site(),
                Some(ApId(nearest as u32)),
                "at {p}"
            );
        }
    }

    #[test]
    fn order_two_refines_cells() {
        let field = three_ap_field();
        let one = SignalVoronoiDiagram::build(
            &field,
            bbox(),
            SvdConfig {
                order: 1,
                ..SvdConfig::default()
            },
        );
        let two = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        assert!(two.tiles().len() > one.tiles().len());
        // Proposition: each order-1 signature is a prefix of the order-2
        // signature at the same point.
        for (x, y) in [(20.0, 30.0), (120.0, 80.0), (100.0, 170.0)] {
            let p = Point::new(x, y);
            let s1 = one.tile_at(p).unwrap().signature().clone();
            let s2 = two.tile_at(p).unwrap().signature().clone();
            assert!(s1.is_prefix_of(&s2), "at {p}: {s1} vs {s2}");
        }
    }

    #[test]
    fn signature_at_ap_position_is_dominated_by_that_ap() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let t = svd.tile_at(Point::new(50.0, 50.0)).unwrap();
        assert_eq!(t.signature().site(), Some(ApId(0)));
    }

    #[test]
    fn areas_sum_to_covered_domain() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let total: f64 = svd.tiles().iter().map(|t| t.area_m2()).sum();
        // Domain is 200×200 = 40 000 m²; APs at 20 dBm under the urban model
        // cover ~200 m, so most of the box is covered.
        assert!(total > 30_000.0, "covered {total}");
        assert!(total <= 40_000.0 + 1.0);
    }

    #[test]
    fn adjacency_is_symmetric_and_positive() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        for t in svd.tiles() {
            for (n, len) in svd.neighbors(t.id()) {
                assert!(len > 0.0);
                let back = svd.neighbors(n);
                assert!(
                    back.iter().any(|&(b, l)| b == t.id() && l == len),
                    "asymmetric adjacency"
                );
            }
        }
    }

    #[test]
    fn longest_boundary_neighbor_respects_filter() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let some_tile = svd.tiles()[0].id();
        let neighbors = svd.neighbors(some_tile);
        if neighbors.len() >= 2 {
            let banned = neighbors[0].0;
            let chosen = svd
                .longest_boundary_neighbor(some_tile, |t| t != banned)
                .unwrap();
            assert_eq!(chosen, neighbors[1].0);
        }
    }

    #[test]
    fn cells_partition_tiles() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let cells = svd.cells();
        assert_eq!(cells.len(), 3);
        let tile_total: usize = cells.iter().map(|c| c.tiles.len()).sum();
        assert_eq!(tile_total, svd.tiles().len());
        // Each cell's centroid should be pulled toward its site.
        for c in &cells {
            let site_pos = field.aps()[c.site.0 as usize].position();
            assert!(c.centroid.distance(site_pos) < 100.0);
        }
    }

    #[test]
    fn joints_exist_where_three_cells_meet() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let joints = svd.joints();
        let junctions: Vec<_> = joints.iter().filter(|j| j.is_cell_junction).collect();
        assert!(!junctions.is_empty());
        // For equal-parameter APs the SVE junction is the circumcentre of
        // the three AP positions: (100, 87.5) for this triangle.
        let expected = Point::new(100.0, 87.5);
        let nearest = junctions
            .iter()
            .map(|j| j.point.distance(expected))
            .fold(f64::INFINITY, f64::min);
        assert!(nearest < 10.0, "nearest junction {nearest} m away");
    }

    #[test]
    fn nearest_signature_exact_match_is_zero() {
        let field = three_ap_field();
        let svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let sig = svd.tiles()[0].signature().clone();
        let (found, d) = svd.nearest_signature(&sig).unwrap();
        assert_eq!(found, &sig);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn uncovered_point_has_no_tile() {
        let field = HomogeneousField::new(vec![AccessPoint::new(ApId(0), Point::new(10.0, 10.0))]);
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(2_000.0, 100.0));
        let svd = SignalVoronoiDiagram::build(
            &field,
            bb,
            SvdConfig {
                resolution_m: 10.0,
                ..SvdConfig::default()
            },
        );
        assert!(svd.tile_at(Point::new(1_900.0, 50.0)).is_none());
        assert!(svd.tile_at(Point::new(10.0, 10.0)).is_some());
    }

    #[test]
    fn ap_churn_locally_deforms_diagram() {
        // Removing AP1 must not change the signature near AP0's site but
        // must re-label AP1's former cell (the paper's AP-dynamics claim).
        let field = three_ap_field();
        let svd_full = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let field_dead = field.without_aps(&[ApId(1)]);
        let svd_dead = SignalVoronoiDiagram::build(&field_dead, bbox(), SvdConfig::default());
        let near_ap0 = Point::new(40.0, 45.0);
        assert_eq!(
            svd_full.tile_at(near_ap0).unwrap().signature().site(),
            svd_dead.tile_at(near_ap0).unwrap().signature().site(),
        );
        let near_ap1 = Point::new(150.0, 50.0);
        assert_eq!(
            svd_dead.tile_at(near_ap1).unwrap().signature().site(),
            Some(ApId(0)), // AP0 is nearer than AP2 to (150, 50)
        );
    }

    #[test]
    fn encode_is_deterministic() {
        let field = three_ap_field();
        let a = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let b = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        assert_eq!(a.encode(), b.encode());
        assert!(!a.encode().is_empty());
    }

    #[test]
    fn incremental_death_matches_rebuild() {
        let field = three_ap_field();
        let mut svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let dead_field = field.without_aps(&[ApId(1)]);
        let touched = svd.apply_churn(&dead_field, &[ApId(1)]);
        assert!(touched > 0);
        let fresh = SignalVoronoiDiagram::build(&dead_field, bbox(), SvdConfig::default());
        assert_eq!(svd.encode(), fresh.encode());
    }

    #[test]
    fn incremental_birth_matches_rebuild() {
        let full = three_ap_field();
        let partial = full.without_aps(&[ApId(2)]);
        let mut svd = SignalVoronoiDiagram::build(&partial, bbox(), SvdConfig::default());
        let touched = svd.apply_churn(&full, &[ApId(2)]);
        assert!(touched > 0);
        let fresh = SignalVoronoiDiagram::build(&full, bbox(), SvdConfig::default());
        assert_eq!(svd.encode(), fresh.encode());
    }

    #[test]
    fn churn_with_irrelevant_ap_is_noop() {
        let field = three_ap_field();
        let mut svd = SignalVoronoiDiagram::build(&field, bbox(), SvdConfig::default());
        let before = svd.encode();
        assert_eq!(svd.apply_churn(&field, &[ApId(77)]), 0);
        assert_eq!(svd.encode(), before);
    }

    #[test]
    fn sequential_churn_stays_exact() {
        // Death then rebirth through the incremental path must land back on
        // the original diagram, and a second death of a different AP must
        // still match a fresh rebuild — the stored rank lists stay usable
        // across patches.
        let full = three_ap_field();
        let mut svd = SignalVoronoiDiagram::build(&full, bbox(), SvdConfig::default());
        let no1 = full.without_aps(&[ApId(1)]);
        svd.apply_churn(&no1, &[ApId(1)]);
        svd.apply_churn(&full, &[ApId(1)]);
        assert_eq!(
            svd.encode(),
            SignalVoronoiDiagram::build(&full, bbox(), SvdConfig::default()).encode()
        );
        let no02 = full.without_aps(&[ApId(0), ApId(2)]);
        svd.apply_churn(&no02, &[ApId(0), ApId(2)]);
        assert_eq!(
            svd.encode(),
            SignalVoronoiDiagram::build(&no02, bbox(), SvdConfig::default()).encode()
        );
    }
}

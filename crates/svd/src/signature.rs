//! Tile signatures: the RSS rank lists that name Signal Tiles.
//!
//! Proposition 1 of the paper: within a Signal Tile
//! `ST(p_i, p_{n'_1}, …, p_{n'_k})` the RSS values are ordered
//! `RSS(x, p_i) ≥ RSS(x, p_{n'_1}) ≥ …`. A tile is therefore *named* by the
//! ordered list of its strongest APs — the [`TileSignature`]. A `k`-order
//! signature lists the top `k` APs; order 1 names a Signal Cell, order 2 the
//! second-order tiles the paper finds sufficient in practice ("a
//! second-order SVD is enough for a high accuracy", footnote 4).

use wilocator_rf::ApId;

use crate::interner::ApInterner;

/// An ordered list of AP ids, strongest first, naming a Signal Tile.
///
/// # Examples
///
/// ```
/// use wilocator_rf::ApId;
/// use wilocator_svd::TileSignature;
///
/// // The paper's Fig. 2 example: rank list (b, a, d).
/// let sig = TileSignature::new(vec![ApId(1), ApId(0), ApId(3)]);
/// assert_eq!(sig.order(), 3);
/// assert_eq!(sig.site(), Some(ApId(1)));
/// assert_eq!(sig.truncated(2), TileSignature::new(vec![ApId(1), ApId(0)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileSignature(Vec<ApId>);

impl TileSignature {
    /// Creates a signature from an ordered AP list (strongest first).
    pub fn new(aps: Vec<ApId>) -> Self {
        TileSignature(aps)
    }

    /// The empty signature: no AP detectable (outside all coverage).
    pub fn empty() -> Self {
        TileSignature(Vec::new())
    }

    /// The ordered AP ids, strongest first.
    pub fn aps(&self) -> &[ApId] {
        &self.0
    }

    /// Number of ranks in the signature.
    pub fn order(&self) -> usize {
        self.0.len()
    }

    /// True when no AP is detectable.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The dominating AP — the *site* (generator) of the enclosing Signal
    /// Cell — or `None` for the empty signature.
    pub fn site(&self) -> Option<ApId> {
        self.0.first().copied()
    }

    /// The signature truncated to at most `k` ranks.
    pub fn truncated(&self, k: usize) -> TileSignature {
        TileSignature(self.0.iter().take(k).copied().collect())
    }

    /// True when `other` refines `self` (same leading ranks).
    pub fn is_prefix_of(&self, other: &TileSignature) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Signature with the given APs removed and remaining ranks closed up —
    /// what the observed rank list becomes after AP churn (the paper's
    /// "AP b is out of function" scenario).
    pub fn without_aps(&self, dead: &[ApId]) -> TileSignature {
        TileSignature(
            self.0
                .iter()
                .copied()
                .filter(|ap| !dead.contains(ap))
                .collect(),
        )
    }

    /// The signature as dense interner codes, or `None` when any AP is
    /// unknown to the interner (an unknown AP cannot name a stored tile,
    /// so callers treat `None` as a guaranteed lookup miss).
    pub fn intern_with(&self, interner: &ApInterner) -> Option<Vec<u16>> {
        self.0.iter().map(|&ap| interner.code(ap)).collect()
    }

    /// Rebuilds a signature from dense interner codes; `None` when any
    /// code is a sentinel the interner does not know.
    pub fn from_codes(codes: &[u16], interner: &ApInterner) -> Option<TileSignature> {
        codes
            .iter()
            .map(|&c| interner.resolve(c))
            .collect::<Option<Vec<ApId>>>()
            .map(TileSignature)
    }

    /// Rank dissimilarity to `other`: a Spearman-footrule-style distance.
    ///
    /// APs present in both lists contribute the absolute difference of their
    /// ranks; APs present in only one list contribute a miss penalty equal
    /// to the longer list's length. Lower is more similar; 0 iff equal.
    /// Used to map an unseen (noise-corrupted) rank list to the nearest
    /// known tile.
    pub fn rank_distance(&self, other: &TileSignature) -> f64 {
        let n = self.0.len().max(other.0.len());
        if n == 0 {
            return 0.0;
        }
        let miss = n as f64;
        let mut d = 0.0;
        for (i, ap) in self.0.iter().enumerate() {
            match other.0.iter().position(|b| b == ap) {
                Some(j) => d += (i as f64 - j as f64).abs(),
                None => d += miss,
            }
        }
        for ap in &other.0 {
            if !self.0.contains(ap) {
                d += miss;
            }
        }
        d
    }
}

impl std::fmt::Display for TileSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, ap) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ap}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<ApId> for TileSignature {
    fn from_iter<I: IntoIterator<Item = ApId>>(iter: I) -> Self {
        TileSignature(iter.into_iter().collect())
    }
}

/// Builds the `k`-order signature from a ranked `(ApId, rss)` list
/// (strongest first), as produced by `Scan::ranked` or a mean field.
pub fn signature_from_ranked<T: Copy>(ranked: &[(ApId, T)], order: usize) -> TileSignature {
    ranked.iter().take(order).map(|&(ap, _)| ap).collect()
}

/// [`TileSignature::rank_distance`] on interned code slices.
///
/// Must mirror `rank_distance` term for term: every summand is a small
/// non-negative integer cast to `f64`, so the sum is exact and the two
/// implementations agree bit for bit whenever the code mapping is a
/// bijection on the APs involved (which the interner guarantees, with
/// sentinel codes standing in for unknown APs).
pub fn rank_distance_codes(a: &[u16], b: &[u16]) -> f64 {
    let n = a.len().max(b.len());
    if n == 0 {
        return 0.0;
    }
    let miss = n as f64;
    let mut d = 0.0;
    for (i, ca) in a.iter().enumerate() {
        match b.iter().position(|cb| cb == ca) {
            Some(j) => d += (i as f64 - j as f64).abs(),
            None => d += miss,
        }
    }
    for cb in b {
        if !a.contains(cb) {
            d += miss;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(ids: &[u32]) -> TileSignature {
        ids.iter().map(|&i| ApId(i)).collect()
    }

    #[test]
    fn basic_accessors() {
        let s = sig(&[1, 0, 3]);
        assert_eq!(s.order(), 3);
        assert_eq!(s.site(), Some(ApId(1)));
        assert!(!s.is_empty());
        assert!(TileSignature::empty().is_empty());
        assert_eq!(TileSignature::empty().site(), None);
    }

    #[test]
    fn truncation() {
        let s = sig(&[1, 0, 3, 7]);
        assert_eq!(s.truncated(2), sig(&[1, 0]));
        assert_eq!(s.truncated(10), s);
        assert_eq!(s.truncated(0), TileSignature::empty());
    }

    #[test]
    fn prefix_relation() {
        assert!(sig(&[1, 0]).is_prefix_of(&sig(&[1, 0, 3])));
        assert!(!sig(&[0, 1]).is_prefix_of(&sig(&[1, 0, 3])));
        assert!(TileSignature::empty().is_prefix_of(&sig(&[4])));
    }

    #[test]
    fn ap_removal_closes_ranks() {
        let s = sig(&[1, 0, 3, 7]);
        assert_eq!(s.without_aps(&[ApId(0)]), sig(&[1, 3, 7]));
        assert_eq!(s.without_aps(&[ApId(1), ApId(7)]), sig(&[0, 3]));
    }

    #[test]
    fn rank_distance_zero_iff_equal() {
        let a = sig(&[1, 2, 3]);
        assert_eq!(a.rank_distance(&a), 0.0);
        assert!(a.rank_distance(&sig(&[1, 3, 2])) > 0.0);
    }

    #[test]
    fn rank_distance_symmetric() {
        let a = sig(&[1, 2, 3]);
        let b = sig(&[3, 1, 5]);
        assert_eq!(a.rank_distance(&b), b.rank_distance(&a));
    }

    #[test]
    fn adjacent_swap_is_closest_perturbation() {
        let a = sig(&[1, 2, 3, 4]);
        let swap_near = sig(&[2, 1, 3, 4]);
        let swap_far = sig(&[4, 2, 3, 1]);
        let alien = sig(&[7, 8, 9, 10]);
        assert!(a.rank_distance(&swap_near) < a.rank_distance(&swap_far));
        assert!(a.rank_distance(&swap_far) < a.rank_distance(&alien));
    }

    #[test]
    fn missing_ap_penalised_more_than_reorder() {
        let a = sig(&[1, 2, 3]);
        let reordered = sig(&[1, 3, 2]);
        let missing = sig(&[1, 2]);
        assert!(a.rank_distance(&reordered) < a.rank_distance(&missing));
    }

    #[test]
    fn display_is_paper_notation() {
        assert_eq!(sig(&[1, 0]).to_string(), "(AP1, AP0)");
        assert_eq!(TileSignature::empty().to_string(), "()");
    }

    #[test]
    fn interned_codes_round_trip_and_preserve_distance() {
        let interner = ApInterner::try_from_ids(vec![1, 2, 3, 5, 8]).unwrap();
        let a = sig(&[1, 2, 3]);
        let b = sig(&[3, 1, 5]);
        let ca = a.intern_with(&interner).unwrap();
        let cb = b.intern_with(&interner).unwrap();
        assert_eq!(TileSignature::from_codes(&ca, &interner).unwrap(), a);
        assert_eq!(rank_distance_codes(&ca, &cb), a.rank_distance(&b));
        // Unknown AP → no interned form.
        assert!(sig(&[1, 99]).intern_with(&interner).is_none());
        // Code order equals signature order.
        assert_eq!(ca.cmp(&cb), a.cmp(&b));
    }

    #[test]
    fn from_ranked_builds_signature() {
        let ranked = vec![(ApId(5), -40), (ApId(2), -55), (ApId(9), -70)];
        assert_eq!(signature_from_ranked(&ranked, 2), sig(&[5, 2]));
        assert_eq!(signature_from_ranked(&ranked, 9), sig(&[5, 2, 9]));
    }
}

//! Tile Mapping (Definition 5): planar tiles → road sub-segments.
//!
//! This is the paper-faithful positioning path over the *planar* diagram:
//! find the Signal Tile named by the observed rank list, intersect it with
//! the route, and return the point of the intersection nearest to the
//! tile's centroid. Tiles that miss the road (the paper's `ST(b, e)`
//! example in Fig. 2) are mapped through the neighbouring tile with the
//! longest shared tile boundary that does intersect the road.
//!
//! The route-constrained index ([`crate::RouteTileIndex`]) is the fast
//! production path; this module exists for fidelity, for the campus
//! experiment (Fig. 10), and as the reference the fast path is tested
//! against.

use std::sync::Arc;

use wilocator_geo::Point;
use wilocator_obs::TraceCtx;
use wilocator_rf::ApId;
use wilocator_road::Route;

use crate::diagram::{SignalVoronoiDiagram, TileId};
use crate::metrics::TileMapperMetrics;
use crate::signature::signature_from_ranked;

/// A tile mapped onto the route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedPosition {
    /// Arc length along the route, metres.
    pub s: f64,
    /// Planar position on the route.
    pub point: Point,
    /// True when the tile itself missed the road and the longest-boundary
    /// neighbour rule was applied.
    pub via_neighbor: bool,
}

/// Maps Signal Tiles of a planar diagram onto a route.
///
/// The route ∩ tile intervals live in a sorted structure-of-arrays slab:
/// `tile_ids` holds the intersecting tiles in ascending order and
/// `span_off[i]..span_off[i+1]` indexes that tile's arc-length spans in
/// `spans` (route order within a tile). Lookups are a branch-predictable
/// binary search over a dense `u32` array instead of a hash probe.
#[derive(Debug, Clone)]
pub struct TileMapper {
    route: Route,
    /// Tiles intersecting the route, ascending.
    tile_ids: Vec<u32>,
    /// `spans` offsets per tile; `len == tile_ids.len() + 1`.
    span_off: Vec<u32>,
    /// Route arc-length intervals, grouped by tile.
    spans: Vec<(f64, f64)>,
    /// Shared resolution-path accounting for `locate` calls.
    metrics: Option<Arc<TileMapperMetrics>>,
}

impl TileMapper {
    /// Precomputes the route ∩ tile intervals by sampling the route every
    /// `sample_step_m` metres.
    ///
    /// # Panics
    ///
    /// Panics if `sample_step_m` is not strictly positive.
    pub fn build(diagram: &SignalVoronoiDiagram, route: &Route, sample_step_m: f64) -> Self {
        assert!(sample_step_m > 0.0, "sample step must be positive");
        let mut runs: Vec<(u32, (f64, f64))> = Vec::new();
        let mut current: Option<(TileId, f64, f64)> = None;
        for (s, p) in route.geometry().sample(sample_step_m) {
            let tile = diagram.tile_at(p).map(|t| t.id());
            match (tile, &mut current) {
                (Some(t), Some((ct, _, end))) if t == *ct => *end = s,
                (Some(t), cur) => {
                    if let Some((ct, s0, s1)) = cur.take() {
                        runs.push((ct.0, (s0, s1)));
                    }
                    *cur = Some((t, s, s));
                }
                (None, cur) => {
                    if let Some((ct, s0, s1)) = cur.take() {
                        runs.push((ct.0, (s0, s1)));
                    }
                }
            }
        }
        if let Some((ct, s0, s1)) = current {
            runs.push((ct.0, (s0, s1)));
        }
        // Group the route-order runs by tile; the stable sort keeps spans
        // in route order within each tile.
        runs.sort_by_key(|&(tile, _)| tile);
        let mut tile_ids: Vec<u32> = Vec::new();
        let mut span_off: Vec<u32> = vec![0];
        let mut spans: Vec<(f64, f64)> = Vec::with_capacity(runs.len());
        for (tile, span) in runs {
            if tile_ids.last() != Some(&tile) {
                tile_ids.push(tile);
                span_off.push(spans.len() as u32);
            }
            spans.push(span);
            if let Some(end) = span_off.last_mut() {
                *end = spans.len() as u32;
            }
        }
        TileMapper {
            route: route.clone(),
            tile_ids,
            span_off,
            spans,
            metrics: None,
        }
    }

    /// The arc-length spans of `tile`, route-ordered, or `None` when the
    /// tile misses the route.
    fn spans_of(&self, tile: TileId) -> Option<&[(f64, f64)]> {
        let i = self.tile_ids.binary_search(&tile.0).ok()?;
        match (self.span_off.get(i), self.span_off.get(i + 1)) {
            (Some(&lo), Some(&hi)) => self.spans.get(lo as usize..hi as usize),
            _ => None,
        }
    }

    /// Attaches a metrics ledger; clones share it.
    pub fn with_metrics(mut self, metrics: Arc<TileMapperMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics ledger, if any.
    pub fn metrics(&self) -> Option<&Arc<TileMapperMetrics>> {
        self.metrics.as_ref()
    }

    /// The route being mapped onto.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// True when the tile intersects the route.
    pub fn intersects_route(&self, tile: TileId) -> bool {
        self.tile_ids.binary_search(&tile.0).is_ok()
    }

    /// Maps a tile to the route (Definition 5): the point of
    /// `route ∩ tile` nearest to the tile centroid, or — when the tile
    /// misses the road — the same through the longest-boundary neighbour
    /// that intersects the road.
    pub fn map_tile(&self, diagram: &SignalVoronoiDiagram, tile: TileId) -> Option<MappedPosition> {
        if let Some(pos) = self.map_direct(diagram, tile) {
            return Some(pos);
        }
        // Fallback: neighbour with the longest shared boundary that does
        // intersect the road (the paper's ST(b, e) → ST(b, d) example).
        let neighbor = diagram.longest_boundary_neighbor(tile, |t| self.intersects_route(t))?;
        // Project the *original* tile's centroid onto the neighbour's road
        // intervals (we map "to the nearest point on the road sub-segment
        // that intersects with the neighbouring ST").
        let centroid = diagram.tile(tile)?.centroid();
        self.nearest_on_intervals(neighbor, centroid).map(|mut m| {
            m.via_neighbor = true;
            m
        })
    }

    /// Locates a bus from a ranked RSS list via the planar diagram.
    ///
    /// Unseen signatures fall back to the nearest known signature by rank
    /// distance. Returns `None` when nothing matches at all.
    // lint: hot_path(deny: acquires_lock, blocks_or_syscalls, unbounded_iteration)
    pub fn locate(
        &self,
        diagram: &SignalVoronoiDiagram,
        ranked: &[(ApId, i32)],
    ) -> Option<MappedPosition> {
        self.locate_traced(diagram, ranked, None)
    }

    /// [`TileMapper::locate`] with an optional trace context: opens a
    /// `tile_map` child span annotated with the winning tile id and the
    /// resolution path, and flags a `tile_mapping_miss` anomaly when a
    /// non-empty scan resolves to nothing.
    pub fn locate_traced(
        &self,
        diagram: &SignalVoronoiDiagram,
        ranked: &[(ApId, i32)],
        trace: Option<&TraceCtx<'_>>,
    ) -> Option<MappedPosition> {
        if ranked.is_empty() {
            return None;
        }
        let span = trace.map(|t| t.child_span("tile_map"));
        let (pos, via_nearest, tile) = self.locate_inner(diagram, ranked);
        if let Some(sp) = &span {
            sp.field("nearest_signature", via_nearest);
            if let Some(tile) = tile {
                sp.field("tile", tile.0);
            }
            match &pos {
                Some(p) => {
                    sp.field("s", p.s);
                    sp.field("via_neighbor", p.via_neighbor);
                }
                None => sp.field("miss", true),
            }
        }
        if pos.is_none() {
            if let Some(t) = trace {
                t.flag_anomaly("tile_mapping_miss");
            }
        }
        if let Some(m) = &self.metrics {
            m.locate_total.inc();
            if via_nearest {
                m.nearest_signature_total.inc();
            }
            match &pos {
                Some(p) if p.via_neighbor => m.via_neighbor_total.inc(),
                Some(_) => m.direct_total.inc(),
                None => m.miss_total.inc(),
            }
        }
        pos
    }

    /// The resolution itself; the bool reports whether the
    /// nearest-signature fallback fired, the tile is the winning
    /// candidate (if any).
    fn locate_inner(
        &self,
        diagram: &SignalVoronoiDiagram,
        ranked: &[(ApId, i32)],
    ) -> (Option<MappedPosition>, bool, Option<TileId>) {
        let sig = signature_from_ranked(ranked, diagram.config().order);
        let tiles = diagram.tiles_with_signature(&sig);
        let mut via_nearest = false;
        let tiles: Vec<TileId> = if tiles.is_empty() {
            via_nearest = true;
            match diagram.nearest_signature(&sig) {
                Some((nearest, _)) => diagram.tiles_with_signature(&nearest.clone()).to_vec(),
                None => return (None, via_nearest, None),
            }
        } else {
            tiles.to_vec()
        };
        // Among candidate tiles prefer ones that intersect the road, then
        // larger ones (more probable).
        // Unknown tiles rank below every real one (areas are finite and
        // positive), and `total_cmp` keeps the comparison panic-free.
        let area = |t: TileId| {
            diagram
                .tile(t)
                .map(|x| x.area_m2())
                .unwrap_or(f64::NEG_INFINITY)
        };
        let best = tiles.iter().copied().max_by(|&a, &b| {
            let ia = self.intersects_route(a);
            let ib = self.intersects_route(b);
            ia.cmp(&ib).then(area(a).total_cmp(&area(b)))
        });
        match best {
            Some(best) => (self.map_tile(diagram, best), via_nearest, Some(best)),
            None => (None, via_nearest, None),
        }
    }

    fn map_direct(&self, diagram: &SignalVoronoiDiagram, tile: TileId) -> Option<MappedPosition> {
        let centroid = diagram.tile(tile)?.centroid();
        self.nearest_on_intervals(tile, centroid)
    }

    /// Nearest point to `target` on the route intervals of `tile`.
    fn nearest_on_intervals(&self, tile: TileId, target: Point) -> Option<MappedPosition> {
        let spans = self.spans_of(tile)?;
        let mut best: Option<(f64, f64)> = None; // (distance, s)
        for &(s0, s1) in spans {
            // Search the interval at a fine granularity; intervals are
            // short (tile-sized), so this is cheap and robust for curved
            // geometry.
            let steps = ((s1 - s0).max(1.0) / 1.0).ceil() as usize;
            for i in 0..=steps {
                let s = s0 + (s1 - s0) * i as f64 / steps as f64;
                let d = self.route.point_at(s).distance(target);
                if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                    best = Some((d, s));
                }
            }
        }
        best.map(|(_, s)| MappedPosition {
            s,
            point: self.route.point_at(s),
            via_neighbor: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::SvdConfig;
    use wilocator_geo::BoundingBox;
    use wilocator_rf::{AccessPoint, HomogeneousField, SignalField};
    use wilocator_road::{NetworkBuilder, RouteId};

    /// Fig. 2-like scene: a straight road with APs on both sides, one AP
    /// (`e`) far off the road so its tiles miss the route.
    fn scene() -> (Route, HomogeneousField, SignalVoronoiDiagram) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 100.0));
        let n1 = b.add_node(Point::new(400.0, 100.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "ei", vec![e], &b.build()).unwrap();
        let field = HomogeneousField::new(vec![
            AccessPoint::new(ApId(0), Point::new(60.0, 130.0)), // a
            AccessPoint::new(ApId(1), Point::new(200.0, 80.0)), // b
            AccessPoint::new(ApId(2), Point::new(340.0, 130.0)), // c
            AccessPoint::new(ApId(3), Point::new(200.0, 190.0)), // d (north)
            AccessPoint::new(ApId(4), Point::new(200.0, 0.0)),  // e (far south)
        ]);
        let bbox = BoundingBox::new(Point::new(0.0, -40.0), Point::new(400.0, 240.0));
        let svd = SignalVoronoiDiagram::build(&field, bbox, SvdConfig::default());
        (route, field, svd)
    }

    #[test]
    fn on_road_tile_maps_to_itself() {
        let (route, _field, svd) = scene();
        let mapper = TileMapper::build(&svd, &route, 2.0);
        let p = Point::new(100.0, 100.0);
        let tile = svd.tile_at(p).unwrap().id();
        let mapped = mapper.map_tile(&svd, tile).unwrap();
        assert!(!mapped.via_neighbor);
        // The mapped point stays within the tile's stretch of road.
        assert!(mapped.point.distance(p) < 120.0);
    }

    #[test]
    fn off_road_tile_maps_via_longest_boundary_neighbor() {
        let (route, _field, svd) = scene();
        let mapper = TileMapper::build(&svd, &route, 2.0);
        // A point deep south near AP e: its tile shouldn't touch the road.
        let p = Point::new(200.0, -20.0);
        let tile = svd.tile_at(p).unwrap().id();
        if !mapper.intersects_route(tile) {
            let mapped = mapper.map_tile(&svd, tile).expect("fallback mapping");
            assert!(mapped.via_neighbor);
            // Still lands on the road.
            assert!((mapped.point.y - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn locate_from_noiseless_scan_is_near_truth() {
        let (route, field, svd) = scene();
        let mapper = TileMapper::build(&svd, &route, 2.0);
        for s in [50.0, 150.0, 250.0, 350.0] {
            let p = route.point_at(s);
            let ranked: Vec<(ApId, i32)> = field
                .detectable_at(p, -90.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect();
            let mapped = mapper.locate(&svd, &ranked).expect("fix");
            assert!(
                (mapped.s - s).abs() < 80.0,
                "truth {s}, mapped {}",
                mapped.s
            );
        }
    }

    #[test]
    fn empty_scan_locates_nothing() {
        let (route, _field, svd) = scene();
        let mapper = TileMapper::build(&svd, &route, 2.0);
        assert!(mapper.locate(&svd, &[]).is_none());
    }

    #[test]
    fn locate_traced_annotates_tile_span() {
        use wilocator_obs::{FieldValue, SteppingClock, TraceConfig, Tracer};
        let (route, field, svd) = scene();
        let mapper = TileMapper::build(&svd, &route, 2.0);
        let tracer = Tracer::new(
            TraceConfig::default(),
            1,
            std::sync::Arc::new(SteppingClock::new(0, 1)),
        );
        {
            let ctx = tracer.start_root_span(0, "ingest").unwrap();
            let p = route.point_at(150.0);
            let ranked: Vec<(ApId, i32)> = field
                .detectable_at(p, -90.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect();
            mapper
                .locate_traced(&svd, &ranked, Some(&ctx))
                .expect("fix");
        }
        let traces = tracer.recent();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].anomaly, None);
        let span = traces[0]
            .spans
            .iter()
            .find(|sp| sp.name == "tile_map")
            .expect("tile_map span");
        assert!(matches!(span.field("tile"), Some(FieldValue::U64(_))));
        assert!(matches!(span.field("s"), Some(FieldValue::F64(_))));
    }

    #[test]
    fn unresolvable_scan_flags_tile_mapping_miss() {
        use wilocator_obs::{SteppingClock, TraceConfig, Tracer};
        let (_route, _field, svd) = scene();
        // A mapper over a disjoint stub route: every tile misses it.
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 10_000.0));
        let n1 = b.add_node(Point::new(10.0, 10_000.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let far = Route::new(RouteId(1), "far", vec![e], &b.build()).unwrap();
        let mapper = TileMapper::build(&svd, &far, 2.0);
        let tracer = Tracer::new(
            TraceConfig::default(),
            1,
            std::sync::Arc::new(SteppingClock::new(0, 1)),
        );
        {
            let ctx = tracer.start_root_span(0, "ingest").unwrap();
            let miss = mapper.locate_traced(&svd, &[(ApId(0), -40)], Some(&ctx));
            assert!(miss.is_none());
        }
        let retained = tracer.retained();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].anomaly, Some("tile_mapping_miss"));
    }

    #[test]
    fn mapped_points_are_on_the_route() {
        let (route, _field, svd) = scene();
        let mapper = TileMapper::build(&svd, &route, 2.0);
        for t in svd.tiles() {
            if let Some(m) = mapper.map_tile(&svd, t.id()) {
                let proj = route.geometry().project(m.point);
                assert!(proj.distance < 1e-6, "tile {} mapped off-road", t.id());
            }
        }
    }
}

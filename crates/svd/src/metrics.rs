//! Positioning observability: which path produced each fix.
//!
//! Positioning regressions are invisible in aggregate error figures until
//! an eval plot drifts; what moves first is the *mix of resolution paths*
//! — exact tile hits degrading into nearest-signature fallbacks, mobility
//! overrides firing on a miscalibrated field. These counters expose that
//! mix per route ([`PositioningMetrics`], shared by every clone of a
//! [`crate::RoutePositioner`]) and per planar mapper
//! ([`TileMapperMetrics`], Definition 5's direct / SVE-boundary /
//! longest-boundary-neighbour accounting).

use std::sync::Arc;

use wilocator_obs::{metric_key, Collect, Counter, MetricsSnapshot};

/// Counters of the route-constrained positioner
/// ([`crate::RoutePositioner`] / [`crate::TrackingFilter`]).
///
/// One instance is shared (via `Arc`) by every clone of a positioner, so
/// the per-bus trackers of a route all feed one ledger. Every `locate`
/// call resolves to exactly one of the four fix-method counters or to
/// `none_total`, so
/// `locate_total == exact + tie_boundary + nearest_signature + dead_reckoned + none`
/// holds at any quiescent point.
#[derive(Debug, Default)]
pub struct PositioningMetrics {
    /// `locate` calls.
    pub locate_total: Counter,
    /// Fixes from a direct signature → sub-segment hit.
    pub exact_total: Counter,
    /// Fixes on a merged tie boundary (equal ranks ⇒ SVE boundary point).
    pub tie_boundary_total: Counter,
    /// Fixes via the nearest known signature (rank-vector mismatch).
    pub nearest_signature_total: Counter,
    /// Fixes extrapolated inside the mobility window.
    pub dead_reckoned_total: Counter,
    /// `locate` calls that produced no fix (empty scan without prior).
    pub none_total: Counter,
    /// Scans whose candidates all contradicted the mobility window (the
    /// window won; the fix above is counted as dead-reckoned).
    pub mobility_override_total: Counter,
    /// Empty rank lists received.
    pub empty_scan_total: Counter,
    /// Widened re-acquisition attempts by the tracking filter.
    pub relock_attempt_total: Counter,
    /// Re-acquisitions that re-locked on an exact match.
    pub relock_success_total: Counter,
}

impl PositioningMetrics {
    /// A fresh, shareable ledger.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Sum of the non-exact resolution counters — the "fallback pressure"
    /// regression tests watch.
    pub fn fallback_total(&self) -> u64 {
        self.tie_boundary_total.get()
            + self.nearest_signature_total.get()
            + self.dead_reckoned_total.get()
    }
}

impl Collect for PositioningMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        let c = |name: &str, v: u64, out: &mut MetricsSnapshot| {
            out.add_counter(metric_key(name, labels), v);
        };
        c("svd_locate_total", self.locate_total.get(), out);
        c("svd_fix_exact_total", self.exact_total.get(), out);
        c(
            "svd_fix_tie_boundary_total",
            self.tie_boundary_total.get(),
            out,
        );
        c(
            "svd_fix_nearest_signature_total",
            self.nearest_signature_total.get(),
            out,
        );
        c(
            "svd_fix_dead_reckoned_total",
            self.dead_reckoned_total.get(),
            out,
        );
        c("svd_fix_none_total", self.none_total.get(), out);
        c(
            "svd_mobility_override_total",
            self.mobility_override_total.get(),
            out,
        );
        c("svd_empty_scan_total", self.empty_scan_total.get(), out);
        c(
            "svd_relock_attempt_total",
            self.relock_attempt_total.get(),
            out,
        );
        c(
            "svd_relock_success_total",
            self.relock_success_total.get(),
            out,
        );
    }
}

/// Counters of the planar Tile Mapping ([`crate::TileMapper`]).
///
/// Every successful `locate`/`map_tile` resolution is either *direct*
/// (the tile intersects the road) or *via the longest-boundary
/// neighbour*; failures are misses. The invariant
/// `locate_total == direct + via_neighbor + miss` is what the
/// tile-mapping property test asserts under random AP layouts.
#[derive(Debug, Default)]
pub struct TileMapperMetrics {
    /// `locate` calls with a non-empty rank list.
    pub locate_total: Counter,
    /// Resolutions where the named tile intersected the road.
    pub direct_total: Counter,
    /// Resolutions through the longest-shared-boundary neighbour.
    pub via_neighbor_total: Counter,
    /// Rank lists resolved through the nearest known signature.
    pub nearest_signature_total: Counter,
    /// Calls that could not be mapped at all.
    pub miss_total: Counter,
}

impl TileMapperMetrics {
    /// A fresh, shareable ledger.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl Collect for TileMapperMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        let c = |name: &str, v: u64, out: &mut MetricsSnapshot| {
            out.add_counter(metric_key(name, labels), v);
        };
        c("tile_map_locate_total", self.locate_total.get(), out);
        c("tile_map_direct_total", self.direct_total.get(), out);
        c(
            "tile_map_via_neighbor_total",
            self.via_neighbor_total.get(),
            out,
        );
        c(
            "tile_map_nearest_signature_total",
            self.nearest_signature_total.get(),
            out,
        );
        c("tile_map_miss_total", self.miss_total.get(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positioning_metrics_collect_under_labels() {
        let m = PositioningMetrics::default();
        m.locate_total.add(3);
        m.exact_total.add(2);
        m.dead_reckoned_total.inc();
        let mut snap = MetricsSnapshot::new();
        m.collect_into("route=\"9\"", &mut snap);
        assert_eq!(snap.counter("svd_locate_total{route=\"9\"}"), 3);
        assert_eq!(snap.counter("svd_fix_exact_total{route=\"9\"}"), 2);
        assert_eq!(m.fallback_total(), 1);
    }

    #[test]
    fn tile_mapper_metrics_collect() {
        let m = TileMapperMetrics::default();
        m.locate_total.add(2);
        m.direct_total.inc();
        m.via_neighbor_total.inc();
        let mut snap = MetricsSnapshot::new();
        m.collect_into("", &mut snap);
        assert_eq!(
            snap.counter("tile_map_direct_total") + snap.counter("tile_map_via_neighbor_total"),
            snap.counter("tile_map_locate_total")
        );
    }
}

//! Signal Voronoi Diagram construction and rank-based positioning —
//! the primary contribution of the WiLocator paper (Section III).
//!
//! The Signal Voronoi Diagram (SVD) partitions the RF signal space of a set
//! of WiFi access points into **Signal Cells** — regions dominated by one
//! AP — and recursively into **Signal Tiles**, regions where the *rank
//! order* of RSS from the surrounding APs is constant. Because ranks are
//! far more stable than raw RSS (which swings >10 dB even at a standstill),
//! a scanned rank list identifies the tile a device is in without any
//! fingerprint calibration or propagation-model fitting.
//!
//! The crate provides:
//!
//! * [`TileSignature`] — ordered AP lists naming tiles, with a rank
//!   distance for noisy-lookup fallback;
//! * [`SignalVoronoiDiagram`] — the rasterised planar diagram: tiles,
//!   cells, tile-boundary lengths, SVE joints;
//! * [`RouteTileIndex`] — the diagram restricted to a bus route
//!   (signature → road sub-segments), the production positioning path;
//! * [`RoutePositioner`] — rank list + mobility constraint → position fix,
//!   with tie handling, nearest-signature fallback and dead reckoning;
//! * [`TileMapper`] — the paper-faithful Tile Mapping (Definition 5) over
//!   the planar diagram, including the longest-tile-boundary fallback;
//! * [`average_ranks`] — multi-device rank averaging;
//! * [`PositioningMetrics`] / [`TileMapperMetrics`] — lock-free counters
//!   of which resolution path produced each fix.
//!
//! # Examples
//!
//! ```
//! use wilocator_geo::Point;
//! use wilocator_road::{NetworkBuilder, Route, RouteId};
//! use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
//! use wilocator_svd::{PositionerConfig, RoutePositioner, RouteTileIndex, SvdConfig};
//!
//! // A 300 m street with two kerbside APs.
//! let mut b = NetworkBuilder::new();
//! let n0 = b.add_node(Point::new(0.0, 0.0));
//! let n1 = b.add_node(Point::new(300.0, 0.0));
//! let e = b.add_edge(n0, n1, None)?;
//! let net = b.build();
//! let route = Route::new(RouteId(0), "demo", vec![e], &net)?;
//! let field = HomogeneousField::new(vec![
//!     AccessPoint::new(ApId(0), Point::new(60.0, 20.0)),
//!     AccessPoint::new(ApId(1), Point::new(240.0, -20.0)),
//! ]);
//!
//! let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
//! let pos = RoutePositioner::new(route, index, PositionerConfig::default());
//! let fix = pos.locate(&[(ApId(1), -55), (ApId(0), -75)], 0.0, None).unwrap();
//! assert!(fix.s > 150.0); // nearer the second AP
//! # Ok::<(), wilocator_road::RoadError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod diagram;
pub mod interner;
pub mod metrics;
pub mod positioning;
pub mod rank;
pub mod reference;
pub mod route_index;
pub mod signature;
pub mod table;
pub mod tile_mapping;

pub use diagram::{Joint, SignalCell, SignalVoronoiDiagram, SvdConfig, Tile, TileId};
pub use interner::{ApInterner, InternerError, MAX_INTERNED_APS};
pub use metrics::{PositioningMetrics, TileMapperMetrics};
pub use positioning::{
    Fix, FixMethod, LocateScratch, PositionerConfig, Prior, RoutePositioner, TrackingFilter,
};
pub use rank::{average_ranks, to_ranked, to_ranked_rss, AveragedRank};
pub use reference::{ReferencePositioner, ReferenceRouteIndex};
pub use route_index::{RouteTileIndex, SubSegment};
pub use signature::{rank_distance_codes, signature_from_ranked, TileSignature};
pub use table::SignatureTable;
pub use tile_mapping::{MappedPosition, TileMapper};

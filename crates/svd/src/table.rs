//! Sorted structure-of-arrays signature table — the flat slab behind
//! [`crate::RouteTileIndex`].
//!
//! Signatures are stored as one contiguous `u16` code slab plus an offset
//! array, lexicographically sorted; every lookup is a branch-light binary
//! search over slices instead of a hash/tree probe per signature. Because
//! interner codes preserve AP-id order (see [`crate::ApInterner`]), the
//! lexicographic order of code slices equals the `Ord` of the decoded
//! [`TileSignature`]s — so three classic map indexes collapse into *ranges*
//! of one sorted table:
//!
//! * exact lookup (`by_signature`) — binary search;
//! * prefix lookup (`by_prefix`)  — the contiguous run of signatures
//!   starting with the prefix (extensions sort directly after it);
//! * site buckets (`by_site`)     — the prefix run of the 1-code prefix.
//!
//! Payloads (sub-segment indices) live in a parallel slab, kept in
//! insertion order per signature, which for route indexes means ascending
//! arc length — exactly the order the old `HashMap<_, Vec<usize>>` pushed.
//! A `Vec<TileSignature>` of decoded views, aligned with the sorted order,
//! keeps the crate's public borrowed-signature API intact.

use std::ops::Range;

use crate::interner::ApInterner;
use crate::signature::TileSignature;

/// A sorted flat signature → payload table.
#[derive(Debug, Clone, Default)]
pub struct SignatureTable {
    /// Concatenated interned signatures, lexicographically sorted.
    codes: Vec<u16>,
    /// `codes` start offsets; `len() + 1` entries.
    code_off: Vec<u32>,
    /// Concatenated payload lists, aligned with the signature order.
    payload: Vec<u32>,
    /// `payload` start offsets; `len() + 1` entries.
    payload_off: Vec<u32>,
    /// Decoded signatures aligned with the sorted order (the borrowed
    /// views the public API hands out).
    views: Vec<TileSignature>,
    /// Exact-lookup accelerator for the dominant order-2 case: every
    /// length-2 signature packed as `(c0 << 16) | c1` into an
    /// open-addressing probe table whose occupied slots hold
    /// `(key << 32) | table_index`; empty slots are `u64::MAX`
    /// (unreachable: stored codes stay below `u16::MAX`, so no real key
    /// is all-ones). Power-of-two capacity at ≤ 50% load, linear
    /// probing — one hash probe replaces the slice binary search on the
    /// hot path.
    probe2: Vec<u64>,
}

/// Slot value marking an empty `probe2` entry.
const EMPTY_SLOT: u64 = u64::MAX;

/// Multiplicative hash of a packed order-2 signature key.
#[inline]
fn hash_key2(key: u32) -> usize {
    ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
}

impl SignatureTable {
    /// Builds the table from `(interned signature, payload)` pairs.
    ///
    /// Pairs are grouped by signature; within one signature, payloads are
    /// stored in ascending order (route builds emit ascending sub-segment
    /// indices, so this reproduces the map-based insertion order).
    pub fn build(mut entries: Vec<(Vec<u16>, u32)>, interner: &ApInterner) -> Self {
        entries.sort();
        let mut table = SignatureTable {
            code_off: vec![0],
            payload_off: vec![0],
            ..SignatureTable::default()
        };
        let mut i = 0usize;
        while i < entries.len() {
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 == entries[i].0 {
                j += 1;
            }
            let sig_codes: &[u16] = &entries[i].0;
            table.codes.extend_from_slice(sig_codes);
            table.code_off.push(table.codes.len() as u32);
            for e in &entries[i..j] {
                table.payload.push(e.1);
            }
            table.payload_off.push(table.payload.len() as u32);
            // Codes came from this interner, so decoding cannot miss; the
            // empty fallback keeps this constructor panic-free regardless.
            table
                .views
                .push(TileSignature::from_codes(sig_codes, interner).unwrap_or_default());
            i = j;
        }
        let pairs = (0..table.len())
            .filter(|&idx| table.codes_at(idx).len() == 2)
            .count();
        let cap = (pairs * 2).next_power_of_two().max(8);
        table.probe2 = vec![EMPTY_SLOT; cap];
        for idx in 0..table.len() {
            if let &[c0, c1] = table.codes_at(idx) {
                let key = (c0 as u32) << 16 | c1 as u32;
                let mut i = hash_key2(key) & (cap - 1);
                while table.probe2[i] != EMPTY_SLOT {
                    i = (i + 1) & (cap - 1);
                }
                table.probe2[i] = (key as u64) << 32 | idx as u64;
            }
        }
        table
    }

    /// Exact lookup of a length-2 signature via the packed-key probe
    /// table. Equivalent to [`SignatureTable::find`] on `&[c0, c1]`, but
    /// a single hash probe in the common case.
    pub fn find2(&self, c0: u16, c1: u16) -> Option<usize> {
        let key = (c0 as u32) << 16 | c1 as u32;
        let mask = self.probe2.len().wrapping_sub(1);
        let mut i = hash_key2(key) & mask;
        // The probe table is sized past the entry count (see `build`),
        // so every probe sequence hits an EMPTY_SLOT; the explicit
        // bound makes that finite structurally, not just by invariant.
        for _ in 0..self.probe2.len() {
            let slot = *self.probe2.get(i)?;
            if slot == EMPTY_SLOT {
                return None;
            }
            if (slot >> 32) as u32 == key {
                return Some((slot & 0xFFFF_FFFF) as usize);
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the table holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The interned codes of signature `i` (empty slice out of range).
    pub fn codes_at(&self, i: usize) -> &[u16] {
        match (self.code_off.get(i), self.code_off.get(i + 1)) {
            (Some(&lo), Some(&hi)) => self.codes.get(lo as usize..hi as usize).unwrap_or(&[]),
            _ => &[],
        }
    }

    /// The payload list of signature `i` (empty slice out of range).
    pub fn payload_at(&self, i: usize) -> &[u32] {
        match (self.payload_off.get(i), self.payload_off.get(i + 1)) {
            (Some(&lo), Some(&hi)) => self.payload.get(lo as usize..hi as usize).unwrap_or(&[]),
            _ => &[],
        }
    }

    /// The decoded view of signature `i`.
    pub fn view_at(&self, i: usize) -> Option<&TileSignature> {
        self.views.get(i)
    }

    /// All decoded signatures in table (lexicographic) order.
    pub fn views(&self) -> &[TileSignature] {
        &self.views
    }

    /// First signature index not lexicographically below `codes`.
    fn lower_bound(&self, codes: &[u16]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.codes_at(mid) < codes {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Index of the signature exactly equal to `codes`, if present.
    pub fn find(&self, codes: &[u16]) -> Option<usize> {
        let lo = self.lower_bound(codes);
        (lo < self.len() && self.codes_at(lo) == codes).then_some(lo)
    }

    /// The contiguous index range of signatures starting with `prefix`
    /// (including an exact match). Extensions of a prefix sort directly
    /// after it and before any non-extension, so the run is contiguous.
    pub fn prefix_range(&self, prefix: &[u16]) -> Range<usize> {
        let lo = self.lower_bound(prefix);
        let mut l = lo;
        let mut h = self.len();
        while l < h {
            let mid = l + (h - l) / 2;
            if self.codes_at(mid).starts_with(prefix) {
                l = mid + 1;
            } else {
                h = mid;
            }
        }
        lo..l
    }

    /// The index range of non-empty signatures whose *site* (first code)
    /// is `site` — the flat form of the old per-site buckets.
    pub fn site_range(&self, site: u16) -> Range<usize> {
        self.prefix_range(&[site])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&[u16], u32)]) -> (SignatureTable, ApInterner) {
        let interner = ApInterner::try_from_ids((0..100).collect()).unwrap();
        let t = SignatureTable::build(
            entries.iter().map(|&(c, p)| (c.to_vec(), p)).collect(),
            &interner,
        );
        (t, interner)
    }

    #[test]
    fn groups_and_sorts_signatures() {
        let (t, _) = table(&[(&[2, 1], 5), (&[1], 0), (&[2, 1], 2), (&[2, 3], 7)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.codes_at(0), &[1]);
        assert_eq!(t.codes_at(1), &[2, 1]);
        assert_eq!(t.payload_at(1), &[2, 5]);
        assert_eq!(t.payload_at(2), &[7]);
    }

    #[test]
    fn find_hits_and_misses() {
        let (t, _) = table(&[(&[1, 2], 0), (&[3], 1)]);
        assert_eq!(t.find(&[1, 2]), Some(0));
        assert_eq!(t.find(&[3]), Some(1));
        assert_eq!(t.find(&[1]), None);
        assert_eq!(t.find(&[9, 9]), None);
    }

    #[test]
    fn prefix_range_is_contiguous_extensions() {
        let (t, _) = table(&[
            (&[1], 0),
            (&[1, 2], 1),
            (&[1, 2, 3], 2),
            (&[1, 3], 3),
            (&[2, 1], 4),
        ]);
        // Prefix [1,2]: the exact match and its extension, nothing else.
        let r = t.prefix_range(&[1, 2]);
        let sigs: Vec<&[u16]> = r.map(|i| t.codes_at(i)).collect();
        assert_eq!(sigs, vec![&[1, 2][..], &[1, 2, 3][..]]);
        // Site 1 covers everything starting with code 1.
        assert_eq!(t.site_range(1).len(), 4);
        assert_eq!(t.site_range(9).len(), 0);
    }

    #[test]
    fn empty_signature_sorts_first() {
        let (t, interner) = table(&[(&[4], 1), (&[], 0)]);
        assert_eq!(t.codes_at(0), &[] as &[u16]);
        assert!(t.view_at(0).unwrap().is_empty());
        assert_eq!(
            t.view_at(1).unwrap(),
            &TileSignature::from_codes(&[4], &interner).unwrap()
        );
    }
}

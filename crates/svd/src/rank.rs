//! Rank averaging across devices and scan windows.
//!
//! The paper's founding observation: "the average RSS rank from an AP
//! sensed by multiple devices remains relatively stable" even though raw
//! RSS swings by >10 dB. When several riders' phones report scans within
//! the same window, averaging each AP's *rank position* across the reports
//! suppresses fading-induced rank swaps before the signature lookup.

use std::collections::HashMap;

use wilocator_rf::{ApId, Scan};

/// An AP with its averaged rank statistics across a scan window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AveragedRank {
    /// The AP.
    pub ap: ApId,
    /// Mean rank position (0 = strongest) over the scans that heard it.
    pub mean_rank: f64,
    /// Number of scans (devices) that heard the AP.
    pub observations: usize,
    /// Mean RSS across the scans that heard it, dBm.
    pub mean_rss_dbm: f64,
}

/// Averages RSS ranks over a window of scans (typically: the reports of all
/// riders on the bus within one scan period).
///
/// Returns APs ordered by mean rank ascending (strongest first); ties break
/// by more observations, then stronger mean RSS, then AP id. APs missing
/// from some scans are averaged only over the scans that heard them, but an
/// AP must be heard by at least `min_observations` scans to be listed.
///
/// # Examples
///
/// ```
/// use wilocator_rf::{ApId, Bssid, Reading, Scan};
/// use wilocator_svd::average_ranks;
///
/// let mk = |pairs: &[(u32, i32)]| Scan::new(0.0, pairs.iter().map(|&(a, r)| Reading {
///     ap: ApId(a), bssid: Bssid::from_ap_id(ApId(a)), rss_dbm: r,
/// }).collect());
/// // Two devices disagree on ranks 2/3 but agree AP0 is strongest.
/// let scans = [mk(&[(0, -50), (1, -60), (2, -70)]), mk(&[(0, -52), (2, -61), (1, -63)])];
/// let avg = average_ranks(&scans, 1);
/// assert_eq!(avg[0].ap, ApId(0));
/// ```
pub fn average_ranks(scans: &[Scan], min_observations: usize) -> Vec<AveragedRank> {
    let mut acc: HashMap<ApId, (f64, usize, f64)> = HashMap::new();
    for scan in scans {
        for (rank, (ap, rss)) in scan.ranked().into_iter().enumerate() {
            let e = acc.entry(ap).or_insert((0.0, 0, 0.0));
            e.0 += rank as f64;
            e.1 += 1;
            e.2 += rss as f64;
        }
    }
    let mut out: Vec<AveragedRank> = acc
        .into_iter()
        .filter(|&(_, (_, n, _))| n >= min_observations.max(1))
        .map(|(ap, (rank_sum, n, rss_sum))| AveragedRank {
            ap,
            mean_rank: rank_sum / n as f64,
            observations: n,
            mean_rss_dbm: rss_sum / n as f64,
        })
        .collect();
    out.sort_by(|a, b| {
        a.mean_rank
            .total_cmp(&b.mean_rank)
            .then(b.observations.cmp(&a.observations))
            .then(b.mean_rss_dbm.total_cmp(&a.mean_rss_dbm))
            .then(a.ap.cmp(&b.ap))
    });
    out
}

/// Converts averaged ranks to the `(ApId, value)` list form the signature
/// builder accepts (strongest first).
pub fn to_ranked(avg: &[AveragedRank]) -> Vec<(ApId, f64)> {
    avg.iter().map(|a| (a.ap, -a.mean_rank)).collect()
}

/// Converts averaged ranks to the integer-dBm ranked list the positioner
/// consumes: order comes from the averaged ranks (strongest first), values
/// are the rounded mean RSS so the positioner's tie-margin test sees real
/// signal levels rather than synthetic rank scores.
pub fn to_ranked_rss(avg: &[AveragedRank]) -> Vec<(ApId, i32)> {
    avg.iter()
        .map(|a| (a.ap, a.mean_rss_dbm.round() as i32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_rf::{Bssid, Reading};

    fn scan(pairs: &[(u32, i32)]) -> Scan {
        Scan::new(
            0.0,
            pairs
                .iter()
                .map(|&(a, r)| Reading {
                    ap: ApId(a),
                    bssid: Bssid::from_ap_id(ApId(a)),
                    rss_dbm: r,
                })
                .collect(),
        )
    }

    #[test]
    fn single_scan_preserves_order() {
        let avg = average_ranks(&[scan(&[(0, -50), (1, -60), (2, -70)])], 1);
        let order: Vec<ApId> = avg.iter().map(|a| a.ap).collect();
        assert_eq!(order, vec![ApId(0), ApId(1), ApId(2)]);
    }

    #[test]
    fn averaging_suppresses_one_bad_scan() {
        // Two good scans say (0, 1); one fading-corrupted scan says (1, 0).
        let scans = [
            scan(&[(0, -50), (1, -60)]),
            scan(&[(0, -51), (1, -59)]),
            scan(&[(1, -52), (0, -58)]),
        ];
        let avg = average_ranks(&scans, 1);
        assert_eq!(avg[0].ap, ApId(0));
        assert!(avg[0].mean_rank < avg[1].mean_rank);
    }

    #[test]
    fn min_observations_filters_flaky_aps() {
        let scans = [
            scan(&[(0, -50), (9, -89)]), // AP9 heard only once
            scan(&[(0, -52)]),
            scan(&[(0, -51)]),
        ];
        let avg = average_ranks(&scans, 2);
        assert_eq!(avg.len(), 1);
        assert_eq!(avg[0].ap, ApId(0));
        assert_eq!(avg[0].observations, 3);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(average_ranks(&[], 1).is_empty());
        assert!(average_ranks(&[scan(&[])], 1).is_empty());
    }

    #[test]
    fn mean_rss_computed() {
        let avg = average_ranks(&[scan(&[(0, -50)]), scan(&[(0, -60)])], 1);
        assert_eq!(avg[0].mean_rss_dbm, -55.0);
    }

    #[test]
    fn to_ranked_descends_in_value() {
        let avg = average_ranks(&[scan(&[(3, -50), (1, -60), (2, -70)])], 1);
        let ranked = to_ranked(&avg);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranked[0].0, ApId(3));
    }

    #[test]
    fn rank_tie_broken_by_observations_then_rss() {
        // AP0 and AP1 both have mean rank 0.5 across two scans, but AP0 is
        // stronger on average.
        let scans = [scan(&[(0, -50), (1, -60)]), scan(&[(1, -55), (0, -65)])];
        let avg = average_ranks(&scans, 1);
        assert_eq!(avg[0].mean_rank, avg[1].mean_rank);
        assert_eq!(avg[0].ap, ApId(0)); // −57.5 dBm beats −57.5? compute: AP0 (−50−65)/2=−57.5, AP1 (−60−55)/2=−57.5 → tie, falls to id
    }
}

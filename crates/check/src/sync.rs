//! The sync façade: `std` primitives in production, virtual ones under
//! `--cfg wilocator_check`.
//!
//! Protocol modules (`wilocator-core`'s snapshot/server/metrics,
//! `wilocator-obs`'s counters) import their synchronization types from
//! here via a thin `crate::sync` re-export instead of `std::sync`
//! (enforced by lint rule W010 `raw_sync`). A normal build compiles to
//! exactly the `std` types — zero overhead, zero behaviour change. The
//! model-check CI job rebuilds with `RUSTFLAGS='--cfg wilocator_check'`,
//! swapping in [`crate::model`]'s virtual types so the *real* protocol
//! code runs under exhaustive interleaving exploration.
//!
//! `Arc` is deliberately re-exported from `std` in both modes: the
//! snapshot protocol's reclamation argument rests on plain reference
//! counting, and `Arc` clone/drop is not a scheduling point.

#[cfg(not(wilocator_check))]
pub use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(wilocator_check)]
pub use crate::model::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

pub use std::sync::Arc;

/// Atomic cells and orderings (`Ordering` is always the `std` enum).
pub mod atomic {
    #[cfg(not(wilocator_check))]
    pub use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize};

    #[cfg(wilocator_check)]
    pub use crate::model::{AtomicI64, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

//! The cooperative scheduler and interleaving explorer.
//!
//! Every virtual synchronization primitive in [`crate::model`] traps its
//! operations into an [`Exec`]: the calling OS thread parks until the
//! explorer grants it the run token, applies its operation to the
//! centralized protocol state under one lock, and returns to user code.
//! Exactly one model thread runs between scheduling points, so an
//! execution is fully described by the sequence of choices the explorer
//! makes — which is what makes exhaustive enumeration and seed replay
//! possible with plain OS threads and no unsafe code.
//!
//! # Exploration algorithm
//!
//! The explorer performs an iterative-deepening-free DFS over a *choice
//! tree*. Each scheduling point appends a [`Node::Sched`] listing the
//! runnable-thread options in exploration order; each nondeterministic
//! value (a stale atomic load candidate, a condvar wakeup pick) appends a
//! [`Node::Value`]. One execution = replay the recorded prefix, then
//! take the first (default) option at every fresh node. After the run,
//! the deepest node with an unexplored option advances and everything
//! below it is discarded. Exploration is bounded two ways:
//!
//! * **Preemption bound** ([`Config::preemption_bound`]): switching away
//!   from a thread that is still runnable counts as a preemption; once
//!   the budget is spent, the running thread keeps running until it
//!   blocks or finishes. Empirically (CHESS) almost all concurrency bugs
//!   need ≤ 2 preemptions.
//! * **Sleep sets** (DPOR-lite): once a thread's op has been fully
//!   explored from a state, sibling branches put it to sleep until a
//!   *dependent* op (same object, at least one writer — or anything by a
//!   thread someone sleeps on joining) executes, pruning commuting
//!   interleavings without losing distinct outcomes.
//!
//! # Weak-memory-lite value oracle
//!
//! Atomic loads are not forced to see the newest store. Each virtual
//! atomic keeps its full modification order with per-store vector
//! clocks; a `Relaxed`/`Acquire` load may read any store newer than both
//! the thread's happens-before floor and its own coherence floor (newest
//! [`Config::value_window`] candidates branch the search, newest first).
//! `Acquire` loads join the writer's clock only when the store was
//! `Release` or stronger, so missing release/acquire pairs show up as
//! genuinely stale reads. RMWs always read the newest store (atomicity),
//! and `SeqCst` is approximated as read-newest — a single total order is
//! assumed rather than modeled, which is the documented coverage limit
//! (DESIGN.md §14).

use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Model-thread identifier: index into the execution's thread table.
pub(crate) type Tid = usize;

/// A vector clock, indexed by [`Tid`] and grown lazily.
pub(crate) type VClock = Vec<u64>;

fn vjoin(a: &mut VClock, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, v) in b.iter().enumerate() {
        if *v > a[i] {
            a[i] = *v;
        }
    }
}

fn vget(a: &[u64], i: usize) -> u64 {
    a.get(i).copied().unwrap_or(0)
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Exploration limits and knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of preemptive context switches per execution
    /// (switches away from a still-runnable thread). Forced switches —
    /// the running thread blocked or finished — are free.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; exceeding it is reported as a
    /// failure so a state-space blowup can't hang CI silently.
    pub max_schedules: usize,
    /// Hard cap on events in one execution (runaway-loop backstop).
    pub max_steps: usize,
    /// How many of the newest visible stores a relaxed/acquire load may
    /// choose between. 1 disables stale reads entirely.
    pub value_window: usize,
    /// Stop at DFS execution `n` and print its schedule table — the
    /// programmatic form of the `WILOCATOR_CHECK_SEED` env var (the env
    /// var wins only when this is `None`, so tests can replay without
    /// racing on process-global state).
    pub replay_seed: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 1_000_000,
            max_steps: 20_000,
            value_window: 3,
            replay_seed: None,
        }
    }
}

/// What one `explore` call did: schedule and event counts plus the
/// failure, if any.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions explored (including pruned ones).
    pub schedules: usize,
    /// Total events across all executions.
    pub events: usize,
    /// The first failing schedule, if the model found one.
    pub failure: Option<Failure>,
}

/// A failing schedule, ready to print and replay.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Deterministic index of the failing execution in DFS order; rerun
    /// with `WILOCATOR_CHECK_SEED=<seed>` to replay exactly this
    /// schedule.
    pub seed: usize,
    /// The panic or deadlock description.
    pub message: String,
    /// The failing schedule rendered as a step/thread/event table.
    pub table: String,
}

/// Panic payload used to unwind model threads when an execution is
/// abandoned (failure elsewhere, or a redundant branch pruned). The
/// runner treats it as a quiet exit, and the panic hook suppresses it.
pub(crate) struct Aborted;

/// What a virtual op touches, for dependence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjRef {
    /// A virtual sync object by id.
    Obj(usize),
    /// A thread's lifecycle (join dependence).
    Thread(Tid),
}

/// Kinds of virtual sync objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Atomic,
    Mutex,
    Rw,
    Cond,
}

/// One trapped synchronization operation.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// First event of a spawned thread.
    Start,
    Load {
        obj: usize,
        ord: Ordering,
    },
    Store {
        obj: usize,
        ord: Ordering,
        val: u64,
    },
    /// `fetch_add` (all RMWs reduce to wrapping add on the u64 image).
    Rmw {
        obj: usize,
        ord: Ordering,
        add: u64,
    },
    Lock {
        obj: usize,
    },
    Unlock {
        obj: usize,
    },
    ReadLock {
        obj: usize,
    },
    ReadUnlock {
        obj: usize,
    },
    WriteLock {
        obj: usize,
    },
    WriteUnlock {
        obj: usize,
    },
    /// Atomically release `lock` and park on `cond`.
    CondWait {
        cond: usize,
        lock: usize,
    },
    NotifyOne {
        cond: usize,
    },
    NotifyAll {
        cond: usize,
    },
    Join {
        thread: Tid,
    },
}

impl Op {
    /// The (object, is-write) footprint used for sleep-set dependence.
    /// Read-class pairs on the same object commute; anything else on the
    /// same object conflicts.
    fn touches(&self) -> Vec<(ObjRef, bool)> {
        match self {
            Op::Start => Vec::new(),
            Op::Load { obj, .. } => vec![(ObjRef::Obj(*obj), false)],
            Op::Store { obj, .. } | Op::Rmw { obj, .. } => vec![(ObjRef::Obj(*obj), true)],
            Op::Lock { obj }
            | Op::Unlock { obj }
            | Op::WriteLock { obj }
            | Op::WriteUnlock { obj } => vec![(ObjRef::Obj(*obj), true)],
            Op::ReadLock { obj } | Op::ReadUnlock { obj } => vec![(ObjRef::Obj(*obj), false)],
            Op::CondWait { cond, lock } => {
                vec![(ObjRef::Obj(*cond), true), (ObjRef::Obj(*lock), true)]
            }
            Op::NotifyOne { cond } | Op::NotifyAll { cond } => vec![(ObjRef::Obj(*cond), true)],
            Op::Join { thread } => vec![(ObjRef::Thread(*thread), false)],
        }
    }

    /// Whether the op can run right now (blocking ops gate on object
    /// state; everything else is always enabled).
    fn enabled(&self, st: &ExecState) -> bool {
        match self {
            Op::Lock { obj } => matches!(&st.objs[*obj], ObjState::Mutex { owner: None, .. }),
            Op::WriteLock { obj } => {
                matches!(&st.objs[*obj], ObjState::Rw { writer: None, readers, .. } if readers.is_empty())
            }
            Op::ReadLock { obj } => matches!(&st.objs[*obj], ObjState::Rw { writer: None, .. }),
            Op::Join { thread } => matches!(st.threads[*thread].status, Status::Finished),
            _ => true,
        }
    }

    /// Human-readable label used in deadlock reports (apply() builds
    /// richer descriptions with observed values for the trace itself).
    fn label(&self) -> String {
        match self {
            Op::Start => "start".into(),
            Op::Load { obj, ord } => format!("atomic#{obj} load ({ord:?})"),
            Op::Store { obj, val, ord } => format!("atomic#{obj} store {val} ({ord:?})"),
            Op::Rmw { obj, add, ord } => format!("atomic#{obj} fetch_add {add} ({ord:?})"),
            Op::Lock { obj } => format!("mutex#{obj} lock"),
            Op::Unlock { obj } => format!("mutex#{obj} unlock"),
            Op::ReadLock { obj } => format!("rwlock#{obj} read-lock"),
            Op::ReadUnlock { obj } => format!("rwlock#{obj} read-unlock"),
            Op::WriteLock { obj } => format!("rwlock#{obj} write-lock"),
            Op::WriteUnlock { obj } => format!("rwlock#{obj} write-unlock"),
            Op::CondWait { cond, lock } => format!("cond#{cond} wait (releases mutex#{lock})"),
            Op::NotifyOne { cond } => format!("cond#{cond} notify_one"),
            Op::NotifyAll { cond } => format!("cond#{cond} notify_all"),
            Op::Join { thread } => format!("join T{thread}"),
        }
    }
}

/// One store in an atomic's modification order.
#[derive(Debug, Clone)]
struct StoreRec {
    val: u64,
    writer: Tid,
    /// The writer's own clock component at store time (happens-before
    /// test: `clock[writer] >= wtime` means this store is in the past).
    wtime: u64,
    clock: VClock,
    release: bool,
}

/// Virtual sync object state.
#[derive(Debug)]
enum ObjState {
    Atomic {
        /// Modification order; index 0 is the initial value, visible to
        /// everyone.
        stores: Vec<StoreRec>,
        /// Per-thread coherence floor: newest store index each thread
        /// has read or written (reads may never go backwards).
        floor: Vec<usize>,
    },
    Mutex {
        owner: Option<Tid>,
        /// Release clock: joined by unlockers, acquired by lockers.
        clock: VClock,
    },
    Rw {
        writer: Option<Tid>,
        readers: Vec<Tid>,
        /// Write-unlock release clock (acquired by both lock kinds).
        wclock: VClock,
        /// Read-unlock release clock (acquired by write-lockers only:
        /// `unlock_shared` synchronizes with the next `lock`, but not
        /// with other `lock_shared`s).
        rclock: VClock,
    },
    Cond {
        /// Parked waiters with the mutex each must reacquire.
        parked: Vec<(Tid, usize)>,
    },
}

#[derive(Debug, Clone)]
enum Status {
    /// Has an op queued and is parked waiting for the run token.
    Pending(Op),
    /// Holds the run token (or is executing user code between traps).
    Running,
    /// Parked on a condvar; not schedulable until notified.
    Parked,
    Finished,
}

#[derive(Debug)]
struct ThreadSt {
    status: Status,
    clock: VClock,
}

/// One scheduling-order option: a thread plus the dependence footprint
/// its pending op had when the node was created.
#[derive(Debug, Clone)]
struct SchedOpt {
    tid: Tid,
    sig: Vec<(ObjRef, bool)>,
}

/// A node in the DFS choice tree.
#[derive(Debug, Clone)]
enum Node {
    Sched {
        options: Vec<SchedOpt>,
        sleep: Vec<SchedOpt>,
        chosen: usize,
    },
    Value {
        n: usize,
        chosen: usize,
    },
}

/// One row of the execution trace.
#[derive(Debug, Clone)]
struct Event {
    tid: Tid,
    desc: String,
}

fn conflicting(a: &[(ObjRef, bool)], b: &[(ObjRef, bool)]) -> bool {
    a.iter()
        .any(|(oa, wa)| b.iter().any(|(ob, wb)| oa == ob && (*wa || *wb)))
}

struct ExecState {
    cfg: Config,
    threads: Vec<ThreadSt>,
    objs: Vec<ObjState>,
    granted: Option<Tid>,
    active: Option<Tid>,
    aborting: bool,
    pruned: bool,
    failure: Option<String>,
    trace: Vec<Event>,
    tree: Vec<Node>,
    cursor: usize,
    preemptions: usize,
    prev: Option<Tid>,
    steps: usize,
}

/// One execution's shared protocol state plus the token-passing
/// rendezvous between model threads and the explorer.
pub(crate) struct Exec {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
    /// Globally unique per execution; model objects remember which
    /// execution assigned their id so cross-execution reuse is caught.
    pub(crate) serial: u64,
}

enum RunOutcome {
    Complete,
    Pruned,
    Failed(String),
}

impl Exec {
    fn new(cfg: Config, tree: Vec<Node>) -> Self {
        use std::sync::atomic::AtomicU64;
        static NEXT_SERIAL: AtomicU64 = AtomicU64::new(1);
        Exec {
            st: StdMutex::new(ExecState {
                cfg,
                threads: Vec::new(),
                objs: Vec::new(),
                granted: None,
                active: None,
                aborting: false,
                pruned: false,
                failure: None,
                trace: Vec::new(),
                tree,
                cursor: 0,
                preemptions: 0,
                prev: None,
                steps: 0,
            }),
            cv: StdCondvar::new(),
            serial: NEXT_SERIAL.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        self.st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: StdMutexGuard<'a, ExecState>) -> StdMutexGuard<'a, ExecState> {
        if std::env::var_os("WILOCATOR_CHECK_TRACE_RUNS").is_some() {
            let (g, to) = self
                .cv
                .wait_timeout(g, std::time::Duration::from_secs(2))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if to.timed_out() {
                eprintln!(
                    "[dbg] STALL granted={:?} active={:?} aborting={} cursor={} treelen={} statuses={:?}",
                    g.granted,
                    g.active,
                    g.aborting,
                    g.cursor,
                    g.tree.len(),
                    g.threads.iter().map(|t| format!("{:?}", t.status)).collect::<Vec<_>>()
                );
            }
            return g;
        }
        self.cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a new virtual sync object and returns its id. Not a
    /// scheduling point: object creation is thread-local until shared.
    pub(crate) fn alloc_obj(&self, kind: ObjKind, init: u64) -> usize {
        let mut st = self.lock();
        let id = st.objs.len();
        st.objs.push(match kind {
            ObjKind::Atomic => ObjState::Atomic {
                stores: vec![StoreRec {
                    val: init,
                    writer: 0,
                    wtime: 0,
                    clock: Vec::new(),
                    release: true,
                }],
                floor: Vec::new(),
            },
            ObjKind::Mutex => ObjState::Mutex {
                owner: None,
                clock: Vec::new(),
            },
            ObjKind::Rw => ObjState::Rw {
                writer: None,
                readers: Vec::new(),
                wclock: Vec::new(),
                rclock: Vec::new(),
            },
            ObjKind::Cond => ObjState::Cond { parked: Vec::new() },
        });
        id
    }

    fn register_root(&self) -> Tid {
        let mut st = self.lock();
        debug_assert!(st.threads.is_empty());
        st.threads.push(ThreadSt {
            status: Status::Pending(Op::Start),
            clock: vec![1],
        });
        0
    }

    /// Registers a child thread spawned by the (active) `parent`; the
    /// child starts with the parent's clock, giving the spawn edge.
    pub(crate) fn register_child(&self, parent: Tid) -> Tid {
        let mut st = self.lock();
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] = 1;
        st.threads.push(ThreadSt {
            status: Status::Pending(Op::Start),
            clock,
        });
        tid
    }

    /// First rendezvous of a freshly spawned model thread: wait to be
    /// scheduled for the `Start` op, then return to run user code.
    pub(crate) fn begin(&self, tid: Tid) {
        let _ = self.run_step(tid, None);
    }

    /// Traps one synchronization op: queue it, park until granted, apply
    /// it, return the op's value (loads/RMWs) to the caller.
    pub(crate) fn step(&self, tid: Tid, op: Op) -> u64 {
        if std::thread::panicking() {
            // Guard drops during unwind must neither yield (the failing
            // schedule is already decided) nor double-panic; apply the
            // release directly so lock state stays consistent.
            let mut st = self.lock();
            if st.aborting {
                return 0;
            }
            let (val, desc) = apply(&mut st, tid, &op);
            st.trace.push(Event { tid, desc });
            return val;
        }
        self.run_step(tid, Some(op))
    }

    /// Shared body of [`Self::begin`] and [`Self::step`]: queue the op
    /// (if given; `begin` relies on `Start` pre-queued at registration),
    /// then loop grant → apply, staying parked across condvar waits.
    fn run_step(&self, tid: Tid, op: Option<Op>) -> u64 {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(Aborted);
        }
        if let Some(op) = op {
            st.steps += 1;
            if st.steps > st.cfg.max_steps {
                let msg = format!("execution exceeded max_steps={}", st.cfg.max_steps);
                st.failure.get_or_insert(msg);
                st.aborting = true;
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(Aborted);
            }
            st.threads[tid].status = Status::Pending(op);
            st.active = None;
            self.cv.notify_all();
        }
        loop {
            loop {
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(Aborted);
                }
                if st.granted == Some(tid) {
                    break;
                }
                st = self.wait(st);
            }
            st.granted = None;
            st.active = Some(tid);
            let op = match std::mem::replace(&mut st.threads[tid].status, Status::Running) {
                Status::Pending(op) => op,
                other => {
                    st.threads[tid].status = other;
                    st.failure
                        .get_or_insert(format!("internal: T{tid} granted without a pending op"));
                    st.aborting = true;
                    self.cv.notify_all();
                    drop(st);
                    std::panic::panic_any(Aborted);
                }
            };
            let parked = matches!(op, Op::CondWait { .. });
            let (val, desc) = apply(&mut st, tid, &op);
            st.trace.push(Event { tid, desc });
            if parked {
                // apply() released the mutex and set us Parked; hand the
                // token back and stay here until a notify requeues us as
                // Pending(Lock) and the explorer grants the reacquire.
                st.active = None;
                self.cv.notify_all();
                continue;
            }
            return val;
        }
    }

    /// Marks `tid` finished (normal return or quiet abort unwind).
    pub(crate) fn finish(&self, tid: Tid) {
        let mut st = self.lock();
        st.threads[tid].clock[tid] += 1;
        st.threads[tid].status = Status::Finished;
        if !st.aborting {
            st.trace.push(Event {
                tid,
                desc: "finish".into(),
            });
        }
        st.active = None;
        self.cv.notify_all();
    }

    /// Records a model-thread panic as the execution's failure and
    /// aborts every other thread.
    pub(crate) fn fail(&self, tid: Tid, msg: String) {
        let mut st = self.lock();
        st.trace.push(Event {
            tid,
            desc: format!("panic: {msg}"),
        });
        st.failure.get_or_insert(msg);
        st.threads[tid].status = Status::Finished;
        st.aborting = true;
        st.active = None;
        self.cv.notify_all();
    }

    /// The explorer side: grant ops one at a time until the execution
    /// completes, deadlocks, fails, or is pruned as redundant.
    fn schedule_loop(&self) -> RunOutcome {
        let mut st = self.lock();
        loop {
            while st.granted.is_some() || st.active.is_some() {
                st = self.wait(st);
            }
            if st.aborting {
                while !st
                    .threads
                    .iter()
                    .all(|t| matches!(t.status, Status::Finished))
                {
                    st = self.wait(st);
                }
                return match (&st.failure, st.pruned) {
                    (Some(msg), _) => RunOutcome::Failed(msg.clone()),
                    (None, _) => RunOutcome::Pruned,
                };
            }
            let pending: Vec<Tid> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Pending(_)))
                .map(|(i, _)| i)
                .collect();
            let enabled: Vec<Tid> = pending
                .iter()
                .copied()
                .filter(|t| match &st.threads[*t].status {
                    Status::Pending(op) => op.enabled(&st),
                    _ => false,
                })
                .collect();
            if enabled.is_empty() {
                if st
                    .threads
                    .iter()
                    .all(|t| matches!(t.status, Status::Finished))
                {
                    return RunOutcome::Complete;
                }
                let msg = deadlock_message(&st);
                st.trace.push(Event {
                    tid: 0,
                    desc: "deadlock detected".into(),
                });
                st.failure.get_or_insert(msg);
                st.aborting = true;
                self.cv.notify_all();
                continue;
            }
            match decide(&mut st, &enabled) {
                Some(tid) => {
                    st.granted = Some(tid);
                    self.cv.notify_all();
                }
                None => {
                    st.pruned = true;
                    st.aborting = true;
                    self.cv.notify_all();
                }
            }
        }
    }

    fn take_back(&self) -> (Vec<Event>, Vec<Node>) {
        let mut st = self.lock();
        (std::mem::take(&mut st.trace), std::mem::take(&mut st.tree))
    }
}

fn deadlock_message(st: &ExecState) -> String {
    let mut blocked = Vec::new();
    for (tid, t) in st.threads.iter().enumerate() {
        match &t.status {
            Status::Pending(op) => blocked.push(format!("T{tid} blocked on {}", op.label())),
            Status::Parked => blocked.push(format!("T{tid} parked on a condvar (lost wakeup)")),
            _ => {}
        }
    }
    format!("deadlock: {}", blocked.join("; "))
}

/// Picks the next thread to run, consulting (replay) or extending
/// (fresh) the choice tree. Returns `None` when every enabled thread is
/// in the sleep set — the state's outcomes are covered by a sibling
/// branch and the execution is pruned.
fn decide(st: &mut ExecState, enabled: &[Tid]) -> Option<Tid> {
    let prev_enabled = st.prev.filter(|p| enabled.contains(p));
    let pick = if st.cursor < st.tree.len() {
        match &st.tree[st.cursor] {
            Node::Sched {
                options, chosen, ..
            } => options[*chosen].tid,
            Node::Value { .. } => {
                // Replay divergence would mean the model is
                // nondeterministic; the debug build catches it loudly.
                debug_assert!(false, "choice-tree divergence: expected a Sched node");
                enabled[0]
            }
        }
    } else {
        // Exploration order: keep running the previous thread first
        // (fewest context switches explored first), then by tid.
        let mut order: Vec<Tid> = Vec::new();
        if let Some(p) = prev_enabled {
            order.push(p);
        }
        order.extend(enabled.iter().copied().filter(|t| Some(*t) != prev_enabled));
        if prev_enabled.is_some() && st.preemptions >= st.cfg.preemption_bound {
            order.truncate(1);
        }
        let sleep = inherit_sleep(st);
        let options: Vec<SchedOpt> = order
            .iter()
            .filter(|t| !sleep.iter().any(|e| e.tid == **t))
            .map(|t| SchedOpt {
                tid: *t,
                sig: pending_sig(st, *t),
            })
            .collect();
        if options.is_empty() {
            return None;
        }
        let pick = options[0].tid;
        st.tree.push(Node::Sched {
            options,
            sleep,
            chosen: 0,
        });
        pick
    };
    st.cursor += 1;
    if let Some(p) = prev_enabled {
        if pick != p {
            st.preemptions += 1;
        }
    }
    st.prev = Some(pick);
    Some(pick)
}

/// Sleep set for a fresh node: the previous scheduling point's sleep set
/// plus its already-explored sibling options, minus everything dependent
/// on the op that actually executed there.
fn inherit_sleep(st: &ExecState) -> Vec<SchedOpt> {
    for node in st.tree[..st.cursor].iter().rev() {
        if let Node::Sched {
            options,
            sleep,
            chosen,
        } = node
        {
            let executed = &options[*chosen];
            let mut out = Vec::new();
            for e in sleep.iter().chain(options[..*chosen].iter()) {
                if e.tid == executed.tid
                    || conflicting(&e.sig, &executed.sig)
                    || e.sig
                        .iter()
                        .any(|(o, _)| *o == ObjRef::Thread(executed.tid))
                {
                    continue;
                }
                out.push(e.clone());
            }
            return out;
        }
    }
    Vec::new()
}

fn pending_sig(st: &ExecState, tid: Tid) -> Vec<(ObjRef, bool)> {
    match &st.threads[tid].status {
        Status::Pending(op) => op.touches(),
        _ => Vec::new(),
    }
}

/// Picks among `n` nondeterministic values (stale-load candidates,
/// condvar wakeup targets), replaying or extending the choice tree.
fn choose_value(st: &mut ExecState, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let choice = if st.cursor < st.tree.len() {
        match &st.tree[st.cursor] {
            Node::Value { chosen, .. } => *chosen,
            Node::Sched { .. } => {
                debug_assert!(false, "choice-tree divergence: expected a Value node");
                0
            }
        }
    } else {
        st.tree.push(Node::Value { n, chosen: 0 });
        0
    };
    st.cursor += 1;
    choice.min(n - 1)
}

/// Applies one granted op to the protocol state, returning the op's
/// value and its trace description. Callers hold the state lock and
/// have already verified enabledness.
fn apply(st: &mut ExecState, tid: Tid, op: &Op) -> (u64, String) {
    // Every applied op is a fresh timestamp in its thread's clock.
    {
        let c = &mut st.threads[tid].clock;
        if c.len() <= tid {
            c.resize(tid + 1, 0);
        }
        c[tid] += 1;
    }
    match op {
        Op::Start => (0, "start".into()),
        Op::Load { obj, ord } => {
            let tclock = st.threads[tid].clock.clone();
            let candidates: Vec<usize> = {
                let ObjState::Atomic { stores, floor } = &st.objs[*obj] else {
                    unreachable!("load on non-atomic object");
                };
                // Coherence floor: never read older than we've already
                // read or written; happens-before floor: never read
                // older than the newest store in our past.
                let mut lo = floor.get(tid).copied().unwrap_or(0);
                for (i, s) in stores.iter().enumerate().skip(lo) {
                    if vget(&tclock, s.writer) >= s.wtime {
                        lo = i;
                    }
                }
                let mut c: Vec<usize> = (lo..stores.len()).rev().collect();
                if *ord == Ordering::SeqCst {
                    // Approximation: SeqCst loads read the newest store
                    // (no SC total order is modeled — DESIGN.md §14).
                    c.truncate(1);
                }
                c.truncate(st.cfg.value_window.max(1));
                c
            };
            let k = choose_value(st, candidates.len());
            let idx = candidates[k];
            let ObjState::Atomic { stores, floor } = &mut st.objs[*obj] else {
                unreachable!();
            };
            if floor.len() <= tid {
                floor.resize(tid + 1, 0);
            }
            floor[tid] = floor[tid].max(idx);
            let rec = stores[idx].clone();
            let newest = idx + 1 == stores.len();
            if is_acquire(*ord) && rec.release {
                vjoin(&mut st.threads[tid].clock, &rec.clock);
            }
            let stale = if newest { "" } else { " [stale]" };
            (
                rec.val,
                format!("atomic#{obj} load -> {}{stale} ({ord:?})", rec.val),
            )
        }
        Op::Store { obj, ord, val } => {
            let clock = st.threads[tid].clock.clone();
            let wtime = clock[tid];
            let ObjState::Atomic { stores, floor } = &mut st.objs[*obj] else {
                unreachable!("store on non-atomic object");
            };
            stores.push(StoreRec {
                val: *val,
                writer: tid,
                wtime,
                clock,
                release: is_release(*ord),
            });
            let idx = stores.len() - 1;
            if floor.len() <= tid {
                floor.resize(tid + 1, 0);
            }
            floor[tid] = idx;
            (0, format!("atomic#{obj} store {val} ({ord:?})"))
        }
        Op::Rmw { obj, ord, add } => {
            let (prev, new) = {
                let ObjState::Atomic { stores, .. } = &st.objs[*obj] else {
                    unreachable!("rmw on non-atomic object");
                };
                let prev = stores.last().expect("mod order never empty").clone();
                (prev.clone(), prev.val.wrapping_add(*add))
            };
            if is_acquire(*ord) && prev.release {
                vjoin(&mut st.threads[tid].clock, &prev.clock);
            }
            let mut clock = st.threads[tid].clock.clone();
            // An RMW continues the release sequence of the store it read
            // from, so an acquire load of this record must pick up the
            // head release's clock even if the RMW itself is Relaxed.
            if prev.release {
                vjoin(&mut clock, &prev.clock);
            }
            let wtime = st.threads[tid].clock[tid];
            let ObjState::Atomic { stores, floor } = &mut st.objs[*obj] else {
                unreachable!();
            };
            stores.push(StoreRec {
                val: new,
                writer: tid,
                wtime,
                clock,
                release: is_release(*ord) || prev.release,
            });
            let idx = stores.len() - 1;
            if floor.len() <= tid {
                floor.resize(tid + 1, 0);
            }
            floor[tid] = idx;
            (
                prev.val,
                format!("atomic#{obj} fetch_add {add} -> {new} ({ord:?})"),
            )
        }
        Op::Lock { obj } => {
            let acquired = {
                let ObjState::Mutex { owner, clock } = &mut st.objs[*obj] else {
                    unreachable!("lock on non-mutex object");
                };
                debug_assert!(owner.is_none());
                *owner = Some(tid);
                clock.clone()
            };
            vjoin(&mut st.threads[tid].clock, &acquired);
            (0, format!("mutex#{obj} lock"))
        }
        Op::Unlock { obj } => {
            let tclock = st.threads[tid].clock.clone();
            let ObjState::Mutex { owner, clock } = &mut st.objs[*obj] else {
                unreachable!();
            };
            *owner = None;
            vjoin(clock, &tclock);
            (0, format!("mutex#{obj} unlock"))
        }
        Op::ReadLock { obj } => {
            let acquired = {
                let ObjState::Rw {
                    writer,
                    readers,
                    wclock,
                    ..
                } = &mut st.objs[*obj]
                else {
                    unreachable!("read-lock on non-rwlock object");
                };
                debug_assert!(writer.is_none());
                readers.push(tid);
                wclock.clone()
            };
            vjoin(&mut st.threads[tid].clock, &acquired);
            (0, format!("rwlock#{obj} read-lock"))
        }
        Op::ReadUnlock { obj } => {
            let tclock = st.threads[tid].clock.clone();
            let ObjState::Rw {
                readers, rclock, ..
            } = &mut st.objs[*obj]
            else {
                unreachable!();
            };
            if let Some(pos) = readers.iter().position(|r| *r == tid) {
                readers.remove(pos);
            }
            vjoin(rclock, &tclock);
            (0, format!("rwlock#{obj} read-unlock"))
        }
        Op::WriteLock { obj } => {
            let acquired = {
                let ObjState::Rw {
                    writer,
                    readers,
                    wclock,
                    rclock,
                } = &mut st.objs[*obj]
                else {
                    unreachable!("write-lock on non-rwlock object");
                };
                debug_assert!(writer.is_none() && readers.is_empty());
                *writer = Some(tid);
                let mut c = wclock.clone();
                vjoin(&mut c, rclock);
                c
            };
            vjoin(&mut st.threads[tid].clock, &acquired);
            (0, format!("rwlock#{obj} write-lock"))
        }
        Op::WriteUnlock { obj } => {
            let tclock = st.threads[tid].clock.clone();
            let ObjState::Rw { writer, wclock, .. } = &mut st.objs[*obj] else {
                unreachable!();
            };
            *writer = None;
            vjoin(wclock, &tclock);
            (0, format!("rwlock#{obj} write-unlock"))
        }
        Op::CondWait { cond, lock } => {
            let tclock = st.threads[tid].clock.clone();
            {
                let ObjState::Mutex { owner, clock } = &mut st.objs[*lock] else {
                    unreachable!("cond wait with non-mutex lock");
                };
                *owner = None;
                vjoin(clock, &tclock);
            }
            let ObjState::Cond { parked } = &mut st.objs[*cond] else {
                unreachable!("wait on non-cond object");
            };
            parked.push((tid, *lock));
            st.threads[tid].status = Status::Parked;
            (0, format!("cond#{cond} wait (releases mutex#{lock})"))
        }
        Op::NotifyOne { cond } => {
            let n = {
                let ObjState::Cond { parked } = &st.objs[*cond] else {
                    unreachable!("notify on non-cond object");
                };
                parked.len()
            };
            if n == 0 {
                return (0, format!("cond#{cond} notify_one (no waiters)"));
            }
            let k = choose_value(st, n);
            let ObjState::Cond { parked } = &mut st.objs[*cond] else {
                unreachable!();
            };
            let (w, m) = parked.remove(k);
            st.threads[w].status = Status::Pending(Op::Lock { obj: m });
            (0, format!("cond#{cond} notify_one -> T{w}"))
        }
        Op::NotifyAll { cond } => {
            let ObjState::Cond { parked } = &mut st.objs[*cond] else {
                unreachable!("notify on non-cond object");
            };
            let woken = std::mem::take(parked);
            let labels: Vec<String> = woken.iter().map(|(w, _)| format!("T{w}")).collect();
            for (w, m) in woken {
                st.threads[w].status = Status::Pending(Op::Lock { obj: m });
            }
            (
                0,
                format!(
                    "cond#{cond} notify_all -> [{}]",
                    if labels.is_empty() {
                        "no waiters".into()
                    } else {
                        labels.join(", ")
                    }
                ),
            )
        }
        Op::Join { thread } => {
            let jc = st.threads[*thread].clock.clone();
            vjoin(&mut st.threads[tid].clock, &jc);
            (0, format!("join T{thread}"))
        }
    }
}

/// Advances the choice tree to the next unexplored branch; `false` means
/// the space is exhausted.
fn advance(tree: &mut Vec<Node>) -> bool {
    while let Some(last) = tree.last_mut() {
        match last {
            Node::Value { n, chosen } if *chosen + 1 < *n => {
                *chosen += 1;
                return true;
            }
            Node::Sched {
                options, chosen, ..
            } if *chosen + 1 < options.len() => {
                *chosen += 1;
                return true;
            }
            _ => {
                tree.pop();
            }
        }
    }
    false
}

const TABLE_CAP: usize = 600;

fn render_table(trace: &[Event]) -> String {
    let mut out = String::from(" step  thread  event\n");
    let skip = trace.len().saturating_sub(TABLE_CAP);
    if skip > 0 {
        out.push_str(&format!("  ... ({skip} earlier events elided)\n"));
    }
    for (i, e) in trace.iter().enumerate().skip(skip) {
        out.push_str(&format!("{:5}  T{:<5}  {}\n", i + 1, e.tid, e.desc));
    }
    out
}

/// Installs (once) a panic hook that silences the [`Aborted`] unwinds
/// model threads use to abandon an execution.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Aborted>().is_none() {
                default(info);
            }
        }));
    });
}

/// Exhaustively explores `body` under `cfg` and returns the [`Report`]
/// without panicking on failure — the entry point for tests that expect
/// a model to fail (e.g. seeded-bug detection).
///
/// `body` is rerun once per schedule; it must create all model state
/// inside the closure (a model object must not outlive its execution).
/// Set `WILOCATOR_CHECK_SEED=<n>` to stop at DFS execution `n` and print
/// its schedule table — the replay path printed with every failure.
pub fn explore_report<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_abort_hook();
    let body = std::sync::Arc::new(body);
    let seed_replay: Option<usize> = cfg.replay_seed.or_else(|| {
        std::env::var("WILOCATOR_CHECK_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
    });
    let mut tree: Vec<Node> = Vec::new();
    let mut schedules = 0usize;
    let mut events = 0usize;
    let mut failure = None;
    loop {
        if std::env::var_os("WILOCATOR_CHECK_TRACE_RUNS").is_some() {
            eprintln!("[dbg] run #{schedules}");
        }
        let exec = std::sync::Arc::new(Exec::new(cfg.clone(), std::mem::take(&mut tree)));
        let root = exec.register_root();
        let exec2 = exec.clone();
        let body2 = body.clone();
        let handle = std::thread::spawn(move || crate::model::runner(exec2, root, move || body2()));
        let outcome = exec.schedule_loop();
        let _ = handle.join();
        let (trace, new_tree) = exec.take_back();
        let seed = schedules;
        schedules += 1;
        events += trace.len();
        if let RunOutcome::Failed(message) = outcome {
            let table = render_table(&trace);
            eprintln!(
                "[wilocator-check] FAILED at schedule #{seed} after exploring {schedules} schedule(s)\n\
                 [wilocator-check] {message}\n\
                 [wilocator-check] replay: WILOCATOR_CHECK_SEED={seed} cargo test ... (same test, same build)\n\
                 {table}"
            );
            failure = Some(Failure {
                seed,
                message,
                table,
            });
            break;
        }
        if seed_replay == Some(seed) {
            eprintln!(
                "[wilocator-check] schedule #{seed} (WILOCATOR_CHECK_SEED replay, passing):\n{}",
                render_table(&trace)
            );
            break;
        }
        tree = new_tree;
        if !advance(&mut tree) {
            break;
        }
        if schedules >= cfg.max_schedules {
            failure = Some(Failure {
                seed,
                message: format!(
                    "schedule budget exhausted (max_schedules={})",
                    cfg.max_schedules
                ),
                table: String::new(),
            });
            break;
        }
    }
    Report {
        schedules,
        events,
        failure,
    }
}

/// Explores `body` with `cfg` and panics with the failing schedule if
/// the model finds a bug. Returns the report (schedule counts) on
/// success.
pub fn explore_with<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore_report(cfg, body);
    if let Some(f) = &report.failure {
        panic!(
            "model check failed at schedule #{} ({} schedules explored): {}\nreplay: WILOCATOR_CHECK_SEED={}\n{}",
            f.seed, report.schedules, f.message, f.seed, f.table
        );
    }
    report
}

/// [`explore_with`] under the default [`Config`] (preemption bound 2,
/// value window 3).
pub fn explore<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with(Config::default(), body)
}

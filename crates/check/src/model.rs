//! Virtual synchronization primitives.
//!
//! Drop-in stand-ins for `std::sync::{Mutex, RwLock, Condvar}` and the
//! `AtomicU64`/`AtomicUsize`/`AtomicI64` cells, with the same method
//! signatures the production code uses (including `LockResult` returns,
//! so `unpoisoned()` helpers work unchanged). Inside an
//! [`explore`](crate::explore) closure every operation traps into the
//! execution's scheduler; outside one, each type falls back to plain
//! `std` behaviour, so code compiled against the model still runs
//! normally in unit tests and helper threads.
//!
//! Data storage piggybacks on real `std` locks: the virtual protocol
//! serializes ownership first, so the inner `std` lock is uncontended by
//! construction and exists only to hold the `T` safely (the workspace
//! forbids `unsafe`). Model objects are tied to the execution that
//! first observes them — create them *inside* the explore closure;
//! cross-execution reuse panics with a pointed message.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, OnceLock, PoisonError};

use crate::sched::{Aborted, Exec, ObjKind, Op, Tid};

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<Exec>,
    tid: Tid,
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Entry point for every model OS thread (the explore root and each
/// [`thread::spawn`]): installs the scheduler context, rendezvouses for
/// the start event, and converts panics into execution failures (or
/// quiet exits for [`Aborted`] unwinds).
pub(crate) fn runner<F: FnOnce()>(exec: Arc<Exec>, tid: Tid, f: F) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: exec.clone(),
            tid,
        })
    });
    // `begin` must sit inside the unwind guard: if the execution aborts
    // before this thread's start event is granted, the rendezvous exits
    // by an [`Aborted`] panic and `finish` below must still run, or the
    // explorer's drain loop waits on a thread that can never finish.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.begin(tid);
        f()
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(()) => exec.finish(tid),
        Err(payload) => {
            if payload.downcast_ref::<Aborted>().is_some() {
                exec.finish(tid);
            } else {
                exec.fail(tid, panic_message(payload.as_ref()));
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Lazily binds a model object to (execution serial, object id) on first
/// model-context access. `const`-constructible so `Counter::new()` et
/// al. stay `const fn`.
#[derive(Debug, Default)]
struct ModelId {
    cell: OnceLock<(u64, usize)>,
}

impl ModelId {
    const fn new() -> Self {
        ModelId {
            cell: OnceLock::new(),
        }
    }

    fn bind(&self, kind: ObjKind, init: u64) -> Option<(Ctx, usize)> {
        let c = ctx()?;
        let (serial, id) = *self
            .cell
            .get_or_init(|| (c.exec.serial, c.exec.alloc_obj(kind, init)));
        assert!(
            serial == c.exec.serial,
            "model sync object reused across executions — create it inside the explore closure"
        );
        Some((c, id))
    }
}

fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            id: ModelId,
            init: $prim,
            /// Backs the cell outside model executions.
            fallback: $std,
        }

        impl $name {
            /// A cell holding `v` (usable in `const` contexts, like the
            /// `std` type).
            pub const fn new(v: $prim) -> Self {
                $name {
                    id: ModelId::new(),
                    init: v,
                    fallback: <$std>::new(v),
                }
            }

            fn model(&self) -> Option<(Ctx, usize)> {
                self.id.bind(ObjKind::Atomic, self.init as u64)
            }

            /// Loads the value; in a model run this is a scheduling
            /// point and may observe any coherence-allowed store.
            pub fn load(&self, ord: Ordering) -> $prim {
                match self.model() {
                    Some((c, id)) => c.exec.step(c.tid, Op::Load { obj: id, ord }) as $prim,
                    None => self.fallback.load(ord),
                }
            }

            /// Stores `v`.
            pub fn store(&self, v: $prim, ord: Ordering) {
                match self.model() {
                    Some((c, id)) => {
                        c.exec.step(
                            c.tid,
                            Op::Store {
                                obj: id,
                                ord,
                                val: v as u64,
                            },
                        );
                    }
                    None => self.fallback.store(v, ord),
                }
            }

            /// Adds `v`, returning the previous value. RMWs always read
            /// the newest store.
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                match self.model() {
                    Some((c, id)) => c.exec.step(
                        c.tid,
                        Op::Rmw {
                            obj: id,
                            ord,
                            add: v as u64,
                        },
                    ) as $prim,
                    None => self.fallback.fetch_add(v, ord),
                }
            }

            /// Subtracts `v`, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                match self.model() {
                    Some((c, id)) => c.exec.step(
                        c.tid,
                        Op::Rmw {
                            obj: id,
                            ord,
                            add: (v as u64).wrapping_neg(),
                        },
                    ) as $prim,
                    None => self.fallback.fetch_sub(v, ord),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Reading the value here would be a scheduling point;
                // keep Debug inert.
                f.write_str(concat!(stringify!($name), " { .. }"))
            }
        }
    };
}

model_atomic!(
    /// Virtual `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic!(
    /// Virtual `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic!(
    /// Virtual `AtomicI64` (modeled on the two's-complement u64 image).
    AtomicI64,
    std::sync::atomic::AtomicI64,
    i64
);

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Virtual mutex; same shape as `std::sync::Mutex` for the subset the
/// workspace uses.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: ModelId,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex around `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            id: ModelId::new(),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Locks (a scheduling point in model runs; blocking is modeled, so
    /// lock-order deadlocks are *found*, not hit). Never actually
    /// returns `Err`: the model swallows poison like the production
    /// `unpoisoned` helpers do.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = self.id.bind(ObjKind::Mutex, 0);
        if let Some((c, id)) = &model {
            c.exec.step(c.tid, Op::Lock { obj: *id });
        }
        let inner = unpoison(self.inner.lock());
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
            model,
        })
    }

    /// Whether a holder panicked (delegates to the inner lock).
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

/// Guard for [`Mutex`]; releasing is a scheduling point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the inner lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the inner lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner std lock before the virtual unlock so the
        // next virtual owner finds it free.
        drop(self.inner.take());
        if let Some((c, id)) = self.model.take() {
            c.exec.step(c.tid, Op::Unlock { obj: id });
        }
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ctx(T{})", self.tid)
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Virtual reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    id: ModelId,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// An rwlock around `t`.
    pub const fn new(t: T) -> Self {
        RwLock {
            id: ModelId::new(),
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Takes a shared lock (scheduling point; blocks — virtually — while
    /// a writer holds it).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let model = self.id.bind(ObjKind::Rw, 0);
        if let Some((c, id)) = &model {
            c.exec.step(c.tid, Op::ReadLock { obj: *id });
        }
        let inner = unpoison(self.inner.read());
        Ok(RwLockReadGuard {
            inner: Some(inner),
            model,
        })
    }

    /// Takes the exclusive lock (scheduling point; virtually blocks
    /// while readers or a writer hold it).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let model = self.id.bind(ObjKind::Rw, 0);
        if let Some((c, id)) = &model {
            c.exec.step(c.tid, Op::WriteLock { obj: *id });
        }
        let inner = unpoison(self.inner.write());
        Ok(RwLockWriteGuard {
            inner: Some(inner),
            model,
        })
    }

    /// Whether a writer panicked (delegates to the inner lock).
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

/// Shared guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the inner lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((c, id)) = self.model.take() {
            c.exec.step(c.tid, Op::ReadUnlock { obj: id });
        }
    }
}

/// Exclusive guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the inner lock")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the inner lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((c, id)) = self.model.take() {
            c.exec.step(c.tid, Op::WriteUnlock { obj: id });
        }
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Virtual condition variable. No spurious wakeups are modeled (a
/// documented coverage limit — wait loops are still the required idiom
/// because notify choice is explored).
#[derive(Debug, Default)]
pub struct Condvar {
    id: ModelId,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condvar.
    pub const fn new() -> Self {
        Condvar {
            id: ModelId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases `guard`'s mutex, parks until notified, reacquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match (guard.model.take(), self.id.bind(ObjKind::Cond, 0)) {
            (Some((c, mid)), Some((_, cid))) => {
                let lock = guard.lock;
                drop(guard.inner.take());
                drop(guard);
                c.exec.step(
                    c.tid,
                    Op::CondWait {
                        cond: cid,
                        lock: mid,
                    },
                );
                let inner = unpoison(lock.inner.lock());
                Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: Some((c, mid)),
                })
            }
            (model, _) => {
                // Outside a model run: delegate to the std condvar.
                guard.model = model;
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("guard holds the inner lock");
                drop(guard);
                let inner = unpoison(self.inner.wait(std_guard));
                Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: None,
                })
            }
        }
    }

    /// Releases `guard`'s mutex and parks until notified or until `dur`
    /// elapses, then reacquires.
    ///
    /// Model runs have no clock, so the bounded wait is modeled as
    /// timing out *immediately*: the mutex is released and reacquired
    /// (both scheduling points) and `timed_out()` reports `true`. That
    /// is the sound over-approximation — a timeout may always fire
    /// before any notify — and it keeps bounded waits from registering
    /// as deadlocks. Callers must treat `wait_timeout` purely as a
    /// pacing primitive and re-check their predicate in a loop.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match (guard.model.take(), self.id.bind(ObjKind::Cond, 0)) {
            (Some((c, mid)), Some(_)) => {
                let lock = guard.lock;
                // Release the inner std lock before the virtual unlock
                // so the next virtual owner finds it free (same order
                // as MutexGuard::drop).
                drop(guard.inner.take());
                drop(guard);
                c.exec.step(c.tid, Op::Unlock { obj: mid });
                c.exec.step(c.tid, Op::Lock { obj: mid });
                let inner = unpoison(lock.inner.lock());
                Ok((
                    MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: Some((c, mid)),
                    },
                    WaitTimeoutResult { timed_out: true },
                ))
            }
            (model, _) => {
                // Outside a model run: delegate to the std condvar.
                guard.model = model;
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("guard holds the inner lock");
                drop(guard);
                let (inner, res) = unpoison(self.inner.wait_timeout(std_guard, dur));
                Ok((
                    MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: None,
                    },
                    WaitTimeoutResult {
                        timed_out: res.timed_out(),
                    },
                ))
            }
        }
    }

    /// Wakes one waiter (which one is a model choice point).
    pub fn notify_one(&self) {
        match self.id.bind(ObjKind::Cond, 0) {
            Some((c, id)) => {
                c.exec.step(c.tid, Op::NotifyOne { cond: id });
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match self.id.bind(ObjKind::Cond, 0) {
            Some((c, id)) => {
                c.exec.step(c.tid, Op::NotifyAll { cond: id });
            }
            None => self.inner.notify_all(),
        }
    }
}

/// Result of a [`Condvar::wait_timeout`]: whether the wait ended by
/// timeout rather than a notify. Mirrors `std::sync::WaitTimeoutResult`
/// (which has no public constructor, hence the local type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Model-aware threads: inside an explore closure, spawn registers a
/// model thread whose every sync op is scheduled; outside, it is a plain
/// `std::thread::spawn`.
pub mod thread {
    use super::*;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        model: Option<Tid>,
        slot: Arc<std::sync::Mutex<Option<T>>>,
        real: Option<std::thread::JoinHandle<()>>,
    }

    /// Spawns `f`; inside a model run the child participates in
    /// exhaustive scheduling (its start is ordered after the spawn).
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(std::sync::Mutex::new(None));
        let slot2 = slot.clone();
        match ctx() {
            Some(c) => {
                let tid = c.exec.register_child(c.tid);
                let exec = c.exec.clone();
                let real = std::thread::spawn(move || {
                    runner(exec, tid, move || {
                        let v = f();
                        *unpoison(slot2.lock()) = Some(v);
                    })
                });
                JoinHandle {
                    model: Some(tid),
                    slot,
                    real: Some(real),
                }
            }
            None => {
                let real = std::thread::spawn(move || {
                    *unpoison(slot2.lock()) = Some(f());
                });
                JoinHandle {
                    model: None,
                    slot,
                    real: Some(real),
                }
            }
        }
    }

    impl<T> JoinHandle<T> {
        /// Joins the thread; a scheduling point that is enabled only
        /// once the target finished (and a happens-before edge from its
        /// last event).
        pub fn join(mut self) -> std::thread::Result<T> {
            if let (Some(target), Some(c)) = (self.model, ctx()) {
                c.exec.step(c.tid, Op::Join { thread: target });
            }
            let real = self.real.take().expect("join consumes the handle");
            real.join()?;
            match unpoison(self.slot.lock()).take() {
                Some(v) => Ok(v),
                None => Err(Box::new("model thread finished without a result")),
            }
        }
    }
}

//! `wilocator-check`: a deterministic interleaving model checker for
//! WiLocator's hand-rolled concurrency protocols.
//!
//! The query plane's correctness claims — epoch-published snapshots are
//! never torn, readers never block on ingest locks, Relaxed-only obs
//! counters tear only within documented bounds — were prose arguments.
//! This crate verifies them by exhaustive schedule exploration, the
//! dynamic counterpart to the static lock-order rule (lint W007):
//!
//! * [`model`] provides virtual `Mutex`/`RwLock`/`Condvar`/atomics with
//!   `std`-compatible signatures that trap every sync op into a
//!   cooperative scheduler.
//! * [`sync`] is the façade protocol crates import: `std` types
//!   normally, the virtual types under `--cfg wilocator_check` — so the
//!   *production* protocol code is what gets model-checked.
//! * [`explore`]/[`explore_with`]/[`explore_report`] run a closure under
//!   bounded-preemption exhaustive DFS over interleavings (plus a
//!   weak-memory-lite oracle that lets relaxed loads read stale stores),
//!   with sleep-set pruning, deadlock detection, and a seed-replayable
//!   failing-schedule trace (`WILOCATOR_CHECK_SEED=<n>`).
//!
//! ```
//! use wilocator_check::{explore, model};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = explore(|| {
//!     let flag = Arc::new(model::AtomicU64::new(0));
//!     let data = Arc::new(model::AtomicU64::new(0));
//!     let (f2, d2) = (flag.clone(), data.clone());
//!     let t = model::thread::spawn(move || {
//!         d2.store(42, Ordering::Relaxed);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().expect("writer");
//! });
//! assert!(report.schedules > 1);
//! ```
//!
//! See DESIGN.md §14 for the scheduler algorithm, the preemption bound,
//! what is and is not covered, and the replay workflow.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod model;
mod sched;
pub mod sync;

pub use sched::{explore, explore_report, explore_with, Config, Failure, Report};

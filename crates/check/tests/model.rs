//! Model tests for WiLocator's real concurrency protocols.
//!
//! Compiled only under `RUSTFLAGS='--cfg wilocator_check'`: that cfg
//! switches `wilocator-core`'s and `wilocator-obs`'s `crate::sync`
//! façades from `std` to the virtual primitives in
//! [`wilocator_check::model`], so these tests exhaustively explore the
//! *shipping* `SnapshotCell`, publish gate and counter code — not a
//! hand-copied model of it. Each test asserts its protocol invariant in
//! every schedule up to the preemption bound and reports how many
//! schedules that took; the counts are cited next to the memory-ordering
//! choices they pin in `crates/core/src/snapshot.rs` and
//! `crates/obs/src/counter.rs`.
//!
//! Run: `RUSTFLAGS='--cfg wilocator_check' cargo test -p wilocator-check --test model`
//! Replay a printed failure: prepend `WILOCATOR_CHECK_SEED=<n>`.
#![cfg(wilocator_check)]

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

use wilocator_check::{explore_report, explore_with, model, Config};
use wilocator_core::{QuerySnapshot, SnapshotCell};
use wilocator_obs::Counter;

// `std::sync::Arc` on purpose: snapshot reclamation is plain reference
// counting and Arc ops are not scheduling points (see check's sync docs).
use std::sync::Arc;

/// Epoch monotonicity and never-torn reads across ring wraparound: a
/// publisher laps the 2-slot ring (3 publishes) while a reader reads
/// twice. Every schedule must give the reader coherent snapshots with
/// non-decreasing epochs — this is the schedule family that forced the
/// lap-retry loop in `SnapshotCell::read` and pins its `Acquire` epoch
/// load plus the publisher's `Release` epoch store.
#[test]
fn snapshot_reads_are_monotone_and_coherent() {
    let report = explore_with(Config::default(), || {
        let cell = Arc::new(SnapshotCell::new(2));
        let publisher = {
            let cell = cell.clone();
            model::thread::spawn(move || {
                for _ in 0..3 {
                    cell.publish_with(|epoch, prev| {
                        assert_eq!(
                            prev.epoch,
                            epoch - 1,
                            "gate-serialized build saw a stale prev"
                        );
                        QuerySnapshot::stamped(epoch, epoch as f64)
                    });
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..2 {
            let snap = cell.read();
            assert!(snap.is_coherent(), "torn snapshot at epoch {}", snap.epoch);
            assert!(
                snap.epoch >= last,
                "per-reader epoch regressed: {} after {last}",
                snap.epoch
            );
            last = snap.epoch;
        }
        publisher.join().expect("publisher");
        assert_eq!(cell.epoch(), 3);
    });
    eprintln!(
        "[model] snapshot_reads_are_monotone_and_coherent: {} schedules, {} events",
        report.schedules, report.events
    );
    assert!(
        report.schedules >= 100,
        "wraparound protocol explored too few schedules ({}) to mean anything",
        report.schedules
    );
}

/// The schedule the retry loop exists for, demonstrated on a faithful
/// copy of the *pre-retry* `read()`: load epoch, then clone the slot
/// with no lap check. A publisher that laps the ring between those two
/// instructions hands the reader a newer snapshot than its loaded
/// epoch, and the reader's next read can return an older one — the
/// checker must find that regression.
#[test]
fn lapped_reader_would_regress_without_retry() {
    struct NoRetryCell {
        epoch: model::AtomicU64,
        slots: Vec<model::RwLock<Arc<QuerySnapshot>>>,
        gate: model::Mutex<()>,
    }
    impl NoRetryCell {
        fn new() -> Self {
            let empty = Arc::new(QuerySnapshot::empty());
            NoRetryCell {
                epoch: model::AtomicU64::new(0),
                slots: (0..2).map(|_| model::RwLock::new(empty.clone())).collect(),
                gate: model::Mutex::new(()),
            }
        }
        fn read(&self) -> Arc<QuerySnapshot> {
            let idx = (self.epoch.load(Ordering::Acquire) as usize) % self.slots.len();
            Arc::clone(&self.slots[idx].read().expect("slot"))
        }
        fn publish(&self) {
            let _gate = self.gate.lock().expect("gate");
            let next = self.epoch.load(Ordering::Relaxed) + 1;
            let idx = (next as usize) % self.slots.len();
            *self.slots[idx].write().expect("slot") =
                Arc::new(QuerySnapshot::stamped(next, next as f64));
            self.epoch.store(next, Ordering::Release);
        }
    }
    let report = explore_report(Config::default(), || {
        let cell = Arc::new(NoRetryCell::new());
        let publisher = {
            let cell = cell.clone();
            model::thread::spawn(move || {
                for _ in 0..3 {
                    cell.publish();
                }
            })
        };
        let first = cell.read();
        let second = cell.read();
        assert!(
            second.epoch >= first.epoch,
            "per-reader epoch regressed: {} after {}",
            second.epoch,
            first.epoch
        );
        publisher.join().expect("publisher");
    });
    let failure = report
        .failure
        .expect("lapped reader must regress without the retry");
    assert!(
        failure.message.contains("regressed"),
        "unexpected failure: {}",
        failure.message
    );
    eprintln!(
        "[model] lapped_reader_would_regress_without_retry: regression at seed {} of {}",
        failure.seed, report.schedules
    );
}

/// Publisher mutual exclusion and exact epoch accounting: two publishers
/// race on the gate; a virtual occupancy flag inside the builder proves
/// no schedule ever runs two builders at once, and each builder sees
/// exactly the previous epoch. This test pins the `Relaxed` epoch load
/// in `publish_with` — the gate's lock edge alone orders publisher
/// against publisher in every explored schedule.
#[test]
fn publish_gate_serializes_and_epoch_is_exact() {
    let report = explore_with(Config::default(), || {
        let cell = Arc::new(SnapshotCell::new(2));
        let in_builder = Arc::new(model::AtomicU64::new(0));
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                let flag = in_builder.clone();
                model::thread::spawn(move || {
                    cell.publish_with(|epoch, prev| {
                        assert_eq!(
                            flag.fetch_add(1, Ordering::Relaxed),
                            0,
                            "two publishers inside the gate"
                        );
                        assert_eq!(prev.epoch, epoch - 1, "builder saw a stale prev");
                        flag.fetch_sub(1, Ordering::Relaxed);
                        QuerySnapshot::stamped(epoch, epoch as f64)
                    });
                })
            })
            .collect();
        for p in publishers {
            p.join().expect("publisher");
        }
        assert_eq!(cell.epoch(), 2, "publishes lost or double-counted");
    });
    eprintln!(
        "[model] publish_gate_serializes_and_epoch_is_exact: {} schedules, {} events",
        report.schedules, report.events
    );
    // Few schedules is the point: once one publisher owns the gate the
    // other is disabled, so the only branching is gate order, join
    // interleaving and epoch-load value choices.
    assert!(report.schedules >= 10, "explored {}", report.schedules);
}

/// The PR-6 read-path contract, as an executable statement: a reader
/// completes `SnapshotCell::read` while an ingest shard's write lock is
/// held (and never released until the reader is done). If any schedule
/// had the reader touch that lock, the checker would report the
/// deadlock; all schedules completing proves the read path is
/// ingest-lock-free.
#[test]
fn readers_never_block_on_ingest_locks() {
    let report = explore_with(Config::default(), || {
        // Stand-in for a `server.rs` shard lock, same primitive type.
        let shard = Arc::new(model::RwLock::new(0u64));
        let cell = Arc::new(SnapshotCell::new(2));
        cell.publish_with(|epoch, _| QuerySnapshot::stamped(epoch, 0.0));
        let reader = {
            let cell = cell.clone();
            model::thread::spawn(move || {
                let snap = cell.read();
                assert_eq!(snap.epoch, 1);
                assert!(snap.is_coherent());
            })
        };
        // Take the shard write lock while the reader is in flight, and
        // join while still holding it: the reader can only finish if its
        // path never touches the ingest lock.
        let ingest_guard = shard.write().expect("ingest writer");
        reader.join().expect("reader");
        drop(ingest_guard);
    });
    eprintln!(
        "[model] readers_never_block_on_ingest_locks: {} schedules, {} events",
        report.schedules, report.events
    );
}

/// `wilocator-obs` counters under the real all-`Relaxed` code: lone
/// counters stay exact (RMW atomicity) and monotone per reader
/// (same-location coherence) in every schedule.
#[test]
fn relaxed_counter_is_exact_and_monotone() {
    let report = explore_with(Config::default(), || {
        let hits = Arc::new(Counter::new());
        let incs: Vec<_> = (0..2)
            .map(|_| {
                let hits = hits.clone();
                model::thread::spawn(move || hits.inc())
            })
            .collect();
        let watcher = {
            let hits = hits.clone();
            model::thread::spawn(move || {
                let first = hits.get();
                let second = hits.get();
                assert!(second >= first, "counter regressed: {second} after {first}");
            })
        };
        for t in incs {
            t.join().expect("incrementer");
        }
        watcher.join().expect("watcher");
        assert_eq!(hits.get(), 2, "relaxed RMW lost an increment");
    });
    eprintln!(
        "[model] relaxed_counter_is_exact_and_monotone: {} schedules, {} events",
        report.schedules, report.events
    );
}

/// The documented tearing bound of relaxed metrics, verified in both
/// directions: a scrape CAN observe a later counter's increment without
/// an earlier one (the checker must reach that schedule — it is the
/// cross-counter reordering `Relaxed` gives up), and totals are still
/// exact once writers are joined.
#[test]
fn relaxed_metrics_tear_within_documented_bound() {
    let seen: Arc<StdMutex<HashSet<(u64, u64)>>> = Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = seen.clone();
    let report = explore_with(Config::default(), move || {
        let ingested = Arc::new(Counter::new());
        let published = Arc::new(Counter::new());
        let writer = {
            let (a, b) = (ingested.clone(), published.clone());
            model::thread::spawn(move || {
                a.inc(); // writers bump "ingested" strictly before "published"
                b.inc();
            })
        };
        let scraped_published = published.get();
        let scraped_ingested = ingested.get();
        seen2
            .lock()
            .expect("observation set")
            .insert((scraped_published, scraped_ingested));
        writer.join().expect("writer");
        assert_eq!(ingested.get(), 1);
        assert_eq!(published.get(), 1);
    });
    let seen = seen.lock().expect("observation set");
    assert!(
        seen.contains(&(1, 0)),
        "checker never reached the documented tear (published=1, ingested=0); observed {seen:?}"
    );
    assert!(
        seen.contains(&(0, 0)) && seen.contains(&(1, 1)),
        "missing trivial schedules: {seen:?}"
    );
    eprintln!(
        "[model] relaxed_metrics_tear_within_documented_bound: {} schedules, observations {:?}",
        report.schedules, *seen
    );
}

/// A faithful copy of `publish_with` with the seeded bug from ISSUE 8 —
/// the epoch is bumped *before* the slot write — plus the pre-retry
/// reader. The checker must catch the torn window, and replaying the
/// printed seed must reproduce the identical schedule table.
#[test]
fn buggy_publish_order_is_caught_and_replays() {
    struct BuggyCell {
        epoch: model::AtomicU64,
        slots: Vec<model::RwLock<Arc<QuerySnapshot>>>,
        gate: model::Mutex<()>,
    }
    impl BuggyCell {
        fn new() -> Self {
            let empty = Arc::new(QuerySnapshot::empty());
            BuggyCell {
                epoch: model::AtomicU64::new(0),
                slots: (0..2).map(|_| model::RwLock::new(empty.clone())).collect(),
                gate: model::Mutex::new(()),
            }
        }
        fn publish(&self) {
            let _gate = self.gate.lock().expect("gate");
            let next = self.epoch.load(Ordering::Relaxed) + 1;
            // BUG (deliberate): the epoch advertises the snapshot before
            // the slot holds it.
            self.epoch.store(next, Ordering::Release);
            let idx = (next as usize) % self.slots.len();
            *self.slots[idx].write().expect("slot") =
                Arc::new(QuerySnapshot::stamped(next, next as f64));
        }
    }
    let body = || {
        let cell = Arc::new(BuggyCell::new());
        let publisher = {
            let cell = cell.clone();
            model::thread::spawn(move || cell.publish())
        };
        let advertised = cell.epoch.load(Ordering::Acquire);
        let idx = (advertised as usize) % cell.slots.len();
        let snap = Arc::clone(&cell.slots[idx].read().expect("slot"));
        assert!(
            snap.epoch >= advertised,
            "slot holds epoch {} but the cell advertised {advertised}",
            snap.epoch
        );
        publisher.join().expect("publisher");
    };
    let first = explore_report(Config::default(), body);
    let failure = first
        .failure
        .expect("epoch-before-slot-write must be caught");
    assert!(
        failure.message.contains("advertised"),
        "{}",
        failure.message
    );
    assert!(
        failure.table.contains("store 1"),
        "table shows the early epoch store"
    );

    // Deterministic replay from the printed seed: drive the replay-seed
    // path explore_report wires to WILOCATOR_CHECK_SEED.
    let replay = explore_report(
        Config {
            replay_seed: Some(failure.seed),
            ..Config::default()
        },
        body,
    );
    let refound = replay.failure.expect("replay must reproduce the failure");
    assert_eq!(refound.seed, failure.seed, "replay diverged in seed");
    assert_eq!(refound.table, failure.table, "replay diverged in schedule");
    eprintln!(
        "[model] buggy_publish_order_is_caught_and_replays: seed {} of {} schedules",
        failure.seed, first.schedules
    );
}

//! Self-tests for the checker on small hand-built protocols with known
//! answers: the model must find real races/deadlocks, must not flag
//! correct synchronization, and must replay deterministically.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use wilocator_check::{explore, explore_report, explore_with, model, Config};

/// Release/acquire message passing is correct: the reader that observes
/// the flag must observe the data. No schedule may fail.
#[test]
fn release_acquire_message_passing_passes() {
    let report = explore(|| {
        let data = Arc::new(model::AtomicU64::new(0));
        let flag = Arc::new(model::AtomicU64::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = model::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data after acquire");
        }
        t.join().expect("writer");
    });
    assert!(report.failure.is_none());
    // Stale flag reads and both interleavings must both be explored.
    assert!(report.schedules >= 3, "explored {}", report.schedules);
}

/// The same protocol with a Relaxed flag store is broken: some schedule
/// observes the flag but stale data. The checker must find it.
#[test]
fn relaxed_message_passing_fails() {
    let report = explore_report(Config::default(), || {
        let data = Arc::new(model::AtomicU64::new(0));
        let flag = Arc::new(model::AtomicU64::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = model::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data read");
        }
        t.join().expect("writer");
    });
    let failure = report.failure.expect("relaxed message passing must fail");
    assert!(
        failure.message.contains("stale data read"),
        "{}",
        failure.message
    );
    assert!(
        failure.table.contains("[stale]"),
        "trace should mark the stale read"
    );
}

/// Mutual exclusion via the virtual mutex: lock-protected increments
/// never lose updates, in every schedule.
#[test]
fn mutex_counter_is_exact() {
    let report = explore(|| {
        let n = Arc::new(model::Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n2 = n.clone();
                model::thread::spawn(move || {
                    let mut g = n2.lock().expect("model lock never errors");
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer");
        }
        assert_eq!(*n.lock().expect("model lock never errors"), 2);
    });
    assert!(report.failure.is_none());
    assert!(report.schedules >= 2);
}

/// AB/BA lock order deadlocks in some schedule; the checker must report
/// it as a deadlock with both threads named.
#[test]
fn lock_order_deadlock_is_found() {
    let report = explore_report(Config::default(), || {
        let a = Arc::new(model::Mutex::new(()));
        let b = Arc::new(model::Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = model::thread::spawn(move || {
            let _ga = a2.lock().expect("lock a");
            let _gb = b2.lock().expect("lock b");
        });
        let _gb = b.lock().expect("lock b");
        let _ga = a.lock().expect("lock a");
        drop((_ga, _gb));
        t.join().expect("other");
    });
    let failure = report.failure.expect("AB/BA must deadlock somewhere");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// RwLock: writers exclude each other and all readers; torn state is
/// impossible. Two writers and a reader over a two-field invariant.
#[test]
fn rwlock_excludes_writers_from_readers() {
    let report = explore(|| {
        let pair = Arc::new(model::RwLock::new((0u64, 0u64)));
        let w = {
            let p = pair.clone();
            model::thread::spawn(move || {
                let mut g = p.write().expect("write lock");
                g.0 += 1;
                g.1 += 1;
            })
        };
        {
            let g = pair.read().expect("read lock");
            assert_eq!(g.0, g.1, "reader saw a half-applied write");
        }
        w.join().expect("writer");
    });
    assert!(report.failure.is_none());
}

/// Condvar: the standard predicate-loop handoff completes in every
/// schedule (notify choice and wakeup interleavings explored).
#[test]
fn condvar_handoff_completes() {
    let report = explore(|| {
        let state = Arc::new((model::Mutex::new(false), model::Condvar::new()));
        let s2 = state.clone();
        let t = model::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock().expect("notifier lock");
            *g = true;
            cv.notify_one();
            drop(g);
        });
        let (m, cv) = &*state;
        let mut g = m.lock().expect("waiter lock");
        while !*g {
            g = cv.wait(g).expect("wait");
        }
        drop(g);
        t.join().expect("notifier");
    });
    assert!(report.failure.is_none());
    assert!(report.schedules >= 2);
}

/// A naked wait with no predicate loses the wakeup when notify runs
/// first — the checker must catch the lost-wakeup deadlock.
#[test]
fn lost_wakeup_is_found() {
    let report = explore_report(Config::default(), || {
        let state = Arc::new((model::Mutex::new(()), model::Condvar::new()));
        let s2 = state.clone();
        let t = model::thread::spawn(move || {
            let (m, cv) = &*s2;
            let _g = m.lock().expect("notifier lock");
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let g = m.lock().expect("waiter lock");
        // BUG (deliberate): no predicate — if notify_one already ran,
        // this parks forever.
        let g = cv.wait(g).expect("wait");
        drop(g);
        t.join().expect("notifier");
    });
    let failure = report.failure.expect("naked wait must lose a wakeup");
    assert!(
        failure.message.contains("deadlock") && failure.message.contains("parked"),
        "{}",
        failure.message
    );
}

/// Failures replay deterministically: two independent explorations of
/// the same broken model produce the same seed and the same schedule
/// table.
#[test]
fn failing_schedule_replays_deterministically() {
    let broken = || {
        explore_report(Config::default(), || {
            let a = Arc::new(model::AtomicU64::new(0));
            let b = Arc::new(model::AtomicU64::new(0));
            let (a2, b2) = (a.clone(), b.clone());
            let t = model::thread::spawn(move || {
                a2.store(1, Ordering::Relaxed);
                b2.store(1, Ordering::Relaxed);
            });
            let rb = b.load(Ordering::Relaxed);
            let ra = a.load(Ordering::Relaxed);
            assert!(!(rb == 1 && ra == 0), "saw b=1 before a=1");
            t.join().expect("writer");
        })
    };
    let first = broken().failure.expect("reordering must be observable");
    let second = broken().failure.expect("same model, same result");
    assert_eq!(first.seed, second.seed, "seed must be deterministic");
    assert_eq!(first.table, second.table, "trace must be deterministic");
    assert!(first.table.contains("thread"), "table has a header");
}

/// Sleep sets prune commuting interleavings: two threads touching
/// disjoint objects need far fewer schedules than the naive 2-thread
/// interleaving count, and still complete.
#[test]
fn independent_ops_are_pruned() {
    let report = explore(|| {
        let a = Arc::new(model::AtomicU64::new(0));
        let b = Arc::new(model::AtomicU64::new(0));
        let a2 = a.clone();
        let t = model::thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
            a2.store(2, Ordering::Relaxed);
        });
        b.store(1, Ordering::Relaxed);
        b.store(2, Ordering::Relaxed);
        t.join().expect("other");
    });
    assert!(report.failure.is_none());
    // Unpruned, 2 threads × 2 ops each would give C(4,2)=6 orders times
    // join/start scheduling; sleep sets should cut well below that.
    assert!(
        report.schedules <= 6,
        "expected pruning, got {}",
        report.schedules
    );
}

/// The preemption bound caps exploration: bound 0 explores only
/// run-to-completion schedules (plus forced switches).
#[test]
fn preemption_bound_zero_is_tiny() {
    let cfg = Config {
        preemption_bound: 0,
        ..Config::default()
    };
    let counted = Arc::new(StdMutex::new(0usize));
    let c2 = counted.clone();
    let report = explore_with(cfg, move || {
        *c2.lock().expect("count") += 1;
        let a = Arc::new(model::AtomicU64::new(0));
        let a2 = a.clone();
        let t = model::thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
        });
        let _ = a.load(Ordering::Relaxed);
        t.join().expect("other");
    });
    assert!(report.failure.is_none());
    let runs = *counted.lock().expect("count");
    assert_eq!(runs, report.schedules);
    assert!(
        report.schedules <= 4,
        "bound 0 blew up: {}",
        report.schedules
    );
}

/// Model types degrade to plain std behaviour outside explore().
#[test]
fn fallback_mode_works_without_scheduler() {
    let a = model::AtomicU64::new(7);
    assert_eq!(a.load(Ordering::SeqCst), 7);
    a.store(9, Ordering::SeqCst);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
    let m = model::Mutex::new(5u32);
    *m.lock().expect("std fallback lock") += 1;
    assert_eq!(*m.lock().expect("std fallback lock"), 6);
    let rw = model::RwLock::new(1u32);
    assert_eq!(*rw.read().expect("std fallback read"), 1);
    *rw.write().expect("std fallback write") = 2;
    assert_eq!(*rw.read().expect("std fallback read"), 2);
    let t = model::thread::spawn(|| 40 + 2);
    assert_eq!(t.join().expect("plain thread"), 42);
}

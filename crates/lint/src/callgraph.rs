//! Phase 2 of the workspace analyzer: graph rules over the symbol table.
//!
//! * **W007 `lock_order`** — derive the partial order of lock
//!   acquisitions: an edge `A → B` means some execution point holds `A`
//!   while acquiring `B`, either directly or through a call whose callee
//!   (transitively) acquires `B`. Any cycle in that graph is two code
//!   paths that can deadlock each other; the rule reports the cycle with
//!   one witness site per edge.
//! * **W009 `transitive_panic`** — any path from a `pub` entry point of
//!   a serving crate to a panic site in a callee. W002 sees only the
//!   entry point's own body; this closes the gap for panics that live
//!   two or three calls down, typically in the deterministic geometry
//!   crates the serving path leans on.
//!
//! Call edges resolve by callee name against the symbol table with a
//! precision ladder (see [`resolve`]): `Type::name(…)` resolves by impl
//! owner, bare names on the std-alike stoplist (`new`, `get`, `iter`, …)
//! never resolve, and an ambiguous bare name prefers same-crate
//! candidates before going workspace-wide — over-approximate in the
//! right direction for both rules, with the pragma escape hatch for the
//! rare false positive.

use crate::diag::{Rule, Violation};
use crate::pragma::PragmaSet;
use crate::symbols::{CallSite, FnSym, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Callee names that are overwhelmingly std/container methods: resolving
/// them by bare name would wire half the workspace to the other half.
/// Workspace functions sharing one of these names are reached only from
/// within their own analysis (their bodies are still scanned directly).
const STOPLIST: &[&str] = &[
    "abs",
    "add",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "dedup_by_key",
    "default",
    "drain",
    "drop",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "log10",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "new",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "partition_point",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_back",
    "push_str",
    "read",
    "remove",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sqrt",
    "sum",
    "take",
    "then",
    "then_some",
    "then_with",
    "to_owned",
    "to_string",
    "to_vec",
    "total_cmp",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "zip",
];

/// Resolves a call site to candidate function indices.
///
/// Precision ladder:
/// 1. A `Type::name(…)` call resolves against impl owners — to exactly
///    the workspace functions implemented on `Type`, or to nothing when
///    `Type` is foreign (std, a dependency). Qualified calls beat the
///    stoplist: the qualifier already disambiguates.
/// 2. An unqualified stoplisted name never resolves.
/// 3. Otherwise, candidates in the caller's own crate win; only a name
///    with no same-crate candidate resolves workspace-wide. This is what
///    keeps `.inc()` in `core` from wiring the call graph through every
///    `inc` in the tree.
pub fn resolve(table: &SymbolTable, caller: &FnSym, call: &CallSite) -> Vec<usize> {
    let Some(candidates) = table.by_name.get(&call.callee) else {
        return Vec::new();
    };
    if !call.quals.is_empty() {
        let owned: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&j| {
                table.fns[j]
                    .owner
                    .as_ref()
                    .is_some_and(|o| call.quals.contains(o))
            })
            .collect();
        // Same-named types in two crates: the caller's crate wins.
        let local: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|&j| table.fns[j].krate == caller.krate)
            .collect();
        return if local.is_empty() { owned } else { local };
    }
    if STOPLIST.binary_search(&call.callee.as_str()).is_ok() {
        return Vec::new();
    }
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&j| table.fns[j].krate == caller.krate)
        .collect();
    if same_crate.is_empty() {
        candidates.clone()
    } else {
        same_crate
    }
}

/// The set of lock classes each function may acquire, directly or
/// transitively — a fixpoint over the call graph.
fn transitive_acquires(table: &SymbolTable) -> Vec<BTreeSet<String>> {
    let mut acq: Vec<BTreeSet<String>> = table
        .fns
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..table.fns.len() {
            let mut gained: Vec<String> = Vec::new();
            for call in &table.fns[i].calls {
                for j in resolve(table, &table.fns[i], call) {
                    for class in &acq[j] {
                        if !acq[i].contains(class) {
                            gained.push(class.clone());
                        }
                    }
                }
            }
            if !gained.is_empty() {
                acq[i].extend(gained);
                changed = true;
            }
        }
        if !changed {
            return acq;
        }
    }
}

/// One lock-order edge with its witness site.
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    acquired: String,
    file: String,
    line: usize,
    /// Witness description for the diagnostic.
    via: String,
}

pub fn w007_lock_order(table: &SymbolTable, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    let acq = transitive_acquires(table);

    // Edge set, first-witness-wins with deterministic iteration order.
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let add = |edges: &mut BTreeMap<(String, String), LockEdge>, e: LockEdge| {
        let key = (e.held.clone(), e.acquired.clone());
        let replace = match edges.get(&key) {
            None => true,
            Some(old) => (e.file.as_str(), e.line) < (old.file.as_str(), old.line),
        };
        if replace {
            edges.insert(key, e);
        }
    };
    for f in &table.fns {
        for a in &f.acquires {
            for held in &a.held {
                add(
                    &mut edges,
                    LockEdge {
                        held: held.clone(),
                        acquired: a.class.clone(),
                        file: f.file.clone(),
                        line: a.line,
                        via: format!("`{}` acquires `{}`", f.name, a.class),
                    },
                );
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for j in resolve(table, f, call) {
                for class in &acq[j] {
                    for held in &call.held {
                        add(
                            &mut edges,
                            LockEdge {
                                held: held.clone(),
                                acquired: class.clone(),
                                file: f.file.clone(),
                                line: call.line,
                                via: format!(
                                    "`{}` calls `{}`, which acquires `{}`",
                                    f.name, call.callee, class
                                ),
                            },
                        );
                    }
                }
            }
        }
    }

    // Cycle detection over the class graph. Every cycle is reported once,
    // canonicalized by its lexicographically-smallest rotation.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let classes: BTreeSet<&String> = edges.keys().map(|(h, _)| h).collect();
    for &start in &classes {
        // BFS back to `start` over the edge relation.
        let mut queue: VecDeque<Vec<&String>> = VecDeque::new();
        queue.push_back(vec![start]);
        let mut visited: BTreeSet<&String> = BTreeSet::new();
        while let Some(path) = queue.pop_front() {
            let last = *path.last().unwrap_or(&start);
            for ((held, acquired), _) in edges.range((last.clone(), String::new())..) {
                if held != last {
                    break;
                }
                if acquired == start {
                    let mut cycle: Vec<String> = path.iter().map(|s| (*s).clone()).collect();
                    cycle.push(start.clone());
                    report_cycle(&cycle, &edges, pragmas, &mut reported, out);
                } else if !visited.contains(acquired) {
                    if let Some(next) = classes.get(acquired) {
                        visited.insert(next);
                        let mut p = path.clone();
                        p.push(next);
                        queue.push_back(p);
                    }
                }
            }
        }
    }
}

/// Reports one canonical cycle unless a pragma on any of its witness
/// lines suppresses it.
fn report_cycle(
    cycle: &[String],
    edges: &BTreeMap<(String, String), LockEdge>,
    pragmas: &mut PragmaSet,
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Violation>,
) {
    // `cycle` is [a, …, a]; canonical form rotates the body so the
    // smallest class leads.
    let body = &cycle[..cycle.len() - 1];
    let Some(min_pos) = body
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
    else {
        return;
    };
    let canon: Vec<String> = body[min_pos..]
        .iter()
        .chain(body[..min_pos].iter())
        .cloned()
        .collect();
    if !reported.insert(canon.clone()) {
        return;
    }
    // Collect the witness edge for each hop.
    let mut hops: Vec<&LockEdge> = Vec::new();
    for i in 0..canon.len() {
        let held = &canon[i];
        let acquired = &canon[(i + 1) % canon.len()];
        match edges.get(&(held.clone(), acquired.clone())) {
            Some(e) => hops.push(e),
            None => return,
        }
    }
    // A pragma on any witness line dissolves the cycle (and is thereby
    // used, in the W005 sense).
    for hop in &hops {
        if pragmas.allows(Rule::LockOrder, &hop.file, hop.line) {
            return;
        }
    }
    let order = canon
        .iter()
        .chain(canon.first())
        .map(|c| format!("`{c}`"))
        .collect::<Vec<_>>()
        .join(" → ");
    let witness = hops
        .iter()
        .map(|h| format!("{} ({}:{})", h.via, h.file, h.line))
        .collect::<Vec<_>>()
        .join("; ");
    let site = hops
        .iter()
        .min_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)))
        .map(|h| (h.file.clone(), h.line))
        .unwrap_or_default();
    out.push(
        Violation::new(
            Rule::LockOrder,
            &site.0,
            site.1,
            format!("lock-order cycle: {order} — {witness}"),
        )
        .with_note(
            "two paths acquire these locks in opposite order and can deadlock under load; \
             pick one global order (directory before shard, shard before ring), or add \
             `// lint: allow(lock_order) — <why the orders cannot interleave>` at a witness site",
        ),
    );
}

// ---------------------------------------------------------------------------
// W009: transitive panic paths
// ---------------------------------------------------------------------------

pub fn w009_transitive_panic(
    table: &SymbolTable,
    pragmas: &mut PragmaSet,
    out: &mut Vec<Violation>,
) {
    // Entry points: `pub fn` in serving-crate files.
    let entries: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_pub && f.serving)
        .map(|(i, _)| i)
        .collect();

    // BFS from each entry, remembering the first (shortest, then
    // lexicographically stable) call path to every reachable function.
    // A panic site is reported once, with the first entry path found.
    struct Finding<'a> {
        entry: &'a FnSym,
        path: Vec<String>,
        what: String,
    }
    let mut findings: BTreeMap<(String, usize), Finding<'_>> = BTreeMap::new();
    for &e in &entries {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(e);
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(e);
        while let Some(i) = queue.pop_front() {
            // Panic sites in callees only: the entry's own body is W002's
            // jurisdiction (and its file may not even be a serving crate).
            if i != e {
                for p in &table.fns[i].panics {
                    let key = (table.fns[i].file.clone(), p.line);
                    if findings.contains_key(&key) {
                        continue;
                    }
                    let mut path = vec![table.fns[i].name.clone()];
                    let mut cur = i;
                    while let Some(&prev) = parent.get(&cur) {
                        path.push(table.fns[prev].name.clone());
                        cur = prev;
                        if cur == e {
                            break;
                        }
                    }
                    path.reverse();
                    findings.insert(
                        key,
                        Finding {
                            entry: &table.fns[e],
                            path,
                            what: p.what.clone(),
                        },
                    );
                }
            }
            for call in &table.fns[i].calls {
                for j in resolve(table, &table.fns[i], call) {
                    if seen.insert(j) {
                        parent.insert(j, i);
                        queue.push_back(j);
                    }
                }
            }
        }
    }

    for ((file, line), finding) in findings {
        // Either slug suppresses at the site: a documented local panic
        // invariant (`panic_in_library`) covers its transitive callers.
        if pragmas.allows(Rule::TransitivePanic, &file, line)
            || pragmas.allows(Rule::PanicInLibrary, &file, line)
        {
            continue;
        }
        let chain = finding.path.join("` → `");
        out.push(
            Violation::new(
                Rule::TransitivePanic,
                &file,
                line,
                format!(
                    "`{}` here is reachable from pub serving entry point `{}` via `{chain}`",
                    finding.what, finding.entry.name
                ),
            )
            .with_note(
                "a panic below a serving entry point aborts the request (or poisons the shard lock); \
                 return an error up the chain, make the invariant explicit with \
                 `// lint: allow(transitive_panic) — <invariant>`, or restructure",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use crate::rules::FileContext;
    use crate::symbols::SymbolTable;

    fn run_w007(src: &str) -> Vec<Violation> {
        let file = SourceFile::parse("crates/core/src/t.rs", src);
        let files = vec![(file, FileContext::all())];
        let table = SymbolTable::build(&files);
        let sources: Vec<&SourceFile> = files.iter().map(|(f, _)| f).collect();
        let mut pragmas = PragmaSet::collect(sources);
        let mut out = Vec::new();
        w007_lock_order(&table, &mut pragmas, &mut out);
        out
    }

    #[test]
    fn opposite_orders_cycle() {
        let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
    }
}
";
        let v = run_w007(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("lock-order cycle"));
        assert!(v[0].message.contains("core::a") && v[0].message.contains("core::b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
    fn ab2(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
    }
}
";
        assert!(run_w007(src).is_empty());
    }

    #[test]
    fn cycle_through_call_edge() {
        let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    fn outer(&self) {
        let ga = self.a.lock();
        self.takes_b_then_a();
    }
    fn takes_b_then_a(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
    }
}
";
        let v = run_w007(src);
        assert!(!v.is_empty(), "call-edge cycle not found");
    }

    fn run_w009(src: &str) -> Vec<Violation> {
        let file = SourceFile::parse("crates/core/src/t.rs", src);
        let files = vec![(file, FileContext::all())];
        let table = SymbolTable::build(&files);
        let sources: Vec<&SourceFile> = files.iter().map(|(f, _)| f).collect();
        let mut pragmas = PragmaSet::collect(sources);
        let mut out = Vec::new();
        w009_transitive_panic(&table, &mut pragmas, &mut out);
        out
    }

    #[test]
    fn panic_two_calls_down_is_found() {
        let src = "\
pub fn serve(x: u32) -> u32 { middle(x) }
fn middle(x: u32) -> u32 { deep(x) }
fn deep(x: u32) -> u32 { maybe(x).unwrap() }
";
        let v = run_w009(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("serve"));
        assert!(v[0].message.contains("deep"));
    }

    #[test]
    fn local_panic_is_w002_territory() {
        let src = "pub fn serve(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(run_w009(src).is_empty());
    }

    #[test]
    fn stoplisted_names_do_not_resolve() {
        let src = "\
pub fn serve(v: Vec<u32>) -> u32 { v.get(0).copied().unwrap_or(0) }
fn get(x: u32) -> u32 { panic!(\"not me\") }
";
        assert!(run_w009(src).is_empty());
    }
}

//! W004: accounting exhaustiveness.
//!
//! The serving path promises complete metrics accounting: every ingest
//! report lands in exactly one outcome counter, and every positioning fix
//! lands in exactly one method counter. Concretely, every variant of the
//! accounted enums (`IngestOutcome`, `FixMethod`) must appear in at least
//! one *accounting match arm* — an arm that increments a counter — and
//! all its accounting arms must agree on a single counter family.
//!
//! The checker parses enum definitions from source (so adding a variant
//! without wiring its counter fails CI) and cross-references
//! `EnumName::Variant =>` match arms against `.inc()` / `.add(` call
//! sites inside the arm.

use crate::diag::{Rule, Violation};
use crate::lexer::{is_ident_char, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Enums whose variants must be exhaustively accounted.
pub const ACCOUNTED_ENUMS: [&str; 2] = ["IngestOutcome", "FixMethod"];

/// How many lines past the `=>` to scan for the arm's counter increment.
/// Single-expression arms hit on the same line; block arms within a few.
const ARM_WINDOW: usize = 3;

#[derive(Debug, Default)]
struct EnumInfo {
    /// File and 1-based line of the `enum` definition.
    def_site: Option<(String, usize)>,
    variants: Vec<String>,
    /// variant -> set of counter field names seen in accounting arms.
    counters: BTreeMap<String, BTreeSet<String>>,
}

pub fn w004_accounting(files: &[&SourceFile], out: &mut Vec<Violation>) {
    let mut enums: BTreeMap<&str, EnumInfo> = BTreeMap::new();
    for name in ACCOUNTED_ENUMS {
        enums.insert(name, EnumInfo::default());
    }

    // Pass 1: find enum definitions and collect variants.
    for file in files {
        for name in ACCOUNTED_ENUMS {
            let needle = format!("enum {name}");
            for (idx, line) in file.lines.iter().enumerate() {
                if !line.code.contains(&needle) || line.is_test {
                    continue;
                }
                let info = enums.get_mut(name).expect("preseeded enum map");
                info.def_site = Some((file.path.clone(), idx + 1));
                info.variants = parse_variants(file, idx);
            }
        }
    }

    // Pass 2: find accounting match arms.
    for file in files {
        for name in ACCOUNTED_ENUMS {
            let needle = format!("{name}::");
            for (idx, line) in file.lines.iter().enumerate() {
                if line.is_test {
                    continue;
                }
                let code = &line.code;
                // Only match arms: `EnumName::Variant … =>`.
                if !code.contains(&needle) || !code.contains("=>") {
                    continue;
                }
                let mut search = 0;
                while let Some(found) = code[search..].find(&needle) {
                    let at = search + found + needle.len();
                    let variant: String = code[at..]
                        .chars()
                        .take_while(|&c| is_ident_char(c))
                        .collect();
                    search = at;
                    if variant.is_empty() {
                        continue;
                    }
                    if let Some(counter) = arm_counter(file, idx) {
                        enums
                            .get_mut(name)
                            .expect("preseeded enum map")
                            .counters
                            .entry(variant)
                            .or_default()
                            .insert(counter);
                    }
                }
            }
        }
    }

    // Pass 3: every variant accounted by exactly one counter family.
    for (name, info) in &enums {
        let Some((def_file, def_line)) = &info.def_site else {
            // Enum not present in this file set (e.g. a fixture run that
            // exercises only one enum): nothing to check.
            continue;
        };
        for variant in &info.variants {
            match info.counters.get(variant) {
                None => out.push(
                    Violation::new(
                        Rule::Accounting,
                        def_file,
                        *def_line,
                        format!(
                            "variant `{name}::{variant}` is never accounted: no match arm increments a counter for it"
                        ),
                    )
                    .with_note(
                        "every outcome must land in a metrics counter so totals reconcile; wire the new variant into the accounting match",
                    ),
                ),
                Some(set) if set.len() > 1 => {
                    let list = set.iter().cloned().collect::<Vec<_>>().join("`, `");
                    out.push(
                        Violation::new(
                            Rule::Accounting,
                            def_file,
                            *def_line,
                            format!(
                                "variant `{name}::{variant}` increments {} counter families (`{list}`); accounting must be one-to-one",
                                set.len()
                            ),
                        )
                        .with_note("double counting breaks the reconciliation invariant (sum of outcomes == total)"),
                    );
                }
                Some(_) => {}
            }
        }
    }
}

/// Collects variant names from an enum body starting at `def_idx`.
fn parse_variants(file: &SourceFile, def_idx: usize) -> Vec<String> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut started = false;
    for (offset, line) in file.lines[def_idx..].iter().enumerate() {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 && offset > 0 {
            break;
        }
        if !started || offset == 0 {
            continue;
        }
        let t = line.code.trim();
        if t.is_empty() || t.starts_with("#[") || t.starts_with('}') {
            continue;
        }
        let name: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
        if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(name);
        }
    }
    variants
}

/// The counter incremented by the match arm at `idx`: the field name
/// receiving `.inc()` or `.add(` on the arm line or shortly after.
fn arm_counter(file: &SourceFile, idx: usize) -> Option<String> {
    let arrow = file.lines[idx].code.find("=>")?;
    let end = (idx + 1 + ARM_WINDOW).min(file.lines.len());
    for (k, line) in file.lines[idx..end].iter().enumerate() {
        let code = if k == 0 {
            &line.code[arrow..]
        } else {
            &line.code
        };
        // Stop at the next arm so one arm's counter is not attributed to
        // the previous variant.
        if k > 0 && code.contains("=>") {
            break;
        }
        for pat in [".inc()", ".add("] {
            if let Some(at) = code.find(pat) {
                let field: String = code[..at]
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !field.is_empty() {
                    return Some(field);
                }
            }
        }
    }
    None
}

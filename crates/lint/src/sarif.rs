//! SARIF 2.1.0 emission (`--format sarif`).
//!
//! Hand-rolled JSON — the crate is dependency-free by design — covering
//! the subset CI result viewers actually read: one `run` with the tool's
//! rule catalog and one `result` per violation, each with a physical
//! location (workspace-relative URI + 1-based start line). Safe fixes
//! ride along as `fixes[].description` text so a reviewer sees what
//! `--fix` would do without leaving the SARIF viewer.

use crate::diag::{FixKind, Violation, ALL_RULES};

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full SARIF log for a set of violations.
pub fn render(violations: &[Violation]) -> String {
    let mut rules = String::new();
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!(
            r#"{{"id":"{}","name":"{}","shortDescription":{{"text":"{}"}}}}"#,
            rule.code(),
            escape(rule.slug()),
            escape(rule.slug())
        ));
    }

    let mut results = String::new();
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let mut message = v.message.clone();
        if let Some(note) = &v.note {
            message.push_str("; help: ");
            message.push_str(note);
        }
        results.push_str(&format!(
            concat!(
                r#"{{"ruleId":"{rule}","level":"error","message":{{"text":"{msg}"}},"#,
                r#""locations":[{{"physicalLocation":{{"artifactLocation":"#,
                r#"{{"uri":"{uri}"}},"region":{{"startLine":{line}}}}}}}]"#
            ),
            rule = v.rule.code(),
            msg = escape(&message),
            uri = escape(&v.file),
            line = v.line,
        ));
        if let Some(fix) = &v.fix {
            let desc = match &fix.kind {
                FixKind::ReplaceSubstr { find, replace } => {
                    format!("replace `{find}` with `{replace}`")
                }
                FixKind::ReplaceLine { new } => format!("replace the line with `{}`", new.trim()),
                FixKind::DeleteLine => "delete the line".to_string(),
            };
            let applied = if fix.safe {
                "applied by --fix"
            } else {
                "suggestion only"
            };
            results.push_str(&format!(
                r#","fixes":[{{"description":{{"text":"{} ({applied})"}}}}]"#,
                escape(&desc)
            ));
        }
        results.push('}');
    }

    format!(
        concat!(
            r#"{{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","#,
            r#""version":"2.1.0","runs":[{{"tool":{{"driver":{{"#,
            r#""name":"wilocator-lint","informationUri":"https://example.invalid/wilocator","#,
            r#""rules":[{rules}]}}}},"results":[{results}]}}]}}"#
        ),
        rules = rules,
        results = results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Rule, Violation};
    use wilocator_tracedump::{parse_json, Json};

    fn arr(j: &Json) -> &[Json] {
        match j {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn sample() -> Vec<Violation> {
        vec![
            Violation::new(
                Rule::LockOrder,
                "crates/core/src/server.rs",
                42,
                "lock-order cycle: `core::a` → `core::b` → `core::a`",
            )
            .with_note("pick one global order"),
            Violation::new(
                Rule::UnitDataflow,
                "crates/rf/src/field.rs",
                7,
                "mixed units: `a_dbm` is dBm but \"b_m\" is meters",
            )
            .with_fix(
                crate::diag::FixKind::ReplaceSubstr {
                    find: "b_meters".into(),
                    replace: "b_m".into(),
                },
                false,
            ),
        ]
    }

    #[test]
    fn sarif_log_parses_and_has_required_shape() {
        let log = render(&sample());
        let json = parse_json(&log).expect("valid JSON");
        assert_eq!(json.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        let runs = arr(json.get("runs").expect("runs"));
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(
            driver.get("name").and_then(|n| n.as_str()),
            Some("wilocator-lint")
        );
        let rules = arr(driver.get("rules").expect("rules"));
        assert_eq!(rules.len(), ALL_RULES.len());
        assert!(rules
            .iter()
            .any(|r| r.get("id").and_then(|i| i.as_str()) == Some("W009")));
        let results = arr(runs[0].get("results").expect("results"));
        assert_eq!(results.len(), 2);
        let loc = &arr(results[0].get("locations").expect("locs"))[0];
        let region = loc
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .expect("region");
        assert_eq!(region.get("startLine").and_then(|l| l.as_u64()), Some(42));
        let uri = loc
            .get("physicalLocation")
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(|u| u.as_str());
        assert_eq!(uri, Some("crates/core/src/server.rs"));
    }

    #[test]
    fn message_quotes_are_escaped() {
        let log = render(&sample());
        assert!(log.contains(r#"\"b_m\""#), "{log}");
        assert!(parse_json(&log).is_ok());
    }

    #[test]
    fn empty_run_is_still_valid() {
        let log = render(&[]);
        let json = parse_json(&log).expect("valid JSON");
        let runs = arr(json.get("runs").expect("runs"));
        let results = arr(runs[0].get("results").expect("results"));
        assert!(results.is_empty());
    }
}

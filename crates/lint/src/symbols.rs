//! Phase 1 of the workspace analyzer: the symbol table.
//!
//! One pass over every lexed file extracts, per function item: its name,
//! crate, visibility, parameter names, call sites, panic sites, and lock
//! acquisitions — including which locks are *held* at each acquisition
//! and call site, via lexical guard-scope tracking (a `let`-bound guard
//! lives to the end of its block or an explicit `drop`; an unbound guard
//! dies at the end of its own statement). The graph rules in
//! [`crate::callgraph`] and [`crate::units`] consume this table; nothing
//! here reports violations.
//!
//! Everything is hand-rolled on top of the blanked line stream from
//! [`crate::lexer`] — deliberately no `syn`, per the vendored-shim
//! constraint. The extraction is approximate in the ways rustfmt-shaped
//! code tolerates: receivers are resolved through a per-function alias
//! map (`let g = &self.shards[i]`, `for lock in &self.shards`, closure
//! parameters over lock containers), multi-line method chains fall back
//! to a short look-behind within the statement, and anything still
//! unresolvable is dropped rather than guessed.

use crate::lexer::{is_ident_char, SourceFile};
use crate::rules::FileContext;
use std::collections::{BTreeMap, BTreeSet};

/// A lock acquisition method and the receiver shape it needs.
const ACQUIRE_METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Panic-path call shapes (mirrors W002's local patterns).
pub const PANIC_PATTERNS: [(&str, &str); 5] = [
    (".unwrap()", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
    ("unimplemented!(", "unimplemented!"),
    ("todo!(", "todo!"),
];

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Crate-qualified lock class, e.g. `core::shards`.
    pub class: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Lock classes held (by `let`-bound guards) at this acquisition.
    pub held: Vec<String>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee's simple name (last path segment before `(`).
    pub callee: String,
    /// Candidate receiver types: the `Type::` qualifier of a path call
    /// (with `Self` resolved to the enclosing impl's type), or the
    /// declared type(s) of a `x.field.method(…)` receiver's field — a
    /// set, because the same field name may be declared with different
    /// types in different structs. Empty for free-function calls and
    /// receivers whose type is not lexically knowable; those resolve by
    /// bare name.
    pub quals: Vec<String>,
    /// 1-based line of the call.
    pub line: usize,
    /// True for a receiver-less, unqualified call (`f(…)`, not `x.f(…)`
    /// or `T::f(…)`) — the only shape that can invoke a caller-supplied
    /// closure parameter (which the effect engine defaults to ⊤).
    pub bare: bool,
    /// Lock classes held at the call.
    pub held: Vec<String>,
    /// Argument expressions when the whole call fits on one line and the
    /// arguments are simple enough to slice; empty otherwise. Used by
    /// the unit-dataflow rule to match arguments against parameters.
    pub args: Vec<String>,
}

/// One panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// What panics (`unwrap()`, `panic!`, `[N] indexing`, …).
    pub what: String,
}

/// One syntactic effect source inside a function body: a line matching
/// one of the seed tables in [`crate::effects`] (allocation calls,
/// clock reads, blocking syscalls, unbounded loop headers). Lock
/// acquisitions and panic sites are carried by [`FnSym::acquires`] and
/// [`FnSym::panics`] instead — those passes already resolve receivers,
/// which the flat seed tables cannot.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Bitmask over the effect lattice ([`crate::effects`]).
    pub mask: u8,
    /// 1-based line.
    pub line: usize,
    /// What seeded the effect (`Vec::new`, `thread::sleep`, `loop`, …).
    pub what: String,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Simple name (no path, no generics).
    pub name: String,
    /// The type the enclosing `impl` block is for, if any.
    pub owner: Option<String>,
    /// Owning crate (from the file path), `fixture` outside `crates/`.
    pub krate: String,
    pub file: String,
    /// 1-based signature line.
    pub sig_line: usize,
    /// Declared `pub` (exactly — `pub(crate)` etc. are not entry points).
    pub is_pub: bool,
    /// Whether the file sits in a serving crate (W009 entry scope).
    pub serving: bool,
    /// Parameter names in order (`self` receivers skipped, unparseable
    /// patterns recorded as empty strings to keep positions aligned).
    pub params: Vec<String>,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    /// Syntactic effect seeds ([`crate::effects`] lattice bits other
    /// than locks and panics, which `acquires`/`panics` carry).
    pub effects: Vec<EffectSite>,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// Simple fn name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table from every lexed file and its rule context.
    pub fn build(files: &[(SourceFile, FileContext)]) -> Self {
        // Pass A: lock-typed struct names and lock-typed field/binding
        // names, per crate. `struct ShardRing(Mutex<…>)` makes
        // `ShardRing` a lock type; `rings: Vec<ShardRing>` then makes
        // `rings` a lock field.
        let mut lock_types: BTreeSet<String> = BTreeSet::new();
        for (file, _) in files {
            for line in &file.lines {
                let code = &line.code;
                if !(code.contains("Mutex<") || code.contains("RwLock<")) {
                    continue;
                }
                if let Some(name) = struct_name(code) {
                    lock_types.insert(name);
                }
            }
        }
        let mut lock_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (file, _) in files {
            let krate = crate_of_path(&file.path);
            for line in &file.lines {
                let code = &line.code;
                let locky = code.contains("Mutex<")
                    || code.contains("RwLock<")
                    || lock_types.iter().any(|t| contains_type(code, t));
                if !locky || code.trim_start().starts_with("use ") {
                    continue;
                }
                for name in field_names(code) {
                    lock_fields.entry(krate.clone()).or_default().insert(name);
                }
            }
        }

        // Pass A2: struct field name → declared type(s), per crate, so a
        // `self.tracker.trajectory()` call can resolve by the field's
        // type instead of by bare method name.
        let mut field_types: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
        for (file, _) in files {
            let krate = crate_of_path(&file.path);
            let map = field_types.entry(krate).or_default();
            let mut struct_depth: Option<i32> = None;
            let mut depth = 0i32;
            for line in &file.lines {
                let code = &line.code;
                if struct_name(code).is_some() {
                    if let Some(open) = code.find('{') {
                        match code.rfind('}') {
                            // `struct S { a: Mutex<u32>, b: … }` on one line.
                            Some(close) if close > open => {
                                collect_field_types(&code[open + 1..close], map);
                            }
                            _ => struct_depth = Some(depth),
                        }
                    }
                    // A header without `{` (where-clause style) is skipped:
                    // qualifying from a misread bound would drop real edges.
                } else if struct_depth.is_some_and(|d| depth > d) {
                    collect_field_types(code, map);
                }
                depth += brace_delta(code);
                if struct_depth.is_some_and(|d| depth <= d) {
                    struct_depth = None;
                }
            }
        }

        // Pass B: function extraction with body events.
        let mut fns = Vec::new();
        for (file, ctx) in files {
            let krate = crate_of_path(&file.path);
            let empty_locks = BTreeSet::new();
            let empty_types = BTreeMap::new();
            let locks = lock_fields.get(&krate).unwrap_or(&empty_locks);
            let types = field_types.get(&krate).unwrap_or(&empty_types);
            extract_fns(file, &krate, ctx.serving, locks, types, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        SymbolTable { fns, by_name }
    }
}

/// The crate a workspace-relative path belongs to (`crates/core/src/…` →
/// `core`); `fixture` for paths outside `crates/`.
pub fn crate_of_path(path: &str) -> String {
    let unixy = path.replace('\\', "/");
    unixy
        .split('/')
        .skip_while(|s| *s != "crates")
        .nth(1)
        .unwrap_or("fixture")
        .to_string()
}

/// `struct Name(…)` / `struct Name {` / `struct Name;` → `Name`.
fn struct_name(code: &str) -> Option<String> {
    let at = code.find("struct ")?;
    if at > 0 && is_ident_char(code[..at].chars().next_back().unwrap_or(' ')) {
        return None;
    }
    let name: String = code[at + "struct ".len()..]
        .trim_start()
        .chars()
        .take_while(|&c| is_ident_char(c))
        .collect();
    (!name.is_empty()).then_some(name)
}

/// True when `ty` appears in `code` as a standalone type name.
/// True when a field's declared type dispatches method calls through a
/// trait object: `dyn T`, `&dyn T`, `&mut dyn T`, or a `Box`/`Arc`/`Rc`
/// directly around `dyn T` (smart pointers auto-deref method calls to
/// the object). A `dyn` buried deeper (`Mutex<Vec<Arc<dyn T>>>`) does
/// not make calls *on the field* dynamic — those go to the container.
fn is_dyn_receiver_type(ty_text: &str) -> bool {
    let t = ty_text.trim().trim_start_matches('&').trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    if t.starts_with("dyn ") {
        return true;
    }
    ["Box<", "Arc<", "Rc<"].iter().any(|wrap| {
        t.strip_prefix(wrap)
            .is_some_and(|rest| rest.trim_start().starts_with("dyn "))
    })
}

fn contains_type(code: &str, ty: &str) -> bool {
    let mut search = 0;
    while let Some(found) = code[search..].find(ty) {
        let at = search + found;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + ty.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return true;
        }
        search = at + ty.len();
    }
    false
}

/// Field-declaration names on a line: every `name: <type>` shape, the
/// same peeling W001 uses for hash idents. `::` path separators never
/// count, and uppercase-initial heads (type paths like `RwLock::new`)
/// are skipped — field names are snake_case.
fn field_names(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        if bytes.get(i + 1) == Some(&b':') || (i > 0 && bytes[i - 1] == b':') {
            continue;
        }
        let before = code[..i].trim_end();
        if before.is_empty() {
            continue;
        }
        let name: String = before
            .chars()
            .rev()
            .take_while(|&c| is_ident_char(c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let starts_lower = name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
        if !name.is_empty() && starts_lower {
            out.push(name);
        }
    }
    out
}

/// Records `name: Type` field declarations from struct-body text into
/// `map`, `Type` being the first uppercase-initial identifier of the
/// declared type (the outer container, for generics — `Vec<Shard>` is a
/// `Vec`, which owns no workspace impls, so such receivers fall back to
/// nothing rather than to a wrong owner). A field name declared with
/// several types across structs accumulates all of them; resolution
/// takes the union of their owners (over-approximate, the sound
/// direction).
fn collect_field_types(segment: &str, map: &mut BTreeMap<String, BTreeSet<String>>) {
    let bytes = segment.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        if bytes.get(i + 1) == Some(&b':') || (i > 0 && bytes[i - 1] == b':') {
            continue;
        }
        let before = segment[..i].trim_end();
        let name: String = before
            .chars()
            .rev()
            .take_while(|&c| is_ident_char(c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if name.is_empty()
            || !name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        {
            continue;
        }
        // The type runs to the next top-level comma.
        let rest = &segment[i + 1..];
        let mut level = 0i32;
        let mut end = rest.len();
        for (j, c) in rest.char_indices() {
            match c {
                '<' | '(' | '[' => level += 1,
                '>' | ')' | ']' => level -= 1,
                ',' if level <= 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        let ty = ident_tokens(&rest[..end])
            .into_iter()
            .find(|t| t.chars().next().is_some_and(|c| c.is_ascii_uppercase()));
        if let Some(ty) = ty {
            let entry = map.entry(name).or_default();
            // A trait-object field (`Box<dyn Handler>`, `&dyn Clock`)
            // gets the `dyn` sentinel alongside its container: calls
            // through it are dynamic dispatch, which the effect engine
            // defaults to ⊤ ([`crate::effects`]). Never a real owner —
            // no impl block is ever `impl dyn`-owned in the table.
            if is_dyn_receiver_type(&rest[..end]) {
                entry.insert("dyn".to_string());
            }
            entry.insert(ty);
        }
    }
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

/// Rust keywords that look like calls (`if (…)`, `while (…)`).
const CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "fn", "loop", "else", "in", "let", "move", "unsafe",
];

/// A bound guard currently in scope.
struct HeldGuard {
    class: String,
    /// Brace depth at which the guard's scope closes (guard dies when
    /// depth drops below this).
    depth: i32,
    /// Binding name, for explicit `drop(name)`.
    binding: Option<String>,
}

fn extract_fns(
    file: &SourceFile,
    krate: &str,
    serving: bool,
    locks: &BTreeSet<String>,
    field_types: &BTreeMap<String, BTreeSet<String>>,
    out: &mut Vec<FnSym>,
) {
    // Open function frames: (fn index in `out`, depth at open, alias map,
    // held guards). Nested items stack.
    struct Frame {
        fn_idx: usize,
        depth: i32,
        body_open: bool,
        aliases: BTreeMap<String, String>,
        held: Vec<HeldGuard>,
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut depth: i32 = 0;
    // Enclosing `impl` blocks: (type name, depth at the impl line,
    // whether the body `{` has opened).
    let mut impls: Vec<(String, i32, bool)> = Vec::new();

    let mut idx = 0;
    while idx < file.lines.len() {
        let line = &file.lines[idx];
        let code = line.code.clone();
        let lineno = idx + 1;

        if !line.is_test {
            if let Some(ty) = impl_type(&code) {
                impls.push((ty, depth, false));
            }
        }

        // New function signature?
        if !line.is_test {
            if let Some((name, is_pub)) = fn_signature(&code) {
                // Collect the full signature text (possibly spanning
                // lines) up to the body `{` or a declaration-only `;`.
                let (params, body_opens, consumed) = parse_signature(file, idx);
                let fn_idx = out.len();
                out.push(FnSym {
                    name,
                    owner: impls.last().map(|(t, _, _)| t.clone()),
                    krate: krate.to_string(),
                    file: file.path.clone(),
                    sig_line: lineno,
                    is_pub,
                    serving,
                    params,
                    acquires: Vec::new(),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    effects: Vec::new(),
                });
                if body_opens {
                    frames.push(Frame {
                        fn_idx,
                        depth,
                        body_open: false,
                        aliases: BTreeMap::new(),
                        held: Vec::new(),
                    });
                }
                // Body text after the opening `{` on the last signature
                // line — the whole body, for a single-line fn — still
                // needs an event scan before we skip past the signature.
                let last = &file.lines[consumed];
                if body_opens && !last.is_test {
                    if let Some(brace) = last.code.find('{') {
                        let tail = last.code[brace + 1..].to_string();
                        if !tail.trim().is_empty() {
                            let mut tail_aliases = BTreeMap::new();
                            let mut tail_held = Vec::new();
                            scan_body_line(
                                file,
                                consumed,
                                &tail,
                                locks,
                                field_types,
                                krate,
                                &mut tail_aliases,
                                &mut tail_held,
                                &mut out[fn_idx],
                            );
                        }
                    }
                }
                // The rest of the signature carries no body events; skip
                // past it (brace bookkeeping still applies).
                for sig_line in &file.lines[idx..=consumed] {
                    depth += brace_delta(&sig_line.code);
                }
                if let Some(frame) = frames.last_mut() {
                    if frame.fn_idx == fn_idx && depth > frame.depth {
                        frame.body_open = true;
                    }
                }
                // A declaration-only signature (trait method) opened no
                // frame; drop the frame if its body never opened.
                if let Some(frame) = frames.last() {
                    if frame.fn_idx == fn_idx && !frame.body_open {
                        frames.pop();
                    }
                }
                idx = consumed + 1;
                continue;
            }
        }

        // Body events for the innermost open function.
        if let Some(frame) = frames.last_mut() {
            if !line.is_test {
                let sym = &mut out[frame.fn_idx];
                scan_body_line(
                    file,
                    idx,
                    &code,
                    locks,
                    field_types,
                    krate,
                    &mut frame.aliases,
                    &mut frame.held,
                    sym,
                );
            }
        }

        depth += brace_delta(&code);

        // Close guards whose scope ended, then close finished frames.
        while let Some(frame) = frames.last_mut() {
            frame.held.retain(|g| g.depth <= depth);
            if frame.body_open && depth <= frame.depth {
                frames.pop();
            } else {
                break;
            }
        }
        // Track impl bodies opening and closing.
        for entry in impls.iter_mut() {
            if !entry.2 && depth > entry.1 {
                entry.2 = true;
            }
        }
        while impls
            .last()
            .is_some_and(|(_, d, open)| *open && depth <= *d)
        {
            impls.pop();
        }
        idx += 1;
    }
}

/// `impl Foo {` / `impl Trait for Foo {` / `impl<T> Foo<T> where …` →
/// the implemented-for type's simple name.
fn impl_type(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("impl")?;
    // `impl` must be the keyword, not a prefix of an identifier.
    if rest.starts_with(|c: char| is_ident_char(c)) {
        return None;
    }
    // Skip generic parameters on `impl<…>`.
    let rest = if let Some(generic) = rest.strip_prefix('<') {
        let mut depth = 1i32;
        let mut cut = generic.len();
        for (i, c) in generic.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &generic[cut.min(generic.len())..]
    } else {
        rest
    };
    // `impl Trait for Type` — the type is what methods hang off.
    let target = match rest.find(" for ") {
        Some(at) => &rest[at + 5..],
        None => rest,
    };
    // First uppercase-initial identifier of the target (peels `&`,
    // `dyn `, generics, paths).
    let mut current = String::new();
    for c in target.chars().chain(std::iter::once(' ')) {
        if is_ident_char(c) {
            current.push(c);
        } else {
            if current
                .chars()
                .next()
                .is_some_and(|f| f.is_ascii_uppercase())
            {
                return Some(current);
            }
            current.clear();
            if c == '{' || c == '<' {
                break;
            }
        }
    }
    None
}

fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// `[pub ]fn name` on a line → (name, is_pub). Requires a lowercase `fn `
/// with an identifier start right after, so `impl Fn(…)` never matches.
fn fn_signature(code: &str) -> Option<(String, bool)> {
    let mut search = 0;
    while let Some(found) = code[search..].find("fn ") {
        let at = search + found;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let name: String = code[at + 3..]
            .trim_start()
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if before_ok && !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            let head = code[..at].trim_end();
            // Exactly-`pub` visibility: `pub fn`, possibly after
            // qualifiers (`pub async fn`, `pub const fn`, …).
            let is_pub = head == "pub"
                || head.ends_with(" pub")
                || head
                    .strip_suffix("async")
                    .or_else(|| head.strip_suffix("const"))
                    .or_else(|| head.strip_suffix("extern"))
                    .map(str::trim_end)
                    .is_some_and(|h| h == "pub" || h.ends_with(" pub"));
            return Some((name, is_pub));
        }
        search = at + 3;
    }
    None
}

/// Parses the parameter list of the signature starting at line `start`,
/// following it across lines to the closing paren. Returns the parameter
/// names, whether a body `{` opens, and the index of the last signature
/// line.
fn parse_signature(file: &SourceFile, start: usize) -> (Vec<String>, bool, usize) {
    let mut text = String::new();
    let mut end = start;
    let mut paren: i32 = 0;
    let mut seen_open = false;
    for (offset, line) in file.lines[start..].iter().enumerate() {
        end = start + offset;
        text.push_str(&line.code);
        text.push(' ');
        for c in line.code.chars() {
            match c {
                '(' => {
                    paren += 1;
                    seen_open = true;
                }
                ')' => paren -= 1,
                _ => {}
            }
        }
        if seen_open && paren <= 0 {
            // Parameter list complete; the body brace may still be on a
            // later line (`) -> LongType\n{`), so keep consuming until
            // `{` or `;`.
            let rest_has_brace = file.lines[start..=end].iter().any(|l| l.code.contains('{'));
            if rest_has_brace || line.code.trim_end().ends_with(';') {
                break;
            }
            let Some(next) = file.lines.get(end + 1) else {
                break;
            };
            let t = next.code.trim();
            if t.starts_with('{') || t.ends_with('{') || t.ends_with(';') {
                text.push_str(&next.code);
                end += 1;
            }
            break;
        }
        if offset > 32 {
            break; // Unbalanced signature; bail rather than scan the file.
        }
    }
    let body_opens = file.lines[start..=end].iter().any(|l| l.code.contains('{'));
    (param_names(&text), body_opens, end)
}

/// Parameter names from a joined signature string.
fn param_names(sig: &str) -> Vec<String> {
    let Some(open) = sig.find('(') else {
        return Vec::new();
    };
    // Slice out the top-level parenthesized list.
    let mut depth = 0i32;
    let mut close = sig.len();
    for (i, c) in sig[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let list = &sig[open + 1..close.min(sig.len())];
    let mut params = Vec::new();
    let mut level = 0i32;
    let mut current = String::new();
    for c in list.chars() {
        match c {
            '<' | '(' | '[' => {
                level += 1;
                current.push(c);
            }
            '>' | ')' | ']' => {
                level -= 1;
                current.push(c);
            }
            ',' if level <= 0 => {
                push_param(&mut params, &current);
                current.clear();
            }
            _ => current.push(c),
        }
    }
    push_param(&mut params, &current);
    params
}

fn push_param(params: &mut Vec<String>, piece: &str) {
    let piece = piece.trim();
    if piece.is_empty() {
        return;
    }
    let head = piece.split(':').next().unwrap_or("").trim();
    let head = head
        .trim_start_matches("mut ")
        .trim_start_matches("ref ")
        .trim();
    if head == "self" || head == "&self" || head == "&mut self" || head.ends_with(" self") {
        return;
    }
    let name: String = head.chars().take_while(|&c| is_ident_char(c)).collect();
    // Patterns (`(a, b): …`, `_`) record an empty placeholder so later
    // parameters keep their positions.
    if name == "_" || name.is_empty() || !piece.contains(':') {
        params.push(String::new());
    } else {
        params.push(name);
    }
}

// ---------------------------------------------------------------------------
// Body-line scanning
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn scan_body_line(
    file: &SourceFile,
    idx: usize,
    code: &str,
    locks: &BTreeSet<String>,
    field_types: &BTreeMap<String, BTreeSet<String>>,
    krate: &str,
    aliases: &mut BTreeMap<String, String>,
    held: &mut Vec<HeldGuard>,
    sym: &mut FnSym,
) {
    let lineno = idx + 1;
    let held_classes = |held: &Vec<HeldGuard>| -> Vec<String> {
        let mut v: Vec<String> = held.iter().map(|g| g.class.clone()).collect();
        v.sort();
        v.dedup();
        v
    };

    // Explicit early release: `drop(guard)`.
    if let Some(arg) = call_argument(code, "drop(") {
        held.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
    }

    // Alias introduction: a binding whose right-hand side mentions a
    // known lock field (or an existing alias) aliases that class.
    if let Some((names, rhs)) = binding_of(code) {
        if let Some(class) = class_in_expr(&rhs, locks, aliases) {
            // Guard acquisitions are handled below; only alias when the
            // RHS is *not* itself an acquisition (`&self.shards[i]`,
            // `self.rings.get(s)`, a `for`-loop item, …).
            if !ACQUIRE_METHODS.iter().any(|m| rhs.contains(m)) {
                for name in names {
                    aliases.insert(name, class.clone());
                }
            }
        }
    }
    // Closure parameters over a lock container: `container.iter().map(|r| …`.
    for (param, class) in closure_aliases(file, idx, locks, aliases) {
        aliases.insert(param, class);
    }

    // Lock acquisitions.
    for method in ACQUIRE_METHODS {
        let mut search = 0;
        while let Some(found) = code[search..].find(method) {
            let at = search + found;
            search = at + method.len();
            let Some(class) = receiver_class(file, idx, code, at, locks, aliases) else {
                continue;
            };
            let class = format!("{krate}::{class}");
            sym.acquires.push(Acquire {
                class: class.clone(),
                line: lineno,
                held: held_classes(held),
            });
            // A `let`-bound guard stays held to the end of its block;
            // a temporary dies at the end of the statement and is never
            // pushed.
            if let Some((names, rhs)) = binding_of(code) {
                if rhs.contains(method) {
                    let depth_after = current_depth_after(file, idx);
                    held.push(HeldGuard {
                        class,
                        depth: depth_after,
                        binding: names.first().cloned(),
                    });
                }
            }
        }
    }

    // Effect seeds (allocation, clock, blocking, unbounded iteration).
    crate::effects::seed_line(code, lineno, &mut sym.effects);

    // Panic sites.
    for (pat, what) in PANIC_PATTERNS {
        if crate::rules::contains_call(code, pat) {
            sym.panics.push(PanicSite {
                line: lineno,
                what: what.to_string(),
            });
        }
    }

    // Call sites.
    for (callee, qual, at) in call_names(code) {
        let args = if callee == "drop" {
            Vec::new()
        } else {
            call_args(code, at)
        };
        // `Self::helper(…)` names the enclosing impl's type. Method
        // calls qualify by receiver when it is knowable: `self.m()` by
        // the enclosing impl's type, `x.field.m()` by `field`'s declared
        // type(s) (bare-local receivers stay on name resolution — a
        // local's type is not lexically knowable).
        let name_start = at - callee.len();
        let is_method = name_start > 0 && code.as_bytes()[name_start - 1] == b'.';
        let quals: Vec<String> = match qual.as_deref() {
            Some("Self") => sym.owner.clone().into_iter().collect(),
            Some(q) => vec![q.to_string()],
            None => {
                if is_method {
                    let mut recv = receiver_path(code, name_start - 1);
                    if recv.is_empty() {
                        // Chained across lines: the previous line carries
                        // the receiver tail.
                        recv = chain_receiver(file, idx);
                    }
                    if recv == "self" {
                        sym.owner.clone().into_iter().collect()
                    } else if let Some((_, field)) = recv.rsplit_once('.') {
                        Some(field)
                            .filter(|f| !f.is_empty() && f.chars().all(is_ident_char))
                            .and_then(|f| field_types.get(f))
                            .map(|tys| tys.iter().cloned().collect())
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    }
                } else {
                    Vec::new()
                }
            }
        };
        sym.calls.push(CallSite {
            callee,
            quals,
            line: lineno,
            bare: qual.is_none() && !is_method,
            held: held_classes(held),
            args,
        });
    }
}

/// The brace depth delta of all lines up to and including `idx`, used to
/// stamp a guard's closing depth. Guards pushed on a line live until the
/// depth drops below the depth *after* that line (so an `if let` guard
/// dies with its block, and a plain `let` dies with the enclosing one).
fn current_depth_after(file: &SourceFile, idx: usize) -> i32 {
    let mut d = 0;
    for line in &file.lines[..=idx] {
        d += brace_delta(&line.code);
    }
    d
}

/// `let [mut] name = <rhs>` / `let Some(name) = <rhs>` /
/// `for name in <rhs>` → (introduced names, rhs text).
fn binding_of(code: &str) -> Option<(Vec<String>, String)> {
    let trimmed = code.trim_start();
    if let Some(rest) = trimmed.strip_prefix("for ") {
        let in_at = rest.find(" in ")?;
        let pat = &rest[..in_at];
        let rhs = rest[in_at + 4..].trim_end_matches('{').trim().to_string();
        return Some((pattern_names(pat), rhs));
    }
    let let_at = find_let(trimmed)?;
    let rest = &trimmed[let_at + 4..];
    let eq = top_level_eq(rest)?;
    let pat = &rest[..eq];
    let rhs = rest[eq + 1..].trim().trim_end_matches(';').to_string();
    Some((pattern_names(pat), rhs))
}

/// Position of a `let ` that starts a binding (start of line, or after
/// `if `/`while `/`else `/`{`).
fn find_let(trimmed: &str) -> Option<usize> {
    for prefix in ["let ", "if let ", "while let ", "else if let "] {
        if trimmed.starts_with(prefix) {
            return Some(prefix.len() - 4);
        }
    }
    None
}

/// The first top-level `=` that is an assignment (not `==`, `=>`, `<=`,
/// `>=`, `!=`).
fn top_level_eq(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 1).copied().unwrap_or(b' ');
        if prev != b'='
            && prev != b'<'
            && prev != b'>'
            && prev != b'!'
            && next != b'='
            && next != b'>'
        {
            return Some(i);
        }
    }
    None
}

/// Identifier names introduced by a binding pattern (`mut x`, `Some(x)`,
/// `(a, b)`, `Ok(mut y)`).
fn pattern_names(pat: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut current = String::new();
    for c in pat.chars().chain(std::iter::once(' ')) {
        if is_ident_char(c) {
            current.push(c);
        } else {
            if !current.is_empty()
                && current != "mut"
                && current != "ref"
                && current != "_"
                && !current
                    .chars()
                    .next()
                    .is_some_and(|f| f.is_ascii_uppercase())
            {
                names.push(current.clone());
            }
            current.clear();
        }
    }
    names
}

/// For `drop(x)`-shaped calls, the single bare-identifier argument.
fn call_argument(code: &str, pat: &str) -> Option<String> {
    let at = code.find(pat)?;
    if at > 0 && is_ident_char(code[..at].chars().next_back().unwrap_or(' ')) {
        return None;
    }
    let rest = &code[at + pat.len()..];
    let close = rest.find(')')?;
    let arg = rest[..close].trim();
    arg.chars()
        .all(is_ident_char)
        .then(|| arg.to_string())
        .filter(|a| !a.is_empty())
}

/// The lock class referenced anywhere in an expression: a known lock
/// field (`self.shards`, `bus_dir`) or an existing alias.
fn class_in_expr(
    expr: &str,
    locks: &BTreeSet<String>,
    aliases: &BTreeMap<String, String>,
) -> Option<String> {
    for token in ident_tokens(expr) {
        if locks.contains(&token) {
            return Some(token);
        }
        if let Some(class) = aliases.get(&token) {
            return Some(class.clone());
        }
    }
    None
}

fn ident_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in s.chars().chain(std::iter::once(' ')) {
        if is_ident_char(c) {
            current.push(c);
        } else {
            if !current.is_empty() && !current.chars().next().is_some_and(|f| f.is_ascii_digit()) {
                out.push(current.clone());
            }
            current.clear();
        }
    }
    out
}

/// Resolves the receiver of an acquisition at byte offset `at` to a lock
/// class: the dotted receiver path is peeled of indexes and tuple
/// projections, each segment is checked against lock fields and aliases,
/// and a multi-line chain falls back to a short look-behind within the
/// statement.
fn receiver_class(
    file: &SourceFile,
    idx: usize,
    code: &str,
    at: usize,
    locks: &BTreeSet<String>,
    aliases: &BTreeMap<String, String>,
) -> Option<String> {
    let recv = receiver_path(code, at);
    // stdio locks are not shared-state locks.
    if recv.contains("stdout") || recv.contains("stderr") || recv.contains("stdin") {
        return None;
    }
    if let Some(class) = class_in_expr(&recv, locks, aliases) {
        return Some(class);
    }
    // Chained across lines: look back a few lines within this statement.
    if recv.is_empty() || code[..at].trim_start().starts_with('.') {
        for prev in file.lines[idx.saturating_sub(4)..idx].iter().rev() {
            let p = prev.code.trim_end();
            if p.ends_with(';') || p.ends_with('{') || p.ends_with('}') {
                break;
            }
            if let Some(class) = class_in_expr(p, locks, aliases) {
                return Some(class);
            }
        }
    }
    None
}

/// The receiver tail carried over from the previous line of a rustfmt
/// method chain (`state\n    .tracker\n    .trajectory()`): the dotted
/// path at the previous line's end, or nothing when that line terminates
/// a statement or ends in a call result.
fn chain_receiver(file: &SourceFile, idx: usize) -> String {
    if idx == 0 {
        return String::new();
    }
    let prev = file.lines[idx - 1].code.trim_end();
    if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') || prev.ends_with(')') {
        return String::new();
    }
    receiver_path(prev, prev.len())
}

/// The dotted receiver path immediately before byte offset `at`:
/// identifiers, `.`, numeric tuple projections, and `[…]` indexes (whose
/// contents are skipped).
fn receiver_path(code: &str, at: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = at;
    let mut depth = 0i32;
    while i > 0 {
        let c = bytes[i - 1] as char;
        match c {
            ']' => {
                depth += 1;
                i -= 1;
            }
            '[' if depth > 0 => {
                depth -= 1;
                i -= 1;
            }
            ')' => break, // call-result receivers resolve via look-behind
            _ if depth > 0 => i -= 1,
            _ if is_ident_char(c) || c == '.' => i -= 1,
            _ => break,
        }
    }
    code[i..at].to_string()
}

/// Closure parameters iterating a lock container on this statement:
/// `<container>…|param|` where the statement mentions a lock field.
fn closure_aliases(
    file: &SourceFile,
    idx: usize,
    locks: &BTreeSet<String>,
    aliases: &BTreeMap<String, String>,
) -> Vec<(String, String)> {
    let code = &file.lines[idx].code;
    let Some(open) = code.find('|') else {
        return Vec::new();
    };
    let Some(close_rel) = code[open + 1..].find('|') else {
        return Vec::new();
    };
    let params = &code[open + 1..open + 1 + close_rel];
    if params.contains("||") || params.is_empty() {
        return Vec::new();
    }
    // The container is named either earlier on this line or on the
    // preceding lines of the same statement.
    let mut class = class_in_expr(&code[..open], locks, aliases);
    if class.is_none() {
        for prev in file.lines[idx.saturating_sub(3)..idx].iter().rev() {
            let p = prev.code.trim_end();
            if p.ends_with(';') || p.ends_with('{') || p.ends_with('}') {
                break;
            }
            class = class_in_expr(p, locks, aliases);
            if class.is_some() {
                break;
            }
        }
    }
    let Some(class) = class else {
        return Vec::new();
    };
    pattern_names(params)
        .into_iter()
        .map(|p| (p, class.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// Call-name extraction
// ---------------------------------------------------------------------------

/// Every `name(` call on a line: free functions, `Type::name(`, and
/// `.name(` method calls. Returns (simple name, `Type::` qualifier if
/// any, byte offset of `(`).
fn call_names(code: &str) -> Vec<(String, Option<String>, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' || i == 0 {
            continue;
        }
        let name = crate::rules::ident_before(code, i);
        if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        // Macro invocations (`panic!(`) are panic sites, not calls;
        // keywords are control flow.
        if code[..i].ends_with(&format!("{name}!")) {
            continue;
        }
        let before = code[..i - name.len()].trim_end();
        if before.ends_with('!') || CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Definitions are not calls.
        if before.ends_with("fn") {
            continue;
        }
        // `Type::name(` — keep the (uppercase-initial) path qualifier;
        // lowercase qualifiers are module paths, which simple-name
        // resolution handles as well as it ever will.
        let qual = code[..i - name.len()]
            .strip_suffix("::")
            .map(|head| crate::rules::ident_before(head, head.len()))
            .filter(|q| q.chars().next().is_some_and(|c| c.is_ascii_uppercase()));
        out.push((name, qual, i));
    }
    out
}

/// Argument expressions of the call whose `(` sits at `open`, when the
/// closing paren is on the same line. Top-level-comma split; nested
/// parens/brackets/generics respected.
fn call_args(code: &str, open: usize) -> Vec<String> {
    let mut depth = 0i32;
    let mut end = None;
    for (i, c) in code[open..].char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else {
        return Vec::new();
    };
    let list = &code[open + 1..end];
    if list.trim().is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut level = 0i32;
    let mut current = String::new();
    for c in list.chars() {
        match c {
            '(' | '[' | '{' => {
                level += 1;
                current.push(c);
            }
            ')' | ']' | '}' => {
                level -= 1;
                current.push(c);
            }
            ',' if level <= 0 => {
                out.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    out.push(current.trim().to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use crate::rules::FileContext;

    fn table(src: &str) -> SymbolTable {
        let file = SourceFile::parse("crates/core/src/t.rs", src);
        SymbolTable::build(&[(file, FileContext::all())])
    }

    #[test]
    fn extracts_fns_params_and_visibility() {
        let t = table(
            "pub fn serve(a_dbm: f64, b: u32) -> u32 { helper(a_dbm) }\nfn helper(x_m: f64) -> u32 { 0 }\n",
        );
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].is_pub && !t.fns[1].is_pub);
        assert_eq!(t.fns[0].params, vec!["a_dbm".to_string(), "b".to_string()]);
        assert_eq!(t.fns[0].calls.len(), 1);
        assert_eq!(t.fns[0].calls[0].callee, "helper");
        assert_eq!(t.fns[0].calls[0].args, vec!["a_dbm".to_string()]);
    }

    #[test]
    fn tracks_held_guards_across_acquisitions() {
        let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    fn nested(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(ga);
        let ga2 = self.a.lock();
    }
}
";
        let t = table(src);
        let f = t.fns.iter().find(|f| f.name == "nested").expect("fn");
        assert_eq!(f.acquires.len(), 3);
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].held, vec!["core::a".to_string()]);
        // After drop(ga) only b is held.
        assert_eq!(f.acquires[2].held, vec!["core::b".to_string()]);
    }

    #[test]
    fn temporaries_do_not_stay_held() {
        let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    fn temps(&self) {
        self.a.lock().unwrap();
        let gb = self.b.lock();
    }
}
";
        let t = table(src);
        let f = t.fns.iter().find(|f| f.name == "temps").expect("fn");
        assert!(f.acquires[1].held.is_empty(), "{:?}", f.acquires);
    }

    #[test]
    fn guards_die_with_their_block() {
        let src = "\
struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    fn scoped(&self) {
        let idx = {
            let ga = self.a.lock();
            0
        };
        let gb = self.b.lock();
    }
}
";
        let t = table(src);
        let f = t.fns.iter().find(|f| f.name == "scoped").expect("fn");
        let b = f.acquires.iter().find(|a| a.class == "core::b").expect("b");
        assert!(b.held.is_empty(), "{:?}", f.acquires);
    }

    #[test]
    fn aliases_resolve_indexed_and_looped_receivers() {
        let src = "\
struct S { shards: Vec<std::sync::RwLock<u32>> }
impl S {
    fn go(&self) {
        let lock = &self.shards[0];
        let g = lock.write();
        for l in &self.shards {
            l.read();
        }
    }
}
";
        let t = table(src);
        let f = t.fns.iter().find(|f| f.name == "go").expect("fn");
        assert_eq!(f.acquires.len(), 2);
        assert!(f.acquires.iter().all(|a| a.class == "core::shards"));
    }

    #[test]
    fn panic_sites_and_held_calls_are_recorded() {
        let src = "\
struct S { a: std::sync::Mutex<u32> }
impl S {
    fn go(&self) {
        let g = self.a.lock();
        callee_under_lock();
        x.unwrap();
    }
}
";
        let t = table(src);
        let f = t.fns.iter().find(|f| f.name == "go").expect("fn");
        assert_eq!(f.panics.len(), 1);
        let call = f.calls.iter().find(|c| c.callee == "callee_under_lock");
        assert_eq!(call.expect("call").held, vec!["core::a".to_string()]);
    }
}

//! W008 `unit_dataflow`: physical-unit inference from identifier
//! suffixes, and mixed-unit arithmetic detection.
//!
//! The workspace's naming convention carries units in suffixes —
//! `rss_dbm`, `distance_m`, `headway_s`, `start_us`, `bearing_deg` — so
//! a lexer-level rule can catch the classic silent-corruption bugs:
//! seconds added to microseconds, meters compared against kilometers, a
//! dBm power level compared against a dB ratio. Three checks:
//!
//! 1. **Intra-function**: additive operators (`+ - += -=`), comparisons
//!    (`< > <= >= == !=`) and straight assignments between identifier
//!    paths whose suffixes imply incompatible units. Multiplication and
//!    division are unit-*forming* (`m / s → mps`) and never flagged.
//!    One algebraic exception: `dBm ± dB` is how path loss works
//!    (absolute level plus/minus a ratio stays absolute), so the
//!    additive check treats `dbm` and `db` as compatible while the
//!    comparison check does not.
//! 2. **Cross-function**: a call argument whose unit contradicts the
//!    callee parameter's unit, via the symbol table's call sites — only
//!    when *every* candidate callee disagrees, so an ambiguous name
//!    never flags.
//! 3. **Suffix canon**: non-canonical unit suffixes (`_seconds`,
//!    `_meters`, `_micros`, …) get a suggestion-only rename fix so the
//!    convention stays greppable; the rename is offered in the
//!    `--fix --dry-run` diff, never applied automatically.

use crate::diag::{FixKind, Rule, Violation};
use crate::lexer::{is_ident_char, SourceFile};
use crate::pragma::PragmaSet;
use crate::symbols::SymbolTable;
use std::collections::BTreeMap;

/// Canonical unit suffixes. `(suffix, human name)`.
const UNITS: &[(&str, &str)] = &[
    ("db", "decibels (ratio)"),
    ("dbm", "dBm (absolute power)"),
    ("deg", "degrees"),
    ("hz", "hertz"),
    ("km", "kilometers"),
    ("m", "meters"),
    ("mps", "meters/second"),
    ("ms", "milliseconds"),
    ("rad", "radians"),
    ("s", "seconds"),
    ("us", "microseconds"),
];

/// Non-canonical spellings of the suffixes above → canonical form.
const ALIASES: &[(&str, &str)] = &[
    ("degrees", "deg"),
    ("hertz", "hz"),
    ("kilometers", "km"),
    ("meter", "m"),
    ("meters", "m"),
    ("metres", "m"),
    ("micros", "us"),
    ("millis", "ms"),
    ("msec", "ms"),
    ("radians", "rad"),
    ("sec", "s"),
    ("seconds", "s"),
    ("secs", "s"),
    ("usec", "us"),
];

/// The canonical unit implied by an identifier's trailing `_suffix`,
/// if any.
pub fn unit_of(ident: &str) -> Option<&'static str> {
    let (_, suffix) = ident.rsplit_once('_')?;
    if let Ok(i) = UNITS.binary_search_by_key(&suffix, |(s, _)| s) {
        return Some(UNITS[i].0);
    }
    ALIASES
        .binary_search_by_key(&suffix, |(a, _)| a)
        .ok()
        .map(|i| ALIASES[i].1)
}

fn human(unit: &str) -> &'static str {
    UNITS
        .iter()
        .find(|(s, _)| *s == unit)
        .map(|(_, h)| *h)
        .unwrap_or("?")
}

/// Whether two inferred units may meet under an operator class.
fn compatible(a: &str, b: &str, additive: bool) -> bool {
    if a == b {
        return true;
    }
    // dBm ± dB = dBm: adding a ratio to an absolute level is the one
    // legitimate mixed-suffix addition in an RF codebase.
    additive && ((a == "dbm" && b == "db") || (a == "db" && b == "dbm"))
}

/// Additive / compound-assign operators (spaces are rustfmt's).
const ADDITIVE_OPS: &[&str] = &[" + ", " - ", " += ", " -= "];
/// Comparison operators.
const COMPARE_OPS: &[&str] = &[" < ", " > ", " <= ", " >= ", " == ", " != "];

/// The last path segment of the dotted identifier path ending at byte
/// offset `end` (exclusive), or `None` when what precedes is not a bare
/// lowercase path.
fn path_segment_before(code: &str, end: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = end;
    while i > 0 {
        let c = bytes[i - 1] as char;
        if is_ident_char(c) || c == '.' {
            i -= 1;
        } else {
            break;
        }
    }
    let path = &code[i..end];
    let last = path.rsplit('.').next().unwrap_or("");
    (!last.is_empty() && last.starts_with(|c: char| c.is_ascii_lowercase() || c == '_'))
        .then(|| last.to_string())
}

/// The last path segment of the dotted identifier path starting at byte
/// offset `start`; `None` when the path is empty, is a method call
/// (followed by `(`), or does not start lowercase.
fn path_segment_after(code: &str, start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if is_ident_char(c) || c == '.' {
            i += 1;
        } else {
            break;
        }
    }
    if bytes.get(i) == Some(&b'(') {
        return None; // method/function call — its return unit is unknown
    }
    let path = &code[start..i];
    let last = path.rsplit('.').next().unwrap_or("");
    (!last.is_empty() && path.starts_with(|c: char| c.is_ascii_lowercase() || c == '_'))
        .then(|| last.to_string())
}

pub fn w008_unit_dataflow(
    files: &[(SourceFile, crate::rules::FileContext)],
    table: &SymbolTable,
    pragmas: &mut PragmaSet,
    out: &mut Vec<Violation>,
) {
    for (file, _) in files {
        scan_file(file, pragmas, out);
    }
    scan_call_sites(table, pragmas, out);
}

fn scan_file(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    let mut alias_seen: Vec<String> = Vec::new();
    // Units inferred for suffix-less single-assignment locals
    // (`let x = rssi_dbm;` ⇒ x: dBm), per function body.
    let mut local_units: BTreeMap<String, &'static str> = BTreeMap::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        if is_fn_sig(code) {
            local_units.clear();
        }
        let resolve = |seg: &str, locals: &BTreeMap<String, &'static str>| {
            unit_of(seg).or_else(|| locals.get(seg).copied())
        };

        // Mixed-unit operators.
        for (ops, additive) in [(ADDITIVE_OPS, true), (COMPARE_OPS, false)] {
            for op in ops {
                let mut search = 0;
                while let Some(found) = code[search..].find(op) {
                    let at = search + found;
                    search = at + op.len();
                    let Some(lhs) = path_segment_before(code, at) else {
                        continue;
                    };
                    let Some(rhs) = path_segment_after(code, at + op.len()) else {
                        continue;
                    };
                    let (Some(lu), Some(ru)) =
                        (resolve(&lhs, &local_units), resolve(&rhs, &local_units))
                    else {
                        continue;
                    };
                    if compatible(lu, ru, additive) {
                        continue;
                    }
                    if pragmas.allows(Rule::UnitDataflow, &file.path, lineno) {
                        continue;
                    }
                    out.push(mixed_violation(
                        &file.path,
                        lineno,
                        &lhs,
                        lu,
                        op.trim(),
                        &rhs,
                        ru,
                    ));
                }
            }
        }

        // Straight assignment between bare unit-suffixed paths:
        // `a_s = b_us;`. Anything with a conversion hint on the RHS
        // (arithmetic, casts, calls) is left alone.
        if let Some(at) = code.find(" = ") {
            let rhs_text = code[at + 3..].trim().trim_end_matches(';');
            let simple = !rhs_text.is_empty()
                && rhs_text
                    .chars()
                    .all(|c| is_ident_char(c) || c == '.' || c == '&' || c == '*');
            if simple {
                let rhs_start = at
                    + 3
                    + code[at + 3..]
                        .char_indices()
                        .find(|(_, c)| is_ident_char(*c))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                if let (Some(lhs), Some(rhs)) = (
                    path_segment_before(code, at),
                    path_segment_after(code, rhs_start),
                ) {
                    if let (Some(lu), Some(ru)) =
                        (resolve(&lhs, &local_units), resolve(&rhs, &local_units))
                    {
                        if !compatible(lu, ru, false)
                            && !pragmas.allows(Rule::UnitDataflow, &file.path, lineno)
                        {
                            out.push(mixed_violation(&file.path, lineno, &lhs, lu, "=", &rhs, ru));
                        }
                    }
                }
            }
        }

        // Non-canonical suffixes: first sighting per identifier per file.
        for (token, start) in ident_tokens_with_pos(code) {
            let Some((_, suffix)) = token.rsplit_once('_') else {
                continue;
            };
            let Ok(i) = ALIASES.binary_search_by_key(&suffix, |(a, _)| a) else {
                continue;
            };
            // Method calls (`.to_radians()`) and field projections of
            // foreign types are not this crate's naming to police.
            let preceded_by_dot = start > 0 && code.as_bytes()[start - 1] == b'.';
            let followed_by_paren = code.as_bytes().get(start + token.len()) == Some(&b'(');
            if preceded_by_dot || followed_by_paren || alias_seen.contains(&token) {
                continue;
            }
            alias_seen.push(token.clone());
            if pragmas.allows(Rule::UnitDataflow, &file.path, lineno) {
                continue;
            }
            let canonical = ALIASES[i].1;
            let renamed = format!(
                "{}_{canonical}",
                token.rsplit_once('_').map(|(h, _)| h).unwrap_or(&token)
            );
            out.push(
                Violation::new(
                    Rule::UnitDataflow,
                    &file.path,
                    lineno,
                    format!(
                        "non-canonical unit suffix `_{suffix}` on `{token}`: the workspace convention is `_{canonical}`"
                    ),
                )
                .with_note(format!(
                    "rename to `{renamed}` so unit suffixes stay greppable (suggestion only — review each use site)"
                ))
                .with_fix(
                    FixKind::ReplaceSubstr {
                        find: token.clone(),
                        replace: renamed,
                    },
                    false,
                ),
            );
        }

        // After the scans (so this line's operators saw the *prior*
        // state): record or kill the unit of a single-assignment local.
        update_locals(code, &mut local_units);
    }
}

/// True for a function-signature line (`fn` as a standalone token,
/// followed by a parameter list) — the scope boundary at which inferred
/// local units are discarded.
fn is_fn_sig(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn") {
        let start = from + rel;
        let end = start + 2;
        let before_ok = start == 0 || !is_ident_char(bytes[start - 1] as char);
        let after_ok = bytes.get(end).is_some_and(|&b| b == b' ');
        if before_ok && after_ok && code[end..].contains('(') {
            return true;
        }
        from = end;
    }
    false
}

/// Threads units through simple `let` rebindings: `let x = rssi_dbm;`
/// gives the suffix-less `x` the unit dBm, so `x + height_m` two lines
/// later still flags. Chains resolve through the map (`let y = x;`
/// inherits), and any rebinding whose right-hand side is not a bare
/// unit-bearing path kills the entry — single-assignment tracking, no
/// mutation analysis.
fn update_locals(code: &str, locals: &mut BTreeMap<String, &'static str>) {
    let Some(at) = code.find(" = ") else {
        return;
    };
    // Left side: `let [mut] name[: Ty]` or a bare `name` reassignment.
    let head = code[..at].trim();
    let head = head.split(':').next().unwrap_or(head).trim_end();
    let head = head.strip_prefix("let ").unwrap_or(head).trim_start();
    let name = head.strip_prefix("mut ").unwrap_or(head).trim_start();
    if name.is_empty()
        || !name.chars().all(is_ident_char)
        || !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
    {
        return;
    }
    // A suffixed name documents its own unit — never shadow that.
    if unit_of(name).is_some() {
        locals.remove(name);
        return;
    }
    let rhs_text = code[at + 3..].trim().trim_end_matches(';');
    let simple = !rhs_text.is_empty()
        && rhs_text
            .chars()
            .all(|c| is_ident_char(c) || c == '.' || c == '&' || c == '*');
    let inferred = simple
        .then(|| {
            let last = rhs_text
                .trim_start_matches(['&', '*'])
                .rsplit('.')
                .next()
                .unwrap_or("");
            unit_of(last).or_else(|| locals.get(last).copied())
        })
        .flatten();
    match inferred {
        Some(u) => {
            locals.insert(name.to_string(), u);
        }
        None => {
            locals.remove(name);
        }
    }
}

fn mixed_violation(
    file: &str,
    line: usize,
    lhs: &str,
    lu: &str,
    op: &str,
    rhs: &str,
    ru: &str,
) -> Violation {
    Violation::new(
        Rule::UnitDataflow,
        file,
        line,
        format!(
            "mixed units: `{lhs}` is {} but `{rhs}` is {} (`{op}`)",
            human(lu),
            human(ru)
        ),
    )
    .with_note(
        "convert one side explicitly (the conversion factor documents the intent), or add \
         `// lint: allow(unit_dataflow) — <why the units agree>`",
    )
}

fn ident_tokens_with_pos(code: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in code
        .char_indices()
        .chain(std::iter::once((code.len(), ' ')))
    {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            let tok = &code[s..i];
            if tok.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                out.push((tok.to_string(), s));
            }
        }
    }
    out
}

/// Cross-function check: call arguments vs. callee parameter names.
fn scan_call_sites(table: &SymbolTable, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    for f in &table.fns {
        for call in &f.calls {
            let candidates = crate::callgraph::resolve(table, f, call);
            if candidates.is_empty() {
                continue;
            }
            for (pos, arg) in call.args.iter().enumerate() {
                // Only bare identifier paths carry a unit we can trust.
                let arg = arg.trim_start_matches(['&', '*']);
                if arg.is_empty() || !arg.chars().all(|c| is_ident_char(c) || c == '.') {
                    continue;
                }
                let last = arg.rsplit('.').next().unwrap_or(arg);
                let Some(au) = unit_of(last) else {
                    continue;
                };
                // Every candidate must disagree; one match or unknown
                // exonerates the call (ambiguous names never flag).
                let mut verdicts = Vec::new();
                for &c in &candidates {
                    let param = table.fns[c].params.get(pos).cloned().unwrap_or_default();
                    let Some(pu) = unit_of(&param) else {
                        verdicts.clear();
                        break;
                    };
                    if compatible(au, pu, false) {
                        verdicts.clear();
                        break;
                    }
                    verdicts.push((param, pu));
                }
                let Some((param, pu)) = verdicts.first() else {
                    continue;
                };
                if pragmas.allows(Rule::UnitDataflow, &f.file, call.line) {
                    continue;
                }
                out.push(
                    Violation::new(
                        Rule::UnitDataflow,
                        &f.file,
                        call.line,
                        format!(
                            "argument `{last}` is {} but `{}` expects `{param}` in {}",
                            human(au),
                            call.callee,
                            human(pu)
                        ),
                    )
                    .with_note(
                        "convert at the call site, or add `// lint: allow(unit_dataflow) — <why>`",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileContext;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::parse("crates/core/src/t.rs", src);
        let files = vec![(file, FileContext::all())];
        let table = SymbolTable::build(&files);
        let sources: Vec<&SourceFile> = files.iter().map(|(f, _)| f).collect();
        let mut pragmas = PragmaSet::collect(sources);
        let mut out = Vec::new();
        w008_unit_dataflow(&files, &table, &mut pragmas, &mut out);
        out
    }

    #[test]
    fn unit_inference_from_suffixes() {
        assert_eq!(unit_of("rss_dbm"), Some("dbm"));
        assert_eq!(unit_of("start_us"), Some("us"));
        assert_eq!(unit_of("elapsed_seconds"), Some("s"));
        assert_eq!(unit_of("plain"), None);
        assert_eq!(unit_of("m"), None);
    }

    #[test]
    fn mixed_addition_is_flagged() {
        let v = run("fn f(a_dbm: f64, b_m: f64) -> f64 {\n    let x = a_dbm + b_m;\n    x\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("mixed units"), "{}", v[0].message);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn same_unit_and_dbm_plus_db_are_clean() {
        let v = run(
            "fn f(a_dbm: f64, loss_db: f64, c_m: f64, d_m: f64) -> f64 {\n    let rx_dbm = a_dbm - loss_db;\n    let sum_m = c_m + d_m;\n    rx_dbm.max(sum_m)\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dbm_compared_to_db_is_flagged() {
        let v = run("fn f(a_dbm: f64, b_db: f64) -> bool {\n    a_dbm < b_db\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn seconds_vs_micros_is_flagged() {
        let v = run("fn f(t_s: f64, limit_us: f64) -> bool {\n    t_s > limit_us\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("seconds") && v[0].message.contains("microseconds"));
    }

    #[test]
    fn multiplication_forms_units_and_is_clean() {
        let v = run("fn f(d_m: f64, t_s: f64) -> f64 {\n    d_m / t_s\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cross_function_arg_mismatch_is_flagged() {
        let src = "\
fn caller(time_at_s: f64) -> f64 { scaled(time_at_s) }
fn scaled(t_us: f64) -> f64 { t_us }
";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("time_at_s") && v[0].message.contains("scaled"));
    }

    #[test]
    fn alias_suffix_gets_suggestion_fix() {
        let v = run("fn f() {\n    let elapsed_seconds = 0.0;\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let fix = v[0].fix.as_ref().expect("fix");
        assert!(!fix.safe);
        match &fix.kind {
            FixKind::ReplaceSubstr { find, replace } => {
                assert_eq!(find, "elapsed_seconds");
                assert_eq!(replace, "elapsed_s");
            }
            other => panic!("unexpected fix {other:?}"),
        }
    }

    #[test]
    fn method_names_are_not_policed() {
        let v = run("fn f(x_deg: f64) -> f64 {\n    x_deg.to_radians()\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_threads_through_let_rebinding() {
        let v = run(
            "fn f(rssi_dbm: f64, height_m: f64) -> f64 {\n    let x = rssi_dbm;\n    let y = x + height_m;\n    y\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("mixed units"), "{}", v[0].message);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn rebinding_chain_and_scope_reset() {
        // `y` inherits through `x`; the second fn resets the map, so its
        // own `x` carries no unit.
        let v = run(
            "fn f(t_us: f64) -> f64 {\n    let x = t_us;\n    let y = x;\n    y\n}\nfn g(d_m: f64, x: f64) -> f64 {\n    x + d_m\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_simple_rebinding_kills_the_unit() {
        // `x` is rebound to a cast — its unit is no longer knowable.
        let v = run(
            "fn f(t_us: f64, d_m: f64) -> f64 {\n    let mut x = t_us;\n    x = t_us * 2.0;\n    x + d_m\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pragma_suppresses() {
        let v = run(
            "fn f(a_s: f64, b_us: f64) -> bool {\n    // lint: allow(unit_dataflow) — b_us is pre-scaled\n    a_s > b_us\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}

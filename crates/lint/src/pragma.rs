//! Allow-pragma parsing and bookkeeping.
//!
//! A pragma suppresses one rule on the line it sits on (trailing comment)
//! or, when it occupies its own line, on the next code line:
//!
//! ```text
//! // lint: allow(unordered_iter) — summed into a commutative integer total
//! for v in map.values() { total += v; }
//! ```
//!
//! W005 enforces hygiene: the rule slug must exist, a reason must follow,
//! and the pragma must actually suppress something.

use crate::diag::{Rule, Violation};
use crate::lexer::SourceFile;

/// One parsed pragma occurrence.
#[derive(Debug)]
pub struct Pragma {
    pub file: String,
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// The rule it names, if the slug is valid.
    pub rule: Option<Rule>,
    /// The raw slug text inside `allow(…)`.
    pub slug: String,
    /// The reason text after the closing paren, dashes stripped.
    pub reason: String,
    /// Set when a rule consults this pragma and suppresses a violation.
    pub used: bool,
}

/// All pragmas in a file set, with lookup by (file, line).
#[derive(Debug, Default)]
pub struct PragmaSet {
    pragmas: Vec<Pragma>,
}

const MARKER: &str = "lint: allow(";

impl PragmaSet {
    /// Scans `files` for `lint: allow(…)` comments.
    pub fn collect<'a>(files: impl IntoIterator<Item = &'a SourceFile>) -> Self {
        let mut pragmas = Vec::new();
        for file in files {
            for (idx, line) in file.lines.iter().enumerate() {
                let Some(start) = line.comment.find(MARKER) else {
                    continue;
                };
                let rest = &line.comment[start + MARKER.len()..];
                let (slug, reason) = match rest.find(')') {
                    Some(close) => {
                        let slug = rest[..close].trim().to_string();
                        let tail = rest[close + 1..]
                            .trim_start_matches([' ', '\u{2014}', '-', ':', '\u{2013}'])
                            .trim();
                        (slug, tail.to_string())
                    }
                    None => (rest.trim().to_string(), String::new()),
                };
                pragmas.push(Pragma {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: Rule::from_slug(&slug),
                    slug,
                    reason,
                    used: false,
                });
            }
        }
        Self { pragmas }
    }

    /// True (and marks the pragma used) if a pragma for `rule` covers
    /// 1-based `line` in `file` — either on the line itself or on the
    /// immediately preceding line.
    pub fn allows(&mut self, rule: Rule, file: &str, line: usize) -> bool {
        let mut hit = false;
        for p in &mut self.pragmas {
            if p.rule == Some(rule)
                && p.file == file
                && !p.reason.is_empty()
                && (p.line == line || p.line + 1 == line)
            {
                p.used = true;
                hit = true;
            }
        }
        hit
    }

    /// W005: report malformed (unknown slug / missing reason) and unused
    /// pragmas. Call after every other rule has run.
    pub fn hygiene_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for p in &self.pragmas {
            if p.rule.is_none() {
                out.push(
                    Violation::new(
                        Rule::PragmaHygiene,
                        &p.file,
                        p.line,
                        format!("pragma names unknown rule `{}`", p.slug),
                    )
                    .with_note("valid slugs: unordered_iter, panic_in_library, atomic_ordering, accounting, pragma_hygiene, span_discipline, lock_order, unit_dataflow, transitive_panic, raw_sync, metric_hygiene, hot_path_effects, read_path_purity"),
                );
            } else if p.reason.is_empty() {
                out.push(
                    Violation::new(
                        Rule::PragmaHygiene,
                        &p.file,
                        p.line,
                        format!("pragma `allow({})` carries no reason", p.slug),
                    )
                    .with_note("write `// lint: allow(<rule>) — <why this is sound>`"),
                );
            } else if !p.used {
                out.push(
                    Violation::new(
                        Rule::PragmaHygiene,
                        &p.file,
                        p.line,
                        format!("pragma `allow({})` suppresses nothing", p.slug),
                    )
                    .with_note("delete the stale pragma or move it to the offending line"),
                );
            }
        }
        out
    }
}

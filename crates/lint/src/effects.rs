//! Phase 3: interprocedural effect inference and the hot-path budget
//! rules W012 (`hot_path_effects`) / W013 (`read_path_purity`).
//!
//! Every workspace function gets a conservative effect set over the
//! six-bit lattice
//!
//! ```text
//! { allocates, acquires_lock, blocks_or_syscalls,
//!   reads_clock, panics, unbounded_iteration }
//! ```
//!
//! ordered by set inclusion; join is bitwise OR, ⊥ is the empty set, ⊤
//! is all six bits. Sets are seeded syntactically per function body —
//! allocation calls (`Vec::new`, `push`, `collect`, `format!`,
//! `Box::new`, …), clock reads (`Instant::now`, `.now_us()`), blocking
//! syscalls (`thread::sleep`, `Condvar` waits, `TcpStream` I/O),
//! unbounded loop headers (`loop`, `while` without a bounded shape) —
//! with lock acquisitions and panic sites reused from the phase-2
//! tables ([`FnSym::acquires`], [`FnSym::panics`]), then propagated to
//! a fixpoint over the call graph: `effects(f) = seeds(f) ⊔
//! ⊔_{g ∈ callees(f)} effects(g)`. The lattice is finite and the
//! transfer function monotone, so the fixpoint exists, is unique, and
//! is independent of iteration order (see `tests/effects_props.rs`).
//!
//! Calls the resolver cannot pin to a workspace function contribute no
//! edge — their effects are covered by the *syntactic* seeds on the
//! call line itself (that is what keeps `v.push(x)` an allocation even
//! though `push` resolves nowhere). Two call shapes genuinely escape
//! that net and default to ⊤: calls through a `dyn Trait` receiver
//! (any impl could be behind the vtable) and calls of a caller
//! parameter (a caller-supplied closure such as the snapshot
//! `builder`). Both are pessimistic by design; a reasoned
//! `// lint: allow(...)` pragma at the call line is the escape hatch.
//!
//! **W012** — a function may declare itself a hot entry point with a
//! budget annotation on the line(s) above its signature:
//!
//! ```text
//! // lint: hot_path(deny: allocates, acquires_lock, reads_clock)
//! pub fn fast_fix(&mut self, ...) -> Fix {
//! ```
//!
//! Every function transitively reachable from the entry must fit the
//! budget. A violation is reported at the entry's signature with the
//! full call chain and a `file:line` witness of the offending site —
//! the same UX as W007's lock-cycle witnesses. A pragma either at the
//! witness line or at any call line along the chain dissolves it.
//!
//! **W013** — `QuerySnapshot` reader methods and the request handlers
//! in `crates/serve/src/service.rs` are implicit entries with a fixed
//! deny set `{acquires_lock, blocks_or_syscalls, unbounded_iteration}`:
//! the read path must never touch ingest locks, block, or loop
//! unboundedly. The documented carve-out — `SnapshotCell::read`'s
//! one-slot read-lock + `Arc` clone — is blessed as a leaf and not
//! descended into. `reads_clock` is deliberately absent from the deny
//! set: the serve layer's latency metering reads the mock-able service
//! clock on purpose.

use crate::callgraph::resolve;
use crate::diag::{Rule, Violation};
use crate::lexer::SourceFile;
use crate::pragma::PragmaSet;
use crate::symbols::{EffectSite, FnSym, SymbolTable};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Heap allocation (or growth) on the line.
pub const ALLOCATES: u8 = 1 << 0;
/// Takes a `Mutex`/`RwLock` (from the phase-2 acquire table).
pub const ACQUIRES_LOCK: u8 = 1 << 1;
/// Sleeps, waits on a condvar, joins a thread, or does socket/file I/O.
pub const BLOCKS_OR_SYSCALLS: u8 = 1 << 2;
/// Reads a wall/monotonic clock (`Instant::now`, clock-trait calls).
pub const READS_CLOCK: u8 = 1 << 3;
/// May panic (from the phase-1 panic table).
pub const PANICS: u8 = 1 << 4;
/// `loop { … }` or a `while` whose condition has no bounded shape.
pub const UNBOUNDED_ITERATION: u8 = 1 << 5;
/// ⊤: all six effects. Assigned to dynamic-dispatch and
/// caller-supplied-closure call sites.
pub const TOP: u8 = 0b11_1111;

/// Name ↔ bit table, in canonical display order.
pub const EFFECT_NAMES: [(&str, u8); 6] = [
    ("allocates", ALLOCATES),
    ("acquires_lock", ACQUIRES_LOCK),
    ("blocks_or_syscalls", BLOCKS_OR_SYSCALLS),
    ("reads_clock", READS_CLOCK),
    ("panics", PANICS),
    ("unbounded_iteration", UNBOUNDED_ITERATION),
];

/// Lattice join: bitwise OR, clamped to the six defined bits.
pub fn join(a: u8, b: u8) -> u8 {
    (a | b) & TOP
}

/// The bit for an effect name, if it names one.
pub fn effect_bit(name: &str) -> Option<u8> {
    EFFECT_NAMES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, b)| b)
}

/// Renders a mask as a comma-separated effect list (`∅` when empty).
pub fn describe(mask: u8) -> String {
    let names: Vec<&str> = EFFECT_NAMES
        .iter()
        .filter(|&&(_, b)| mask & b != 0)
        .map(|&(n, _)| n)
        .collect();
    if names.is_empty() {
        "∅".to_string()
    } else {
        names.join(", ")
    }
}

// ---------------------------------------------------------------------------
// Syntactic seeds
// ---------------------------------------------------------------------------

/// Allocation sources: constructors that take heap, growth methods on
/// collections, and the formatting/boxing macros. Method patterns
/// start with `.` so plain idents never match.
const ALLOC_PATTERNS: &[(&str, &str)] = &[
    ("Vec::new(", "Vec::new"),
    ("Vec::with_capacity(", "Vec::with_capacity"),
    ("vec![", "vec![...]"),
    ("Box::new(", "Box::new"),
    ("Arc::new(", "Arc::new"),
    ("Rc::new(", "Rc::new"),
    ("String::new(", "String::new"),
    ("String::from(", "String::from"),
    ("String::with_capacity(", "String::with_capacity"),
    ("format!(", "format!"),
    (".to_vec()", ".to_vec()"),
    (".to_string()", ".to_string()"),
    (".to_owned()", ".to_owned()"),
    (".collect()", ".collect()"),
    (".collect::<", ".collect()"),
    (".push(", ".push(..)"),
    (".push_str(", ".push_str(..)"),
    (".insert(", ".insert(..)"),
    (".extend(", ".extend(..)"),
    (".entry(", ".entry(..)"),
    (".resize(", ".resize(..)"),
    (".reserve(", ".reserve(..)"),
];

/// Clock reads: the std constructors plus the workspace `Clock` trait
/// surface (`now_us`/`now_s` are its only methods) and `.elapsed()`.
const CLOCK_PATTERNS: &[(&str, &str)] = &[
    ("Instant::now(", "Instant::now"),
    ("SystemTime::now(", "SystemTime::now"),
    (".now_us(", ".now_us()"),
    (".now_s(", ".now_s()"),
    (".elapsed(", ".elapsed()"),
];

/// Blocking / syscall sources: sleeps, condvar waits, thread joins,
/// channel receives, socket and file I/O.
const BLOCK_PATTERNS: &[(&str, &str)] = &[
    ("thread::sleep(", "thread::sleep"),
    (".wait(", "Condvar::wait"),
    (".wait_timeout(", "Condvar::wait_timeout"),
    (".join()", ".join()"),
    (".recv()", ".recv()"),
    (".recv_timeout(", ".recv_timeout(..)"),
    ("TcpStream::", "TcpStream"),
    ("TcpListener::", "TcpListener"),
    ("UdpSocket::", "UdpSocket"),
    ("File::open(", "File::open"),
    ("File::create(", "File::create"),
    ("std::fs::", "std::fs"),
    (".accept()", ".accept()"),
    (".read_to_string(", ".read_to_string(..)"),
    (".read_to_end(", ".read_to_end(..)"),
    (".read_exact(", ".read_exact(..)"),
    (".write_all(", ".write_all(..)"),
    (".flush()", ".flush()"),
];

/// Scans one blanked code line for effect seeds and appends them.
/// Called from the phase-1 body scan so the seeds ride the same pass
/// that already extracts calls, acquires, and panics.
pub fn seed_line(code: &str, lineno: usize, out: &mut Vec<EffectSite>) {
    for &(pat, what) in ALLOC_PATTERNS {
        if code.contains(pat) {
            out.push(EffectSite {
                mask: ALLOCATES,
                line: lineno,
                what: what.to_string(),
            });
        }
    }
    for &(pat, what) in CLOCK_PATTERNS {
        if code.contains(pat) {
            out.push(EffectSite {
                mask: READS_CLOCK,
                line: lineno,
                what: what.to_string(),
            });
        }
    }
    for &(pat, what) in BLOCK_PATTERNS {
        if code.contains(pat) {
            out.push(EffectSite {
                mask: BLOCKS_OR_SYSCALLS,
                line: lineno,
                what: what.to_string(),
            });
        }
    }
    if let Some(what) = unbounded_loop_header(code) {
        out.push(EffectSite {
            mask: UNBOUNDED_ITERATION,
            line: lineno,
            what,
        });
    }
}

/// `loop { … }` is always unbounded. A `while` is unbounded unless its
/// condition has a bounded-range shape: `while let …` (drains a finite
/// pattern/iterator) or a comparison-guarded counter (`while i < n`).
/// `for` loops are never flagged — their iterator is the bound.
fn unbounded_loop_header(code: &str) -> Option<String> {
    if has_keyword(code, "loop") {
        return Some("loop { .. }".to_string());
    }
    if let Some(pos) = keyword_pos(code, "while") {
        let cond = &code[pos + "while".len()..];
        let bounded = cond.trim_start().starts_with("let ")
            || [" < ", " <= ", " > ", " >= ", " != "]
                .iter()
                .any(|op| cond.contains(op));
        if !bounded {
            return Some("while { .. } without bounded shape".to_string());
        }
    }
    None
}

fn has_keyword(code: &str, kw: &str) -> bool {
    keyword_pos(code, kw).is_some()
}

/// Byte offset of `kw` as a standalone token, if present.
fn keyword_pos(code: &str, kw: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(kw) {
        let start = from + rel;
        let end = start + kw.len();
        let before_ok = start == 0 || !crate::lexer::is_ident_char(bytes[start - 1] as char);
        let after_ok = end >= bytes.len() || !crate::lexer::is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

/// A function's own (intraprocedural) effect mask: its syntactic seeds
/// plus the phase-2 lock/panic tables, plus ⊤ if it has a ⊤ call site.
pub fn local_effects(f: &FnSym) -> u8 {
    let mut m = 0;
    if !f.acquires.is_empty() {
        m |= ACQUIRES_LOCK;
    }
    if !f.panics.is_empty() {
        m |= PANICS;
    }
    for s in &f.effects {
        m |= s.mask;
    }
    if f.calls.iter().any(|c| is_top_call(f, c)) {
        m = TOP;
    }
    m
}

/// A call site the resolver cannot reason about: dynamic dispatch
/// through a `dyn Trait` field (the phase-1 field-type pass plants a
/// `dyn` sentinel qual) or a bare invocation of a caller parameter (a
/// caller-supplied closure). Both default to ⊤. Method calls that
/// merely share a parameter's name (`route.id()` with a param `id`)
/// are not closure invocations — `bare` gates those out.
pub fn is_top_call(caller: &FnSym, call: &crate::symbols::CallSite) -> bool {
    if call.quals.iter().any(|q| q == "dyn") {
        return true;
    }
    call.bare && !call.callee.is_empty() && caller.params.iter().any(|p| p == &call.callee)
}

/// Pure fixpoint over an adjacency list: `out[i] = local[i] ⊔
/// ⊔_{j ∈ edges[i]} out[j]`. Exposed standalone (no symbol table) so
/// the property tests can drive it with randomized graphs.
/// Out-of-range edge targets are ignored. Terminates because the
/// per-node mask only grows and is bounded by ⊤.
pub fn fixpoint(local: &[u8], edges: &[Vec<usize>]) -> Vec<u8> {
    let mut eff: Vec<u8> = local.iter().map(|&m| m & TOP).collect();
    loop {
        let mut changed = false;
        for i in 0..eff.len() {
            let mut m = eff[i];
            for &j in &edges[i] {
                if j < eff.len() {
                    m = join(m, eff[j]);
                }
            }
            if m != eff[i] {
                eff[i] = m;
                changed = true;
            }
        }
        if !changed {
            return eff;
        }
    }
}

/// Infers the transitive effect mask of every function in the table.
/// Indices align with `table.fns`.
pub fn infer(table: &SymbolTable) -> Vec<u8> {
    let local: Vec<u8> = table.fns.iter().map(local_effects).collect();
    let edges: Vec<Vec<usize>> = table
        .fns
        .iter()
        .map(|f| {
            let mut out: Vec<usize> = f.calls.iter().flat_map(|c| resolve(table, f, c)).collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();
    fixpoint(&local, &edges)
}

// ---------------------------------------------------------------------------
// Budget annotations
// ---------------------------------------------------------------------------

/// A parsed `// lint: hot_path(deny: …)` annotation bound to the
/// function signature it precedes.
struct Budget {
    file: String,
    /// Line of the annotation comment (1-based).
    line: usize,
    /// Denied-effect mask.
    deny: u8,
    /// Index of the annotated function in `table.fns`.
    fn_idx: usize,
}

const HOT_PATH_MARKER: &str = "lint: hot_path(";

/// Collects budget annotations from every file, emitting W012
/// diagnostics for malformed or dangling ones.
fn collect_budgets(
    files: &[&SourceFile],
    table: &SymbolTable,
    out: &mut Vec<Violation>,
) -> Vec<Budget> {
    // (file, sig_line) → fn index, for attaching annotations.
    let mut by_sig: BTreeMap<(&str, usize), usize> = BTreeMap::new();
    for (i, f) in table.fns.iter().enumerate() {
        by_sig.insert((f.file.as_str(), f.sig_line), i);
    }

    let mut budgets = Vec::new();
    for file in files {
        for (idx, line) in file.lines.iter().enumerate() {
            let Some(pos) = line.comment.find(HOT_PATH_MARKER) else {
                continue;
            };
            let lineno = idx + 1;
            let body = &line.comment[pos + HOT_PATH_MARKER.len()..];
            let deny = match parse_deny(body) {
                Ok(mask) => mask,
                Err(why) => {
                    out.push(
                        Violation::new(
                            Rule::HotPathEffects,
                            &file.path,
                            lineno,
                            format!("malformed hot_path budget annotation: {why}"),
                        )
                        .with_note(format!(
                            "grammar: `// lint: hot_path(deny: <effect>[, <effect>]*)` \
                             where <effect> ∈ {{{}}}",
                            EFFECT_NAMES.map(|(n, _)| n).join(", ")
                        )),
                    );
                    continue;
                }
            };
            // Attach to the annotation's own line if it is a trailing
            // comment on the signature, else to the next code line.
            let target = if by_sig.contains_key(&(file.path.as_str(), lineno)) {
                Some(lineno)
            } else {
                file.lines[idx + 1..]
                    .iter()
                    .enumerate()
                    .map(|(k, l)| (lineno + 1 + k, l))
                    .find(|(_, l)| {
                        let t = l.code.trim();
                        !t.is_empty() && !t.starts_with("#[")
                    })
                    .map(|(n, _)| n)
            };
            match target.and_then(|n| by_sig.get(&(file.path.as_str(), n))) {
                Some(&fn_idx) => budgets.push(Budget {
                    file: file.path.clone(),
                    line: lineno,
                    deny,
                    fn_idx,
                }),
                None => out.push(
                    Violation::new(
                        Rule::HotPathEffects,
                        &file.path,
                        lineno,
                        "hot_path budget annotation attaches to no function \
                         signature"
                            .to_string(),
                    )
                    .with_note(
                        "place it on the line(s) directly above `fn …`, or as a \
                         trailing comment on the signature line",
                    ),
                ),
            }
        }
    }
    budgets
}

/// Parses `deny: a, b, c)` (the text after the marker) into a mask.
fn parse_deny(body: &str) -> Result<u8, String> {
    let Some(close) = body.find(')') else {
        return Err("missing closing `)`".to_string());
    };
    let inner = body[..close].trim();
    let Some(list) = inner.strip_prefix("deny:") else {
        return Err("expected `deny:` after `hot_path(`".to_string());
    };
    let mut mask = 0u8;
    let mut any = false;
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        any = true;
        match effect_bit(name) {
            Some(bit) => mask |= bit,
            None => return Err(format!("unknown effect `{name}`")),
        }
    }
    if !any {
        return Err("empty deny list".to_string());
    }
    Ok(mask)
}

// ---------------------------------------------------------------------------
// W012 / W013
// ---------------------------------------------------------------------------

/// One offending site inside a visited function.
struct Offense {
    line: usize,
    bit: u8,
    what: String,
}

/// All denied-effect sites of `f`, sorted by line then bit.
fn offenses(f: &FnSym, deny: u8) -> Vec<Offense> {
    let mut out = Vec::new();
    if deny & ACQUIRES_LOCK != 0 {
        for a in &f.acquires {
            out.push(Offense {
                line: a.line,
                bit: ACQUIRES_LOCK,
                what: format!("acquires lock `{}`", a.class),
            });
        }
    }
    if deny & PANICS != 0 {
        for p in &f.panics {
            out.push(Offense {
                line: p.line,
                bit: PANICS,
                what: format!("may panic: `{}`", p.what),
            });
        }
    }
    for s in &f.effects {
        if s.mask & deny != 0 {
            out.push(Offense {
                line: s.line,
                bit: s.mask & deny,
                what: format!("`{}`", s.what),
            });
        }
    }
    for c in f.calls.iter().filter(|c| is_top_call(f, c)) {
        if deny != 0 {
            out.push(Offense {
                line: c.line,
                bit: deny,
                what: format!(
                    "call of `{}` — dynamic dispatch or caller-supplied \
                     closure, assumed ⊤",
                    c.callee
                ),
            });
        }
    }
    out.sort_by_key(|o| (o.line, o.bit));
    out
}

/// Display name for diagnostics: `Owner::name` or bare `name`.
fn qual_name(f: &FnSym) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

/// BFS from `entry`, reporting the first witness per denied bit.
///
/// Pragma dissolution mirrors W007: an allow pragma for `rule` at the
/// offending site's line suppresses that site, and one at a call line
/// cuts the edge (everything reached only through it goes unreported).
/// Descent is pruned by the inferred masks — a callee whose transitive
/// set is disjoint from the deny mask cannot contain a witness.
#[allow(clippy::too_many_arguments)]
fn check_entry(
    table: &SymbolTable,
    inferred: &[u8],
    pragmas: &mut PragmaSet,
    rule: Rule,
    entry: usize,
    deny: u8,
    report_at: (&str, usize),
    blessed: &dyn Fn(&FnSym) -> bool,
    out: &mut Vec<Violation>,
) {
    let fns = &table.fns;
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen = vec![false; fns.len()];
    let mut queue = VecDeque::new();
    seen[entry] = true;
    queue.push_back(entry);
    // Bits already witnessed for this entry (one diagnostic per bit).
    let mut reported: u8 = 0;

    while let Some(i) = queue.pop_front() {
        let f = &fns[i];
        if i != entry && blessed(f) {
            continue;
        }
        for o in offenses(f, deny) {
            let fresh = o.bit & deny & !reported;
            if fresh == 0 {
                continue;
            }
            if pragmas.allows(rule, &f.file, o.line) {
                continue;
            }
            reported |= fresh;
            let mut chain = vec![qual_name(f)];
            let mut cur = i;
            while let Some(&p) = parent.get(&cur) {
                chain.push(qual_name(&fns[p]));
                cur = p;
            }
            chain.reverse();
            let effects_txt = describe(fresh);
            let msg = if i == entry {
                format!(
                    "hot path `{}` denies `{effects_txt}` but {} in its own body ({}:{})",
                    qual_name(f),
                    o.what,
                    f.file,
                    o.line,
                )
            } else {
                format!(
                    "hot path `{}` denies `{effects_txt}`, reached via `{}` — {} ({}:{})",
                    qual_name(&fns[entry]),
                    chain.join("` → `"),
                    o.what,
                    f.file,
                    o.line,
                )
            };
            out.push(
                Violation::new(rule, report_at.0, report_at.1, msg).with_note(format!(
                    "inferred effect set of `{}`: {{{}}}; refactor the effect \
                     off the hot path, or add `// lint: allow({}) — <reason>` \
                     at the witness or a call line on the chain",
                    qual_name(&fns[entry]),
                    describe(inferred[entry]),
                    rule.slug(),
                )),
            );
        }
        for c in &f.calls {
            if is_top_call(f, c) {
                continue; // already reported as an offense above
            }
            let targets = resolve(table, f, c);
            if targets.is_empty() {
                continue;
            }
            // An allow pragma at the call line cuts this edge.
            let mut edge_cut = None;
            for j in targets {
                if seen[j] || inferred[j] & deny == 0 {
                    continue;
                }
                if *edge_cut.get_or_insert_with(|| pragmas.allows(rule, &f.file, c.line)) {
                    continue;
                }
                seen[j] = true;
                parent.insert(j, i);
                queue.push_back(j);
            }
        }
    }
}

/// W012 `hot_path_effects`: every function reachable from a
/// budget-annotated entry point must fit the entry's deny mask.
pub fn w012_hot_path(
    files: &[&SourceFile],
    table: &SymbolTable,
    pragmas: &mut PragmaSet,
    out: &mut Vec<Violation>,
) {
    let budgets = collect_budgets(files, table, out);
    if budgets.is_empty() {
        return;
    }
    let inferred = infer(table);
    for b in &budgets {
        check_entry(
            table,
            &inferred,
            pragmas,
            Rule::HotPathEffects,
            b.fn_idx,
            b.deny,
            (&b.file, b.line),
            &|_| false,
            out,
        );
    }
}

/// W013's fixed deny mask: the read path must never take ingest locks,
/// block, or loop unboundedly. `reads_clock` is sanctioned (latency
/// metering), `allocates` is tolerated (handlers serialize JSON),
/// `panics` is W002/W009's beat.
pub const READ_PATH_DENY: u8 = ACQUIRES_LOCK | BLOCKS_OR_SYSCALLS | UNBOUNDED_ITERATION;

/// W013 `read_path_purity`: `QuerySnapshot` reader methods and the
/// `serve` request handlers must stay effect-free beyond the blessed
/// `SnapshotCell::read` leaf (the documented one-slot read-lock +
/// `Arc` clone).
pub fn w013_read_path(table: &SymbolTable, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    let blessed = |f: &FnSym| {
        f.owner.as_deref() == Some("SnapshotCell") && (f.name == "read" || f.name == "epoch")
    };
    let entries: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.owner.as_deref() == Some("QuerySnapshot")
                || (f.file.ends_with("serve/src/service.rs") && f.is_pub)
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return;
    }
    let inferred = infer(table);
    for &e in &entries {
        let f = &table.fns[e];
        check_entry(
            table,
            &inferred,
            pragmas,
            Rule::ReadPathPurity,
            e,
            READ_PATH_DENY,
            (&f.file.clone(), f.sig_line),
            &blessed,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_or() {
        assert_eq!(join(ALLOCATES, READS_CLOCK), ALLOCATES | READS_CLOCK);
        assert_eq!(join(TOP, PANICS), TOP);
        assert_eq!(join(0, 0), 0);
    }

    #[test]
    fn parse_deny_accepts_grammar() {
        assert_eq!(
            parse_deny("deny: allocates, reads_clock)"),
            Ok(ALLOCATES | READS_CLOCK)
        );
        assert!(parse_deny("deny: )").is_err());
        assert!(parse_deny("deny: warp_speed)").is_err());
        assert!(parse_deny("allow: allocates)").is_err());
        assert!(parse_deny("deny: allocates").is_err());
    }

    #[test]
    fn seeds_cover_the_sources() {
        let mut sites = Vec::new();
        seed_line("let v = Vec::new();", 1, &mut sites);
        seed_line("let t = clock.now_us();", 2, &mut sites);
        seed_line("thread::sleep(dt);", 3, &mut sites);
        seed_line("loop {", 4, &mut sites);
        let mask = sites.iter().fold(0, |m, s| m | s.mask);
        assert_eq!(
            mask,
            ALLOCATES | READS_CLOCK | BLOCKS_OR_SYSCALLS | UNBOUNDED_ITERATION
        );
    }

    #[test]
    fn bounded_loops_are_not_flagged() {
        assert!(unbounded_loop_header("while let Some(x) = it.next() {").is_none());
        assert!(unbounded_loop_header("while i < n {").is_none());
        assert!(unbounded_loop_header("for x in xs {").is_none());
        assert!(unbounded_loop_header("while running {").is_some());
        assert!(unbounded_loop_header("loop {").is_some());
    }

    #[test]
    fn fixpoint_propagates_over_chain() {
        // 0 → 1 → 2, with effects only at the leaf.
        let local = vec![0, 0, ALLOCATES | PANICS];
        let edges = vec![vec![1], vec![2], vec![]];
        let eff = fixpoint(&local, &edges);
        assert_eq!(eff, vec![ALLOCATES | PANICS; 3]);
    }

    #[test]
    fn fixpoint_handles_cycles() {
        let local = vec![READS_CLOCK, 0];
        let edges = vec![vec![1], vec![0]];
        assert_eq!(fixpoint(&local, &edges), vec![READS_CLOCK; 2]);
    }
}

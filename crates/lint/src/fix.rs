//! The `--fix` engine: derivation, application, and dry-run diffs.
//!
//! Fixes come in two tiers. **Safe** fixes are mechanical and
//! semantics-preserving under the rule's own contract — `--fix` applies
//! them to disk:
//!
//! * W003: a stronger-than-Relaxed ordering on an observability atomic
//!   becomes `Ordering::Relaxed` (the rule's whole claim is that Relaxed
//!   suffices for monotonic counters).
//! * W005: a stale pragma that suppresses nothing is deleted (the whole
//!   line when the pragma stands alone, just the trailing comment when it
//!   rides a code line).
//! * W002: `let x = expr.unwrap();` inside an `Option`-returning
//!   function becomes `let Some(x) = expr else { return None; };` — only
//!   that exact shape, anything fancier is left to a human.
//!
//! **Suggestions** (e.g. W008's suffix-normalizing renames) appear in the
//! `--fix --dry-run` diff as commentary but are never applied: a rename
//! touches every use site and deserves review.
//!
//! Edits target the **raw** line text the lexer retained, so comments and
//! string contents survive untouched. Application is bottom-up per file
//! so earlier edits never shift later line numbers.

use crate::diag::{FixKind, Rule, Violation};
use crate::lexer::SourceFile;
use crate::rules::FileContext;
use std::collections::BTreeMap;
use std::path::Path;

/// Derives fixes for violations that support them, in place. Violations
/// produced with a fix already attached (W008 renames) are left alone.
pub fn attach_fixes(files: &[(SourceFile, FileContext)], violations: &mut [Violation]) {
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|(f, _)| (f.path.as_str(), f)).collect();
    for v in violations.iter_mut() {
        if v.fix.is_some() {
            continue;
        }
        let Some(file) = by_path.get(v.file.as_str()) else {
            continue;
        };
        let Some(line) = file.lines.get(v.line.saturating_sub(1)) else {
            continue;
        };
        match v.rule {
            Rule::AtomicOrdering => {
                // Part-1 messages name the offending ordering in backticks.
                let Some(strong) = v
                    .message
                    .strip_prefix('`')
                    .and_then(|m| m.split('`').next())
                else {
                    continue;
                };
                if strong.starts_with("Ordering::") && line.raw.contains(strong) {
                    v.fix = Some(crate::diag::FixEdit {
                        kind: FixKind::ReplaceSubstr {
                            find: strong.to_string(),
                            replace: "Ordering::Relaxed".to_string(),
                        },
                        safe: true,
                    });
                }
            }
            Rule::PragmaHygiene if v.message.contains("suppresses nothing") => {
                let trimmed = line.raw.trim_start();
                if trimmed.starts_with("//") {
                    v.fix = Some(crate::diag::FixEdit {
                        kind: FixKind::DeleteLine,
                        safe: true,
                    });
                } else if let Some(cut) = comment_start(&line.raw) {
                    v.fix = Some(crate::diag::FixEdit {
                        kind: FixKind::ReplaceLine {
                            new: line.raw[..cut].trim_end().to_string(),
                        },
                        safe: true,
                    });
                }
            }
            Rule::PanicInLibrary if v.message.contains("`unwrap()`") => {
                if let Some(new) = let_else_rewrite(file, v.line) {
                    v.fix = Some(crate::diag::FixEdit {
                        kind: FixKind::ReplaceLine { new },
                        safe: true,
                    });
                }
            }
            _ => {}
        }
    }
}

/// Byte offset where the trailing `//` comment starts on a raw line,
/// using the blanked `code` text (so `//` inside a string never counts).
fn comment_start(raw: &str) -> Option<usize> {
    // The pragma marker lives in the comment; find the last `//` whose
    // remainder carries it.
    let mut best = None;
    let mut search = 0;
    while let Some(found) = raw[search..].find("//") {
        let at = search + found;
        if raw[at..].contains("lint: allow(") {
            best = Some(at);
        }
        search = at + 2;
    }
    best
}

/// For `let <ident> = <expr>.unwrap();` on `lineno` inside a function
/// whose return type is `Option<…>`, the let-else rewrite preserving the
/// original indentation. `None` when the shape doesn't match exactly.
fn let_else_rewrite(file: &SourceFile, lineno: usize) -> Option<String> {
    let line = file.lines.get(lineno - 1)?;
    let code = line.code.trim_end();
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let eq = rest.find('=')?;
    let name = rest[..eq].trim();
    if name.is_empty() || !name.chars().all(crate::lexer::is_ident_char) {
        return None;
    }
    let rhs = rest[eq + 1..].trim();
    let expr = rhs.strip_suffix(".unwrap();")?;
    if expr.contains(".unwrap()") {
        return None; // chained unwraps need a human
    }
    // The enclosing fn must return Option<…> for `return None` to type.
    let mut returns_option = false;
    for prev in file.lines[..lineno - 1].iter().rev() {
        let c = &prev.code;
        if c.contains("fn ") {
            returns_option = c.contains("-> Option<");
            break;
        }
    }
    if !returns_option {
        return None;
    }
    let indent: String = line.raw.chars().take_while(|c| c.is_whitespace()).collect();
    Some(format!(
        "{indent}let Some({name}) = {expr} else {{ return None; }};"
    ))
}

/// One file's worth of pending edits: (1-based line, fix, rule).
type FilePlan<'a> = Vec<(usize, &'a crate::diag::FixEdit, Rule)>;

/// Groups the safe fixes by file, bottom-up within each file.
fn plan(violations: &[Violation], safe_only: bool) -> BTreeMap<&str, FilePlan<'_>> {
    let mut by_file: BTreeMap<&str, FilePlan<'_>> = BTreeMap::new();
    for v in violations {
        let Some(fix) = &v.fix else { continue };
        if safe_only && !fix.safe {
            continue;
        }
        by_file
            .entry(&v.file)
            .or_default()
            .push((v.line, fix, v.rule));
    }
    for edits in by_file.values_mut() {
        edits.sort_by_key(|e| std::cmp::Reverse(e.0));
        edits.dedup_by(|a, b| a.0 == b.0); // one edit per line
    }
    by_file
}

/// Applies an edit to the line vector (0-based index already resolved).
fn apply_edit(lines: &mut Vec<String>, idx: usize, fix: &crate::diag::FixEdit) -> bool {
    match &fix.kind {
        FixKind::ReplaceSubstr { find, replace } => {
            let Some(at) = lines[idx].find(find.as_str()) else {
                return false;
            };
            lines[idx].replace_range(at..at + find.len(), replace);
            true
        }
        FixKind::ReplaceLine { new } => {
            lines[idx] = new.clone();
            true
        }
        FixKind::DeleteLine => {
            lines.remove(idx);
            true
        }
    }
}

/// Applies all safe fixes to disk, resolving each violation's
/// workspace-relative path against `root`. Returns the number of edits
/// applied.
pub fn apply_to_disk(root: &Path, violations: &[Violation]) -> std::io::Result<usize> {
    let mut applied = 0;
    for (rel, edits) in plan(violations, true) {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)?;
        let had_trailing_newline = text.ends_with('\n');
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut touched = false;
        for (lineno, fix, _) in edits {
            if lineno == 0 || lineno > lines.len() {
                continue;
            }
            if apply_edit(&mut lines, lineno - 1, fix) {
                applied += 1;
                touched = true;
            }
        }
        if touched {
            let mut out = lines.join("\n");
            if had_trailing_newline {
                out.push('\n');
            }
            std::fs::write(&path, out)?;
        }
    }
    Ok(applied)
}

/// Renders the dry-run report: a unified-style diff of every safe fix,
/// followed by suggestion commentary. Empty when there is nothing to do —
/// which is exactly what CI asserts on a clean tree.
pub fn dry_run(root: &Path, violations: &[Violation]) -> String {
    let mut out = String::new();
    for (rel, edits) in plan(violations, false) {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let lines: Vec<&str> = text.lines().collect();
        // Present top-down for reading, even though application order is
        // bottom-up.
        let mut hunks = String::new();
        let mut suggestions = String::new();
        for (lineno, fix, rule) in edits.iter().rev() {
            let Some(old) = lines.get(lineno - 1) else {
                continue;
            };
            let mut patched = vec![old.to_string()];
            let ok = apply_edit(&mut patched, 0, fix);
            if !ok {
                continue;
            }
            if fix.safe {
                hunks.push_str(&format!("@@ -{lineno} +{lineno} @@ [{}]\n", rule.code()));
                hunks.push_str(&format!("-{old}\n"));
                for new in &patched {
                    hunks.push_str(&format!("+{new}\n"));
                }
                if patched.is_empty() {
                    // DeleteLine: nothing to add.
                }
            } else {
                suggestions.push_str(&format!(
                    "# suggestion [{}] {rel}:{lineno}: {}\n",
                    rule.code(),
                    match &fix.kind {
                        FixKind::ReplaceSubstr { find, replace } =>
                            format!("rename `{find}` to `{replace}` (all use sites)"),
                        FixKind::ReplaceLine { new } => format!("rewrite as `{}`", new.trim()),
                        FixKind::DeleteLine => "delete this line".to_string(),
                    }
                ));
            }
        }
        if !hunks.is_empty() {
            out.push_str(&format!("--- a/{rel}\n+++ b/{rel}\n{hunks}"));
        }
        out.push_str(&suggestions);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use crate::lexer::SourceFile;
    use crate::rules::FileContext;

    fn analyzed(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::parse(path, src);
        analyze(&[(file, FileContext::all())])
    }

    #[test]
    fn stale_pragma_on_own_line_gets_delete_fix() {
        let src =
            "// lint: allow(unordered_iter) — left over from a refactor\nfn f() -> u32 { 0 }\n";
        let v = analyzed("fixture.rs", src);
        let stale = v
            .iter()
            .find(|v| v.message.contains("suppresses nothing"))
            .expect("stale pragma violation");
        let fix = stale.fix.as_ref().expect("fix");
        assert!(fix.safe);
        assert_eq!(fix.kind, FixKind::DeleteLine);
    }

    #[test]
    fn trailing_stale_pragma_strips_only_the_comment() {
        let src = "fn f() -> u32 { 0 } // lint: allow(unordered_iter) — stale\n";
        let v = analyzed("fixture.rs", src);
        let stale = v
            .iter()
            .find(|v| v.message.contains("suppresses nothing"))
            .expect("stale pragma violation");
        match &stale.fix.as_ref().expect("fix").kind {
            FixKind::ReplaceLine { new } => assert_eq!(new, "fn f() -> u32 { 0 }"),
            other => panic!("unexpected fix {other:?}"),
        }
    }

    #[test]
    fn strong_ordering_gets_relaxed_fix() {
        let src = "fn bump(c: &std::sync::atomic::AtomicU64) {\n    c.fetch_add(1, Ordering::SeqCst);\n}\n";
        let v = analyzed("fixture.rs", src);
        let strong = v
            .iter()
            .find(|v| v.rule == Rule::AtomicOrdering)
            .expect("ordering violation");
        match &strong.fix.as_ref().expect("fix").kind {
            FixKind::ReplaceSubstr { find, replace } => {
                assert_eq!(find, "Ordering::SeqCst");
                assert_eq!(replace, "Ordering::Relaxed");
            }
            other => panic!("unexpected fix {other:?}"),
        }
    }

    #[test]
    fn unwrap_in_option_fn_gets_let_else() {
        let src = "fn lookup(m: &std::collections::BTreeMap<u32, u32>) -> Option<u32> {\n    let v = m.get(&1).copied().unwrap();\n    Some(v)\n}\n";
        let v = analyzed("fixture.rs", src);
        let panic_v = v
            .iter()
            .find(|v| v.rule == Rule::PanicInLibrary)
            .expect("unwrap violation");
        match &panic_v.fix.as_ref().expect("fix").kind {
            FixKind::ReplaceLine { new } => {
                assert_eq!(
                    new,
                    "    let Some(v) = m.get(&1).copied() else { return None; };"
                );
            }
            other => panic!("unexpected fix {other:?}"),
        }
    }

    #[test]
    fn unwrap_outside_option_fn_gets_no_auto_fix() {
        let src = "fn lookup(m: &std::collections::BTreeMap<u32, u32>) -> u32 {\n    let v = m.get(&1).copied().unwrap();\n    v\n}\n";
        let v = analyzed("fixture.rs", src);
        let panic_v = v
            .iter()
            .find(|v| v.rule == Rule::PanicInLibrary)
            .expect("unwrap violation");
        assert!(panic_v.fix.is_none());
    }

    #[test]
    fn apply_edit_variants() {
        let mut lines = vec!["let a = b;".to_string(), "gone".to_string()];
        assert!(apply_edit(
            &mut lines,
            0,
            &crate::diag::FixEdit {
                kind: FixKind::ReplaceSubstr {
                    find: "b".into(),
                    replace: "c".into()
                },
                safe: true
            }
        ));
        assert_eq!(lines[0], "let a = c;");
        assert!(apply_edit(
            &mut lines,
            1,
            &crate::diag::FixEdit {
                kind: FixKind::DeleteLine,
                safe: true
            }
        ));
        assert_eq!(lines.len(), 1);
    }
}

//! CLI for `wilocator-lint`.
//!
//! ```text
//! cargo run -p wilocator-lint -- --workspace     # lint the whole tree
//! cargo run -p wilocator-lint -- path/to/file.rs # lint files (all rules)
//! cargo run -p wilocator-lint -- --rules         # print the rule catalog
//! ```
//!
//! Exits 0 when clean, 1 on any violation (including pragma-hygiene), 2
//! on usage errors.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::Path;
use std::process::ExitCode;

use wilocator_lint::{analyze_file_all_rules, find_workspace_root, run_workspace, ALL_RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in ALL_RULES {
            println!("{}  allow({})", rule.code(), rule.slug());
        }
        return ExitCode::SUCCESS;
    }

    let violations = if args.iter().any(|a| a == "--workspace") {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("wilocator-lint: cannot read current dir: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!(
                "wilocator-lint: no [workspace] Cargo.toml above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        };
        run_workspace(&root)
    } else {
        let mut all = Vec::new();
        for arg in &args {
            if arg.starts_with('-') {
                eprintln!("wilocator-lint: unknown flag `{arg}`");
                return ExitCode::from(2);
            }
            match std::fs::read_to_string(Path::new(arg)) {
                Ok(text) => all.extend(analyze_file_all_rules(arg, &text)),
                Err(e) => {
                    eprintln!("wilocator-lint: cannot read {arg}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    for v in &violations {
        println!("{v}\n");
    }
    if violations.is_empty() {
        println!("wilocator-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("wilocator-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn print_usage() {
    eprintln!(
        "usage: wilocator-lint --workspace | --rules | <file.rs>...\n\
         Checks determinism (W001), panic-freedom (W002), atomic orderings\n\
         (W003), accounting exhaustiveness (W004), pragma hygiene (W005)\n\
         and span guard discipline (W006)."
    );
}

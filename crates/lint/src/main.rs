//! CLI for `wilocator-lint`.
//!
//! ```text
//! cargo run -p wilocator-lint -- --workspace                # lint the whole tree
//! cargo run -p wilocator-lint -- --workspace --format sarif # SARIF 2.1.0 log on stdout
//! cargo run -p wilocator-lint -- --workspace --fix          # apply safe fixes
//! cargo run -p wilocator-lint -- --workspace --fix --dry-run# print the fix diff only
//! cargo run -p wilocator-lint -- path/to/file.rs            # lint files (all rules)
//! cargo run -p wilocator-lint -- --rules                    # print the rule catalog
//! ```
//!
//! Exits 0 when clean, 1 on any violation (including pragma-hygiene), 2
//! on usage errors.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wilocator_lint::{
    analyze_file_all_rules, find_workspace_root, fix, run_workspace_timed, sarif, ALL_RULES,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in ALL_RULES {
            println!("{}  allow({})", rule.code(), rule.slug());
        }
        return ExitCode::SUCCESS;
    }

    let want_sarif = match format_flag(&args) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("wilocator-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let want_fix = args.iter().any(|a| a == "--fix");
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let want_timings = args.iter().any(|a| a == "--timings");
    if dry_run && !want_fix {
        eprintln!("wilocator-lint: --dry-run only makes sense with --fix");
        return ExitCode::from(2);
    }
    if want_fix && want_sarif {
        eprintln!("wilocator-lint: --fix and --format sarif are mutually exclusive");
        return ExitCode::from(2);
    }

    // The root fixes resolve against: the workspace root in --workspace
    // mode, the current directory for explicit file arguments.
    let mut fix_root = PathBuf::from(".");
    let violations = if args.iter().any(|a| a == "--workspace") {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("wilocator-lint: cannot read current dir: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!(
                "wilocator-lint: no [workspace] Cargo.toml above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        };
        fix_root = root.clone();
        let (violations, timings) = run_workspace_timed(&root);
        if want_timings {
            // stderr, so `--format sarif` stdout stays machine-clean.
            eprintln!("{}", timings.render());
        }
        violations
    } else {
        let mut all = Vec::new();
        let mut skip_next = false;
        for arg in &args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if arg == "--format" {
                skip_next = true;
                continue;
            }
            if arg == "--fix"
                || arg == "--dry-run"
                || arg == "--timings"
                || arg.starts_with("--format=")
            {
                continue;
            }
            if arg.starts_with('-') {
                eprintln!("wilocator-lint: unknown flag `{arg}`");
                return ExitCode::from(2);
            }
            match std::fs::read_to_string(Path::new(arg)) {
                Ok(text) => all.extend(analyze_file_all_rules(arg, &text)),
                Err(e) => {
                    eprintln!("wilocator-lint: cannot read {arg}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    if want_fix && dry_run {
        // Diff only; CI's `lint-fix-is-noop` check asserts this is empty
        // on a clean tree.
        print!("{}", fix::dry_run(&fix_root, &violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if want_fix {
        match fix::apply_to_disk(&fix_root, &violations) {
            Ok(n) => println!("wilocator-lint: applied {n} fix(es)"),
            Err(e) => {
                eprintln!("wilocator-lint: fix failed: {e}");
                return ExitCode::from(2);
            }
        }
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if want_sarif {
        println!("{}", sarif::render(&violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &violations {
        println!("{v}\n");
    }
    if violations.is_empty() {
        println!("wilocator-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("wilocator-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Parses `--format <rustc|sarif>` (or `--format=<…>`); `Ok(true)` means
/// SARIF.
fn format_flag(args: &[String]) -> Result<bool, String> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--format=") {
            return match v {
                "sarif" => Ok(true),
                "rustc" => Ok(false),
                other => Err(format!("unknown format `{other}` (rustc|sarif)")),
            };
        }
        if arg == "--format" {
            return match args.get(i + 1).map(String::as_str) {
                Some("sarif") => Ok(true),
                Some("rustc") => Ok(false),
                Some(other) => Err(format!("unknown format `{other}` (rustc|sarif)")),
                None => Err("--format needs a value (rustc|sarif)".to_string()),
            };
        }
    }
    Ok(false)
}

fn print_usage() {
    eprintln!(
        "usage: wilocator-lint [--workspace | <file.rs>...] [--format rustc|sarif] [--fix [--dry-run]] [--timings] | --rules\n\
         Checks determinism (W001), panic-freedom (W002), atomic orderings\n\
         (W003), accounting exhaustiveness (W004), pragma hygiene (W005),\n\
         span guard discipline (W006), lock order (W007), unit dataflow\n\
         (W008), transitive panic paths (W009), raw sync primitives in\n\
         sync-layer modules (W010), metric family hygiene (W011), hot-path\n\
         effect budgets (W012) and read-path purity (W013).\n\
         --format sarif  emit a SARIF 2.1.0 log on stdout\n\
         --fix           apply safe fixes in place\n\
         --fix --dry-run print the fix diff (and suggestions) without writing\n\
         --timings       print per-phase/per-rule wall time to stderr"
    );
}

//! Rules W001 (unordered iteration), W002 (panic in library code),
//! W003 (atomic orderings / snapshot tearing docs), W006 (span guard
//! discipline), W010 (raw sync primitives in sync-layer modules) and
//! W011 (metric family naming hygiene).
//!
//! All of them work on the blanked per-line code text from the lexer, so
//! string literals and comments never trigger matches.

use crate::diag::{Rule, Violation};
use crate::lexer::{is_ident_char, SourceFile};
use crate::pragma::PragmaSet;
use std::collections::BTreeSet;

/// Which rule families apply to a file. Derived from the crate the file
/// lives in (see [`crate::context_for_path`]); fixtures enable everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// W001: the crate promises byte-identical replay output.
    pub deterministic: bool,
    /// W002: the crate is on the serving path and must not panic.
    pub serving: bool,
    /// W003: the crate is the lock-free observability layer.
    pub observability: bool,
    /// W010: the file's sync primitives are virtualised by the model
    /// checker and must come from `crate::sync`, not `std::sync`.
    pub synced: bool,
}

impl FileContext {
    pub fn all() -> Self {
        Self {
            deterministic: true,
            serving: true,
            observability: true,
            synced: true,
        }
    }
}

// ---------------------------------------------------------------------------
// W001: unordered iteration
// ---------------------------------------------------------------------------

/// Iteration adapters whose results depend on `HashMap`/`HashSet` order.
const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// How many lines after a flagged iteration to scan for an
/// order-insensitive sink. Rustfmt keeps chained iterator pipelines to a
/// handful of lines; anything further away should use a pragma.
const SINK_WINDOW: usize = 12;

/// Finds identifiers bound to `HashMap`/`HashSet` in a file: struct
/// fields and let-bindings with hash types in their declaration line.
fn hash_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &file.lines {
        if !(line.code.contains("HashMap") || line.code.contains("HashSet")) {
            continue;
        }
        // Fold qualified paths so `x: std::collections::HashMap<…>` parses
        // the same as the imported form.
        let code = &line.code.replace("std::collections::", "");
        if code.trim_start().starts_with("use ") {
            continue;
        }
        // `let [mut] name = HashMap::new()` / `…collect::<HashMap…`
        if let Some(pos) = code.find("let ") {
            let rest = code[pos + 4..].trim_start().trim_start_matches("mut ");
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                out.insert(name);
                continue;
            }
        }
        // `name: HashMap<…>` — struct field, fn param, or typed binding.
        for ty in ["HashMap", "HashSet"] {
            let mut search = 0;
            while let Some(found) = code[search..].find(ty) {
                let at = search + found;
                // Peel reference sigils so `name: &HashMap<…>` and
                // `name: &mut HashMap<…>` parse like `name: HashMap<…>`.
                let before = code[..at].trim_end();
                let before = before
                    .strip_suffix("mut")
                    .map(str::trim_end)
                    .unwrap_or(before)
                    .trim_end_matches('&')
                    .trim_end();
                if let Some(b) = before.strip_suffix(':') {
                    let name: String = b
                        .chars()
                        .rev()
                        .take_while(|&c| is_ident_char(c))
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                    {
                        out.insert(name);
                    }
                }
                search = at + ty.len();
            }
        }
    }
    out
}

/// True if the iterator pipeline starting at `start` reaches an
/// order-insensitive sink within the window: an explicit sort, a
/// collect into an ordered container, or a commutative reduction.
fn has_order_insensitive_sink(file: &SourceFile, start: usize) -> bool {
    let end = (start + SINK_WINDOW).min(file.lines.len());
    for line in &file.lines[start..end] {
        let code = &line.code;
        if code.contains(".sort")
            || code.contains("collect::<BTreeMap")
            || code.contains("collect::<BTreeSet")
            || code.contains("collect::<std::collections::BTreeMap")
            || code.contains("collect::<std::collections::BTreeSet")
            || code.contains(".count()")
            || code.contains(".any(")
            || code.contains(".all(")
            || code.contains(".is_empty()")
            || is_integer_sum(code)
        {
            return true;
        }
    }
    false
}

/// `.sum::<uN/iN/usize/isize>()` is commutative and associative; float
/// sums are not associative, so a bare `.sum()` or `.sum::<f64>()` stays
/// order-sensitive.
fn is_integer_sum(code: &str) -> bool {
    for prefix in ["u", "i"] {
        let pat = format!(".sum::<{prefix}");
        if let Some(at) = code.find(&pat) {
            let rest = &code[at + pat.len()..];
            if rest.starts_with("size")
                || rest.starts_with('8')
                || rest.starts_with("16")
                || rest.starts_with("32")
                || rest.starts_with("64")
                || rest.starts_with("128")
            {
                return true;
            }
        }
    }
    false
}

/// The identifier immediately before byte offset `at` in `code`.
pub(crate) fn ident_before(code: &str, at: usize) -> String {
    code[..at]
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect()
}

pub fn w001_unordered_iter(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    let idents = hash_idents(file);
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        let mut flagged: Option<(String, &str)> = None;
        for m in ITER_METHODS {
            let mut search = 0;
            while let Some(found) = code[search..].find(m) {
                let at = search + found;
                let mut recv = ident_before(code, at);
                // Rustfmt breaks long chains so the adapter starts its own
                // line; the receiver is then the trailing identifier of the
                // nearest preceding code line (`self.by_signature` /
                // `\n    .keys()`), skipping comment-only lines.
                if recv.is_empty() && code[..at].trim().is_empty() {
                    for prev_line in file.lines[..idx].iter().rev().take(3) {
                        let prev = prev_line.code.trim_end();
                        if prev.is_empty() {
                            continue;
                        }
                        recv = ident_before(prev, prev.len());
                        break;
                    }
                }
                if idents.contains(&recv) {
                    flagged = Some((recv, m));
                    break;
                }
                search = at + m.len();
            }
            if flagged.is_some() {
                break;
            }
        }
        // `for x in &map { … }` / `for x in map { … }`
        if flagged.is_none() {
            if let Some(pos) = for_in_target(code) {
                if idents.contains(&pos) {
                    flagged = Some((pos, "for … in"));
                }
            }
        }
        // Inline temporaries: `…collect::<HashSet<_>>()` (or HashMap)
        // immediately re-iterated — no named binding to track, but the
        // order leak is the same.
        if flagged.is_none() {
            for ty in ["collect::<HashSet", "collect::<HashMap"] {
                if !code.contains(ty) {
                    continue;
                }
                let next = file
                    .lines
                    .get(idx + 1)
                    .map(|l| l.code.as_str())
                    .unwrap_or("");
                let reiterated = [".into_iter()", ".iter()", ".drain(", ".values()", ".keys()"]
                    .iter()
                    .any(|m| {
                        code[code.find(ty).unwrap_or(0)..].contains(m)
                            || next.trim_start().starts_with(m.trim_end_matches('('))
                    });
                if reiterated {
                    flagged = Some(("<inline hash collection>".to_string(), ty));
                    break;
                }
            }
        }
        let Some((ident, how)) = flagged else {
            continue;
        };
        if has_order_insensitive_sink(file, idx) {
            continue;
        }
        if pragmas.allows(Rule::UnorderedIter, &file.path, lineno) {
            continue;
        }
        out.push(
            Violation::new(
                Rule::UnorderedIter,
                &file.path,
                lineno,
                format!(
                    "iteration over hash-ordered `{ident}` ({how}) feeds output without an order-insensitive sink"
                ),
            )
            .with_note(
                "sort the items, use a BTreeMap/BTreeSet, or add `// lint: allow(unordered_iter) — <reason>`",
            ),
        );
    }
}

/// For `for pat in <expr> {`, the trailing path segment of `<expr>` when
/// the expression is a bare (possibly referenced/dotted) path; method
/// calls return `None` — the method matcher covers those.
fn for_in_target(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    if !trimmed.starts_with("for ") {
        return None;
    }
    let in_at = code.find(" in ")?;
    let mut expr = code[in_at + 4..].trim();
    expr = expr.trim_end_matches('{').trim_end();
    expr = expr.trim_start_matches('&').trim_start_matches("mut ");
    if expr.is_empty() || expr.contains('(') || expr.contains('[') || expr.contains(' ') {
        return None;
    }
    Some(expr.rsplit('.').next().unwrap_or(expr).to_string())
}

// ---------------------------------------------------------------------------
// W002: panic in library code
// ---------------------------------------------------------------------------

pub fn w002_panic_in_library(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        let mut hits: Vec<(String, &str)> = Vec::new();
        for (pat, what) in [
            (".unwrap()", "unwrap() panics on None/Err"),
            (".expect(", "expect() panics on None/Err"),
            ("panic!(", "explicit panic!"),
            ("unimplemented!(", "unimplemented! aborts the request"),
            ("todo!(", "todo! aborts the request"),
        ] {
            if contains_call(code, pat) {
                hits.push((pat.trim_start_matches('.').to_string(), what));
            }
        }
        if let Some(subscript) = literal_subscript(code) {
            // Indexing straight out of a `windows`/`chunks` binding has a
            // length guarantee the lexer can see; anything else panics when
            // the collection is shorter than the literal assumes.
            let guarded = file.lines[idx.saturating_sub(6)..=idx]
                .iter()
                .any(|l| l.code.contains(".windows(") || l.code.contains(".chunks("));
            if !guarded {
                hits.push((
                    format!("[{subscript}] indexing"),
                    "literal slice index panics when out of bounds",
                ));
            }
        }
        if hits.is_empty() {
            continue;
        }
        if pragmas.allows(Rule::PanicInLibrary, &file.path, lineno) {
            continue;
        }
        for (what, why) in hits {
            out.push(
                Violation::new(
                    Rule::PanicInLibrary,
                    &file.path,
                    lineno,
                    format!("`{what}` in library code: {why}"),
                )
                .with_note(
                    "propagate the error, restructure to make the case impossible, or add `// lint: allow(panic_in_library) — <invariant>`",
                ),
            );
        }
    }
}

/// True when `pat` occurs in `code` as a call, not as part of a longer
/// identifier (so `.unwrap()` does not match `.unwrap_or_else(`, and
/// `panic!(` does not match `core::panic!(` prefixed identifiers oddly).
pub(crate) fn contains_call(code: &str, pat: &str) -> bool {
    let mut search = 0;
    while let Some(found) = code[search..].find(pat) {
        let at = search + found;
        let before_ok = if pat.starts_with('.') {
            true
        } else {
            // Macro patterns: previous char must not be an identifier char.
            at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '))
        };
        if before_ok {
            return true;
        }
        search = at + pat.len();
    }
    false
}

/// Finds `expr[<integer literal>]` on the line and returns the literal.
/// Attribute lines and array type/repeat syntax (`[0u8; 4]`) never match
/// because the bracket content must be digits only and the bracket must
/// follow an expression (ident, `)`, or `]`).
fn literal_subscript(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' && i > 0 {
            let prev = bytes[i - 1] as char;
            if is_ident_char(prev) || prev == ')' || prev == ']' {
                let close = code[i + 1..].find(']')?;
                let inner = &code[i + 1..i + 1 + close];
                if !inner.is_empty() && inner.chars().all(|c| c.is_ascii_digit() || c == '_') {
                    return Some(inner.to_string());
                }
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// W003: atomic orderings and snapshot tearing docs
// ---------------------------------------------------------------------------

const STRONG_ORDERINGS: [&str; 4] = [
    "Ordering::SeqCst",
    "Ordering::AcqRel",
    "Ordering::Acquire",
    "Ordering::Release",
];

pub fn w003_atomic_ordering(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    // Part 1: orderings stronger than Relaxed on the hot path.
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let lineno = idx + 1;
        for strong in STRONG_ORDERINGS {
            if line.code.contains(strong) {
                if pragmas.allows(Rule::AtomicOrdering, &file.path, lineno) {
                    continue;
                }
                out.push(
                    Violation::new(
                        Rule::AtomicOrdering,
                        &file.path,
                        lineno,
                        format!(
                            "`{strong}` on an observability atomic: counters are monotonic ledgers, Relaxed suffices"
                        ),
                    )
                    .with_note(
                        "stronger orderings buy nothing here and cost a fence on weakly-ordered targets; use Ordering::Relaxed",
                    ),
                );
            }
        }
    }
    // Part 2: functions reading >= 2 distinct atomic fields must document
    // the tearing model — Relaxed loads of separate fields are individually
    // atomic but not mutually consistent.
    for func in fn_spans(file) {
        let mut fields = BTreeSet::new();
        for line in &file.lines[func.body_start..func.body_end] {
            let code = &line.code;
            let mut search = 0;
            while let Some(found) = code[search..].find(".load(") {
                let at = search + found;
                if let Some(field) = self_field_of(code, at) {
                    fields.insert(field);
                }
                search = at + ".load(".len();
            }
        }
        if fields.len() < 2 {
            continue;
        }
        let documented = file.lines[..func.sig_line]
            .iter()
            .rev()
            .take_while(|l| l.is_doc || l.code.trim().starts_with("#["))
            .any(|l| {
                let c = l.comment.to_ascii_lowercase();
                c.contains("tear") || c.contains("torn")
            });
        if documented {
            continue;
        }
        let lineno = func.sig_line + 1;
        if pragmas.allows(Rule::AtomicOrdering, &file.path, lineno) {
            continue;
        }
        let list = fields.iter().cloned().collect::<Vec<_>>().join("`, `");
        out.push(
            Violation::new(
                Rule::AtomicOrdering,
                &file.path,
                lineno,
                format!(
                    "reads {} atomic fields (`{list}`) without documenting the tearing model",
                    fields.len()
                ),
            )
            .with_note(
                "Relaxed loads of separate fields are not a consistent snapshot; add a doc comment describing what can tear",
            ),
        );
    }
}

/// For `….load(` at `at`, the `self.<field>` receiver's field name, if the
/// receiver is a (possibly indexed) field of `self`.
fn self_field_of(code: &str, at: usize) -> Option<String> {
    let mut end = at;
    let bytes = code.as_bytes();
    // Skip a trailing `[…]` index on the receiver.
    if end > 0 && bytes[end - 1] == b']' {
        let open = code[..end].rfind('[')?;
        end = open;
    }
    let field = ident_before(code, end);
    if field.is_empty() {
        return None;
    }
    let prefix = &code[..end - field.len()];
    prefix.ends_with("self.").then_some(field)
}

// ---------------------------------------------------------------------------
// W006: span guard discipline
// ---------------------------------------------------------------------------

/// Span-starting calls whose return value is an RAII guard (or a
/// guard-carrying trace context): dropping the value at the end of its
/// own statement closes the span at zero width, silently corrupting
/// every trace it appears in — the call looks instrumented but records
/// nothing.
const SPAN_STARTERS: [&str; 4] = [
    "start_root_span(",
    "start_root_span_keyed(",
    "child_span(",
    "start_span(",
];

pub fn w006_span_discipline(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        // The span API's own definitions and signatures.
        if code.contains("fn ") {
            continue;
        }
        let Some(starter) = SPAN_STARTERS.iter().find(|p| contains_method_call(code, p)) else {
            continue;
        };
        let lineno = idx + 1;
        let stmt = statement_head(file, idx);
        let discarded = stmt.contains("let _ =") || stmt.contains("let _=");
        let bare = !discarded
            && !stmt.contains('=')
            && !stmt.contains("let ")
            && !stmt.contains("return ")
            && code.trim_end().ends_with(';');
        if !discarded && !bare {
            continue;
        }
        if pragmas.allows(Rule::SpanDiscipline, &file.path, lineno) {
            continue;
        }
        let what = starter.trim_end_matches('(');
        let how = if discarded {
            "its guard is discarded with `let _ = …`"
        } else {
            "its guard is dropped at the end of the statement"
        };
        out.push(
            Violation::new(
                Rule::SpanDiscipline,
                &file.path,
                lineno,
                format!("`{what}` starts a span but {how}: the span closes at zero width"),
            )
            .with_note(
                "bind the guard (`let span = …`) so it lives across the work it measures, or add `// lint: allow(span_discipline) — <reason>`",
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// W010: raw sync primitives in sync-layer modules
// ---------------------------------------------------------------------------

/// `std::sync` items the `crate::sync` façade virtualises. Matching is
/// by prefix so the guard types (`MutexGuard`, `RwLockReadGuard`, …)
/// are covered by their parent primitive's name.
const RAW_SYNC_PREFIXES: [&str; 4] = ["atomic", "Mutex", "RwLock", "Condvar"];

/// Brace-list imports whose every item the façade re-exports can be
/// rewritten `std::sync::` → `crate::sync::` mechanically; a list with
/// anything else (`PoisonError`, `OnceLock`, …) needs a human split.
const FACADE_ITEMS: [&str; 12] = [
    "Arc",
    "Mutex",
    "MutexGuard",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Condvar",
    "atomic",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "Ordering",
];

/// The offending façade-bypassing items named by a `std::sync::` path
/// starting right after `at` (which points past the prefix), plus
/// whether a whole-line `std::sync::` → `crate::sync::` rewrite is safe.
fn raw_sync_items(rest: &str) -> (Vec<String>, bool) {
    if let Some(list) = rest.strip_prefix('{') {
        let Some(close) = list.find('}') else {
            return (Vec::new(), false);
        };
        let items: Vec<&str> = list[..close]
            .split(',')
            .map(|i| i.split_whitespace().next().unwrap_or(""))
            .filter(|i| !i.is_empty())
            .collect();
        let offending: Vec<String> = items
            .iter()
            .filter(|i| RAW_SYNC_PREFIXES.iter().any(|p| i.starts_with(p)))
            .map(|i| format!("std::sync::{i}"))
            .collect();
        let safe = items.iter().all(|i| FACADE_ITEMS.contains(i));
        (offending, safe)
    } else {
        let item: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if RAW_SYNC_PREFIXES.iter().any(|p| item.starts_with(p)) {
            // `std::sync::atomic::Ordering` alone is façade-identical,
            // but flag the path anyway: the façade re-exports it, so the
            // module has no reason to spell out the raw route.
            let safe = item == "atomic" || FACADE_ITEMS.contains(&item.as_str());
            (vec![format!("std::sync::{item}")], safe)
        } else {
            (Vec::new(), false)
        }
    }
}

/// W010: sync-layer modules (the files whose primitives the model
/// checker swaps out under `--cfg wilocator_check`) must not name
/// `std::sync` locks, condvars or atomics directly — a raw primitive is
/// invisible to the checker, so the protocol it participates in is
/// silently excluded from every model test. `std::sync::Arc`,
/// `PoisonError` and friends stay legal: the façade re-exports `Arc`
/// from `std` by design and poison handling is not virtualised.
pub fn w010_raw_sync(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let lineno = idx + 1;
        let code = &line.code;
        let mut search = 0;
        while let Some(found) = code[search..].find("std::sync::") {
            let at = search + found;
            search = at + "std::sync::".len();
            let (items, safe) = raw_sync_items(&code[search..]);
            if items.is_empty() || pragmas.allows(Rule::RawSync, &file.path, lineno) {
                continue;
            }
            let mut v = Violation::new(
                Rule::RawSync,
                &file.path,
                lineno,
                format!(
                    "`{}` named directly in a sync-layer module",
                    items.join("`, `")
                ),
            )
            .with_note(
                "import it via `crate::sync` so the model checker sees this code under `--cfg wilocator_check`, or add `// lint: allow(raw_sync) — <reason>`",
            );
            if safe {
                v = v.with_fix(
                    crate::diag::FixKind::ReplaceSubstr {
                        find: "std::sync::".to_string(),
                        replace: "crate::sync::".to_string(),
                    },
                    true,
                );
            }
            out.push(v);
            // One diagnostic per line is enough; `--fix` rewrites the
            // first `std::sync::` occurrence and a re-run catches any
            // remaining ones.
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// W011: metric family hygiene
// ---------------------------------------------------------------------------

/// Call sites that register or key a metric family by literal name. The
/// first string argument is the family.
const METRIC_SINKS: [&str; 5] = [
    "metric_key(",
    "add_counter(",
    "add_gauge(",
    "add_histogram(",
    "track(",
];

/// Dimensionless suffixes the Prometheus-style naming convention accepts
/// alongside the W008 physical units: monotone event counts, byte
/// gauges, unitless ratios, and constant info families.
const DIMENSIONLESS_SUFFIXES: [&str; 4] = ["total", "bytes", "ratio", "info"];

/// Extracts the literal first argument of a metric sink call on a raw
/// line, given the byte offset just past the opening parenthesis in the
/// blanked code. Returns the literal's content and `true` when the raw
/// text actually opens a string there (a non-literal first argument —
/// a const or variable — yields `None`).
fn literal_first_arg(raw: &str, pat: &str) -> Option<String> {
    let mut search = 0;
    while let Some(found) = raw[search..].find(pat) {
        let at = search + found;
        search = at + pat.len();
        let rest = &raw[search..];
        let Some(body) = rest.strip_prefix('"') else {
            continue;
        };
        let close = body.find('"')?;
        return Some(body[..close].to_string());
    }
    None
}

/// W011 `metric_hygiene`: metric families registered by literal name
/// must be snake_case and carry a suffix that names either a physical
/// unit from the W008 table (`_us`, `_s`, `_dbm`, …, canonical spelling
/// only) or a dimensionless convention (`_total`, `_bytes`, `_ratio`,
/// `_info`). A family that breaks the convention is invisible to
/// suffix-driven tooling — dashboards that pick formatters by unit, the
/// W008 dataflow rule itself, and every grep for `_us` families.
pub fn w011_metric_hygiene(file: &SourceFile, pragmas: &mut PragmaSet, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        for pat in METRIC_SINKS {
            // The blanked form of a literal first argument is `sink("")…`,
            // so requiring `sink("` in the code text skips non-literal
            // arguments and occurrences inside strings or comments.
            let mut has_literal = false;
            let mut s = 0;
            while let Some(found) = code[s..].find(pat) {
                let at = s + found;
                s = at + pat.len();
                let callish =
                    at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
                if callish && code[s..].starts_with('"') {
                    has_literal = true;
                    break;
                }
            }
            if !has_literal {
                continue;
            }
            let Some(arg) = literal_first_arg(&line.raw, pat) else {
                continue;
            };
            // A labelled key like `family{shard="0"}` is policed on the
            // family part only.
            let family = arg.split('{').next().unwrap_or(&arg);
            let Some(problem) = family_problem(family) else {
                continue;
            };
            if pragmas.allows(Rule::MetricHygiene, &file.path, lineno) {
                continue;
            }
            out.push(
                Violation::new(Rule::MetricHygiene, &file.path, lineno, problem).with_note(
                    "name families `snake_case` ending in a canonical W008 unit (`_us`, `_s`, `_dbm`, …) \
                     or `_total`/`_bytes`/`_ratio`/`_info`, or add `// lint: allow(metric_hygiene) — <reason>`",
                ),
            );
            break; // one diagnostic per line
        }
    }
}

/// Why `family` violates the naming convention, or `None` when clean.
fn family_problem(family: &str) -> Option<String> {
    if family.is_empty() {
        return Some("empty metric family name".to_string());
    }
    let snake = family.starts_with(|c: char| c.is_ascii_lowercase())
        && family
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !family.contains("__")
        && !family.ends_with('_');
    if !snake {
        return Some(format!("metric family `{family}` is not snake_case"));
    }
    let Some((_, suffix)) = family.rsplit_once('_') else {
        return Some(format!(
            "metric family `{family}` has no unit suffix: its values are unreadable without one"
        ));
    };
    if DIMENSIONLESS_SUFFIXES.contains(&suffix) {
        return None;
    }
    match crate::units::unit_of(family) {
        // Canonical unit suffix (`_us`, `_s`, `_dbm`, …).
        Some(unit) if unit == suffix => None,
        // An alias the W008 table normalises (`_seconds`, `_micros`, …):
        // legal Rust, but the family string never meets the W008 renamer,
        // so the canon must be enforced here.
        Some(unit) => Some(format!(
            "metric family `{family}` uses non-canonical unit suffix `_{suffix}`: the workspace convention is `_{unit}`"
        )),
        None => Some(format!(
            "metric family `{family}` suffix `_{suffix}` names neither a W008 unit nor a dimensionless convention"
        )),
    }
}

/// True when `pat` (an `ident(` pattern) occurs in `code` as a call whose
/// name is not a suffix of a longer identifier, so `restart_root_span(`
/// never matches `start_root_span(`.
fn contains_method_call(code: &str, pat: &str) -> bool {
    let mut search = 0;
    while let Some(found) = code[search..].find(pat) {
        let at = search + found;
        if at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' ')) {
            return true;
        }
        search = at + pat.len();
    }
    false
}

/// The full statement containing line `idx`, reconstructed by walking
/// back to the nearest statement boundary (previous line empty or ending
/// in `;`, `{`, `}`, `,` or `=>`) and joining the lines. Good enough for
/// rustfmt-formatted code: it sees the `let guard =` head of a wrapped
/// binding without a real parser.
fn statement_head(file: &SourceFile, idx: usize) -> String {
    let mut start = idx;
    while start > 0 {
        let prev = file.lines[start - 1].code.trim_end();
        if prev.is_empty()
            || prev.ends_with(';')
            || prev.ends_with('{')
            || prev.ends_with('}')
            || prev.ends_with(',')
            || prev.ends_with("=>")
        {
            break;
        }
        start -= 1;
    }
    file.lines[start..=idx]
        .iter()
        .map(|l| l.code.trim())
        .collect::<Vec<_>>()
        .join(" ")
}

/// A function's signature line and body span (line indices).
struct FnSpan {
    sig_line: usize,
    body_start: usize,
    body_end: usize,
}

/// Rough function spans via brace tracking: a line containing `fn name(`
/// opens a span at the first `{` at its depth; the span closes when depth
/// returns. Good enough for rustfmt-formatted code.
fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut depth: i32 = 0;
    let mut open: Vec<(usize, i32)> = Vec::new(); // (sig_line, depth at open)
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let is_fn = code.contains("fn ") && code.contains('(') && !line.is_test;
        if is_fn {
            open.push((idx, depth));
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(&(sig, d)) = open.last() {
                        if depth <= d {
                            open.pop();
                            spans.push(FnSpan {
                                sig_line: sig,
                                body_start: sig,
                                body_end: idx + 1,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    spans
}

//! Rule identifiers and rustc-style diagnostics.

use std::fmt;

/// The lint rules. Each has a code (`W00x`) used in diagnostics and a
/// slug used in `// lint: allow(<slug>) — <reason>` pragmas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// W001: iteration over `HashMap`/`HashSet` in a deterministic crate
    /// without an order-insensitive sink.
    UnorderedIter,
    /// W002: panic paths (`unwrap`, `expect`, `panic!`, …) in non-test
    /// library code of a serving crate.
    PanicInLibrary,
    /// W003: atomic orderings stronger than `Relaxed`, or undocumented
    /// cross-field atomic read sequences, in `crates/obs`.
    AtomicOrdering,
    /// W004: an accounted enum variant that does not increment exactly
    /// one metrics counter family.
    Accounting,
    /// W005: malformed, unknown, or unused allow pragmas.
    PragmaHygiene,
    /// W006: a span-starting call whose RAII guard is discarded or
    /// dropped at the end of its own statement (zero-width span).
    SpanDiscipline,
    /// W007: a cycle in the interprocedural lock-acquisition order graph
    /// (two paths that take the same locks in opposite order).
    LockOrder,
    /// W008: arithmetic or comparison mixing operands whose identifier
    /// suffixes imply different physical units (`_dbm` + `_m`, …).
    UnitDataflow,
    /// W009: a panic site in a callee reachable from a `pub` entry point
    /// of a serving crate.
    TransitivePanic,
    /// W010: a sync-layer module (one whose primitives the model checker
    /// virtualises) naming `std::sync` lock/atomic types directly
    /// instead of importing them through `crate::sync`.
    RawSync,
    /// W011: a registered metric family whose name is not snake_case or
    /// whose suffix names no unit (W008 table) and no dimensionless
    /// convention (`_total`, `_bytes`, `_ratio`, `_info`).
    MetricHygiene,
    /// W012: a declared hot entry point (one carrying a
    /// `// lint: hot_path(deny: …)` budget annotation) transitively
    /// reaches an effect its budget denies.
    HotPathEffects,
    /// W013: a `QuerySnapshot` reader method or `serve` request handler
    /// carries read-path-hostile effects (ingest locks, blocking,
    /// unbounded iteration) beyond the documented one-slot read-lock +
    /// `Arc` clone.
    ReadPathPurity,
}

pub const ALL_RULES: [Rule; 13] = [
    Rule::UnorderedIter,
    Rule::PanicInLibrary,
    Rule::AtomicOrdering,
    Rule::Accounting,
    Rule::PragmaHygiene,
    Rule::SpanDiscipline,
    Rule::LockOrder,
    Rule::UnitDataflow,
    Rule::TransitivePanic,
    Rule::RawSync,
    Rule::MetricHygiene,
    Rule::HotPathEffects,
    Rule::ReadPathPurity,
];

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "W001",
            Rule::PanicInLibrary => "W002",
            Rule::AtomicOrdering => "W003",
            Rule::Accounting => "W004",
            Rule::PragmaHygiene => "W005",
            Rule::SpanDiscipline => "W006",
            Rule::LockOrder => "W007",
            Rule::UnitDataflow => "W008",
            Rule::TransitivePanic => "W009",
            Rule::RawSync => "W010",
            Rule::MetricHygiene => "W011",
            Rule::HotPathEffects => "W012",
            Rule::ReadPathPurity => "W013",
        }
    }

    pub fn slug(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered_iter",
            Rule::PanicInLibrary => "panic_in_library",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::Accounting => "accounting",
            Rule::PragmaHygiene => "pragma_hygiene",
            Rule::SpanDiscipline => "span_discipline",
            Rule::LockOrder => "lock_order",
            Rule::UnitDataflow => "unit_dataflow",
            Rule::TransitivePanic => "transitive_panic",
            Rule::RawSync => "raw_sync",
            Rule::MetricHygiene => "metric_hygiene",
            Rule::HotPathEffects => "hot_path_effects",
            Rule::ReadPathPurity => "read_path_purity",
        }
    }

    pub fn from_slug(slug: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.slug() == slug)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A machine-applicable (or suggestion-only) edit attached to a
/// diagnostic. The edit targets the raw text of the violation's line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixKind {
    /// Replace the first occurrence of `find` on the line with `replace`.
    ReplaceSubstr { find: String, replace: String },
    /// Replace the whole line (indentation included) with `new`.
    ReplaceLine { new: String },
    /// Delete the line entirely.
    DeleteLine,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixEdit {
    pub kind: FixKind,
    /// `true`: semantics-preserving, `--fix` applies it. `false`: a
    /// suggestion (e.g. a rename) — shown in the `--fix --dry-run` diff
    /// as a comment, never applied.
    pub safe: bool,
}

/// One diagnostic: rule, location, message, optional help note and fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    pub note: Option<String>,
    pub fix: Option<FixEdit>,
}

impl Violation {
    pub fn new(rule: Rule, file: &str, line: usize, message: impl Into<String>) -> Self {
        Self {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
            note: None,
            fix: None,
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    pub fn with_fix(mut self, kind: FixKind, safe: bool) -> Self {
        self.fix = Some(FixEdit { kind, safe });
        self
    }

    /// Renders the diagnostic in rustc style:
    ///
    /// ```text
    /// error[W001]: iteration over HashMap `by_edge` is order-sensitive
    ///   --> crates/core/src/history.rs:90
    ///   = help: sort the keys or use a BTreeMap
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "error[{}]: {}\n  --> {}:{}",
            self.rule.code(),
            self.message,
            self.file,
            self.line
        );
        if let Some(note) = &self.note {
            out.push_str(&format!("\n  = help: {note}"));
        }
        out
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

//! `wilocator-lint`: workspace static analysis for the WiLocator
//! reproduction.
//!
//! A zero-dependency, offline lint pass (lightweight lexer + line/scope
//! analyzer — deliberately no `syn`, per the vendored-shim constraint)
//! that machine-checks the invariants the serving system depends on and
//! that code review kept re-discovering per flake. Per-file rules run
//! on the blanked line stream; the graph rules run on a workspace-wide
//! symbol table + call graph ([`symbols`], [`callgraph`]) built from
//! the same stream:
//!
//! | rule | slug                | checks |
//! |------|---------------------|--------|
//! | W001 | `unordered_iter`    | no hash-ordered iteration feeding deterministic output |
//! | W002 | `panic_in_library`  | no panic paths in serving-crate library code |
//! | W003 | `atomic_ordering`   | Relaxed-only metrics atomics; documented snapshot tearing |
//! | W004 | `accounting`        | every accounted enum variant hits exactly one counter family |
//! | W005 | `pragma_hygiene`    | allow pragmas are real, reasoned, and used |
//! | W006 | `span_discipline`   | span-start guards are bound, never discarded or dropped inline |
//! | W007 | `lock_order`        | one global lock order, propagated through call edges; no cycles |
//! | W008 | `unit_dataflow`     | no mixed-unit arithmetic; suffix units flow through parameters |
//! | W009 | `transitive_panic`  | no panic sites reachable from pub serving-crate entry points |
//! | W010 | `raw_sync`          | sync-layer modules import locks/atomics via `crate::sync`, not `std::sync` |
//! | W011 | `metric_hygiene`    | metric families are snake_case with a unit or dimensionless suffix |
//! | W012 | `hot_path_effects`  | budget-annotated hot entry points stay within their denied-effect set |
//! | W013 | `read_path_purity`  | snapshot readers / serve handlers stay effect-free past the blessed read |
//!
//! W012/W013 run on phase 3 ([`effects`]): an interprocedural effect
//! inference over the lattice `{allocates, acquires_lock,
//! blocks_or_syscalls, reads_clock, panics, unbounded_iteration}`,
//! propagated to a fixpoint over the phase-2 call graph.
//!
//! Run it as `cargo run -p wilocator-lint -- --workspace`; it prints
//! rustc-style diagnostics and exits nonzero on any violation.
//! `--format sarif` emits SARIF 2.1.0; `--fix` (optionally with
//! `--dry-run`) applies conservative rewrites; `--timings` prints
//! per-phase/per-rule wall time to stderr. See DESIGN.md §8 for the
//! rule catalog and the pragma escape hatch.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod accounting;
pub mod callgraph;
pub mod diag;
pub mod effects;
pub mod fix;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod units;

pub use diag::{FixEdit, FixKind, Rule, Violation, ALL_RULES};
pub use lexer::SourceFile;
pub use rules::FileContext;
pub use symbols::SymbolTable;

use pragma::PragmaSet;
use std::path::{Path, PathBuf};

/// Crates whose outputs must replay byte-identically (W001 scope).
pub const DETERMINISTIC_CRATES: [&str; 6] = ["svd", "core", "road", "geo", "baselines", "serve"];
/// Crates on the serving path that must not panic (W002 scope).
pub const SERVING_CRATES: [&str; 4] = ["core", "svd", "obs", "serve"];
/// The lock-free observability crate (W003 scope).
pub const OBSERVABILITY_CRATES: [&str; 1] = ["obs"];
/// Crates with no per-file rule scope of their own that still belong in
/// the workspace symbol table: their functions sit below serving entry
/// points, so W007/W009 must see their bodies.
pub const CALLGRAPH_CRATES: [&str; 1] = ["rf"];
/// Sync-layer modules (W010 scope): files whose synchronization
/// primitives the model checker virtualises under `--cfg
/// wilocator_check`. Matched by path suffix. Keep in step with the
/// `crate::sync` imports in `crates/core` / `crates/obs` and the model
/// suite in `crates/check/tests/model.rs`.
pub const SYNC_LAYER_FILES: [&str; 6] = [
    "crates/core/src/snapshot.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/server.rs",
    "crates/core/src/sync.rs",
    "crates/obs/src/counter.rs",
    "crates/obs/src/sync.rs",
];

/// The rule context for a workspace-relative path like
/// `crates/core/src/server.rs`.
pub fn context_for_path(path: &str) -> FileContext {
    let unixy = path.replace('\\', "/");
    let krate = unixy
        .split('/')
        .skip_while(|s| *s != "crates")
        .nth(1)
        .unwrap_or("");
    FileContext {
        deterministic: DETERMINISTIC_CRATES.contains(&krate),
        serving: SERVING_CRATES.contains(&krate),
        observability: OBSERVABILITY_CRATES.contains(&krate),
        synced: SYNC_LAYER_FILES.iter().any(|f| unixy.ends_with(f)),
    }
}

/// Wall-time of each lint phase and rule, collected by
/// [`analyze_timed`] and printed by the CLI's `--timings` flag.
#[derive(Debug, Default)]
pub struct Timings {
    /// `(phase-or-rule name, elapsed)`, in execution order.
    pub entries: Vec<(String, std::time::Duration)>,
}

impl Timings {
    pub fn add(&mut self, name: &str, d: std::time::Duration) {
        self.entries.push((name.to_string(), d));
    }

    /// Renders an aligned per-phase table with a trailing total.
    pub fn render(&self) -> String {
        let total: std::time::Duration = self.entries.iter().map(|(_, d)| *d).sum();
        let mut out = String::from("phase timings:\n");
        for (name, d) in &self.entries {
            out.push_str(&format!("  {name:<28} {:>9.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out.push_str(&format!(
            "  {:<28} {:>9.3} ms",
            "total",
            total.as_secs_f64() * 1e3
        ));
        out
    }
}

fn timed<T>(timings: &mut Timings, name: &str, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let v = f();
    timings.add(name, t0.elapsed());
    v
}

/// Lints a set of lexed files, each under its own context, and returns
/// all violations, deduplicated and sorted by (file, line, rule,
/// message).
pub fn analyze(files: &[(SourceFile, FileContext)]) -> Vec<Violation> {
    analyze_timed(files).0
}

/// [`analyze`], also returning per-phase/per-rule wall time. Phase 1
/// runs rule-major (every file per rule, rather than every rule per
/// file) so the timings attribute cost to rules; rule output is
/// identical either way since per-file rules are independent and the
/// final sort normalizes order.
pub fn analyze_timed(files: &[(SourceFile, FileContext)]) -> (Vec<Violation>, Timings) {
    let mut t = Timings::default();
    let sources: Vec<&SourceFile> = files.iter().map(|(f, _)| f).collect();
    let mut pragmas = timed(&mut t, "pragma scan", || {
        PragmaSet::collect(sources.iter().copied())
    });
    let mut out = Vec::new();
    // Phase 1: per-file rules on the shared blanked line stream (each
    // file was lexed and tokenized exactly once, at parse time).
    timed(&mut t, "W001 unordered_iter", || {
        for (file, _) in files.iter().filter(|(_, c)| c.deterministic) {
            rules::w001_unordered_iter(file, &mut pragmas, &mut out);
        }
    });
    timed(&mut t, "W002 panic_in_library", || {
        for (file, _) in files.iter().filter(|(_, c)| c.serving) {
            rules::w002_panic_in_library(file, &mut pragmas, &mut out);
        }
    });
    timed(&mut t, "W006 span_discipline", || {
        for (file, _) in files.iter().filter(|(_, c)| c.serving) {
            rules::w006_span_discipline(file, &mut pragmas, &mut out);
        }
    });
    timed(&mut t, "W011 metric_hygiene", || {
        for (file, _) in files.iter().filter(|(_, c)| c.serving) {
            rules::w011_metric_hygiene(file, &mut pragmas, &mut out);
        }
    });
    timed(&mut t, "W003 atomic_ordering", || {
        for (file, _) in files.iter().filter(|(_, c)| c.observability) {
            rules::w003_atomic_ordering(file, &mut pragmas, &mut out);
        }
    });
    timed(&mut t, "W010 raw_sync", || {
        for (file, _) in files.iter().filter(|(_, c)| c.synced) {
            rules::w010_raw_sync(file, &mut pragmas, &mut out);
        }
    });
    timed(&mut t, "W004 accounting", || {
        accounting::w004_accounting(&sources, &mut out);
    });
    // Phase 2: workspace symbol table and graph rules.
    let table = timed(&mut t, "symbol table", || {
        symbols::SymbolTable::build(files)
    });
    timed(&mut t, "W007 lock_order", || {
        callgraph::w007_lock_order(&table, &mut pragmas, &mut out);
    });
    timed(&mut t, "W008 unit_dataflow", || {
        units::w008_unit_dataflow(files, &table, &mut pragmas, &mut out);
    });
    timed(&mut t, "W009 transitive_panic", || {
        callgraph::w009_transitive_panic(&table, &mut pragmas, &mut out);
    });
    // Phase 3: interprocedural effect inference.
    timed(&mut t, "W012 hot_path_effects", || {
        effects::w012_hot_path(&sources, &table, &mut pragmas, &mut out);
    });
    timed(&mut t, "W013 read_path_purity", || {
        effects::w013_read_path(&table, &mut pragmas, &mut out);
    });
    // Hygiene last: it needs to know which pragmas the rules consumed.
    timed(&mut t, "W005 pragma_hygiene", || {
        out.extend(pragmas.hygiene_violations());
    });
    timed(&mut t, "fix attach + sort", || {
        fix::attach_fixes(files, &mut out);
        out.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        out.dedup_by(|a, b| {
            a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
        });
    });
    (out, t)
}

/// Lints one file with every rule enabled — the fixture/self-test entry
/// point.
pub fn analyze_file_all_rules(path: &str, text: &str) -> Vec<Violation> {
    let file = SourceFile::parse(path, text);
    analyze(&[(file, FileContext::all())])
}

/// Walks the workspace at `root` and lints every in-scope crate source
/// file (crate `src/` trees only; integration tests, benches and
/// examples are exercised code, not serving code).
pub fn run_workspace(root: &Path) -> Vec<Violation> {
    run_workspace_timed(root).0
}

/// [`run_workspace`], also returning phase timings (the first entry is
/// the read + lex + tokenize pass over all files).
pub fn run_workspace_timed(root: &Path) -> (Vec<Violation>, Timings) {
    let t0 = std::time::Instant::now();
    let mut files = Vec::new();
    let mut crates: Vec<String> = DETERMINISTIC_CRATES
        .iter()
        .chain(SERVING_CRATES.iter())
        .chain(OBSERVABILITY_CRATES.iter())
        .chain(CALLGRAPH_CRATES.iter())
        .map(|s| s.to_string())
        .collect();
    crates.sort();
    crates.dedup();
    for krate in crates {
        let src = root.join("crates").join(&krate).join("src");
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths);
        paths.sort();
        for p in paths {
            let text = match std::fs::read_to_string(&p) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let ctx = context_for_path(&rel);
            files.push((SourceFile::parse(rel, &text), ctx));
        }
    }
    let lex = t0.elapsed();
    let (out, mut timings) = analyze_timed(&files);
    timings
        .entries
        .insert(0, ("read + lex + tokenize".to_string(), lex));
    (out, timings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_scopes_rules_by_crate() {
        let core = context_for_path("crates/core/src/server.rs");
        assert!(core.deterministic && core.serving && !core.observability && core.synced);
        let obs = context_for_path("crates/obs/src/counter.rs");
        assert!(!obs.deterministic && obs.serving && obs.observability && obs.synced);
        let sim = context_for_path("crates/sim/src/lib.rs");
        assert!(!sim.deterministic && !sim.serving && !sim.observability && !sim.synced);
        let predict = context_for_path("crates/core/src/predict.rs");
        assert!(!predict.synced, "predict.rs is not a sync-layer module");
    }

    #[test]
    fn violations_sort_stably() {
        let src = "fn f(m: std::collections::HashMap<u32, u32>) -> u32 {\n    let mut t = 0.0;\n    for v in m.values() { t += *v as f64; }\n    x.unwrap()\n}\n";
        let v = analyze_file_all_rules("fixture.rs", src);
        assert!(v.windows(2).all(|w| w[0].line <= w[1].line));
        assert!(v.iter().any(|v| v.rule == Rule::UnorderedIter));
        assert!(v.iter().any(|v| v.rule == Rule::PanicInLibrary));
    }
}

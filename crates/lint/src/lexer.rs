//! A lightweight line-oriented lexer for Rust source.
//!
//! The analyzer does not need a full parse tree; it needs, per line:
//! the code text with string/char literals blanked and comments removed
//! (so pattern matches never fire inside literals), the comment text (so
//! pragmas and doc comments can be read), and whether the line sits inside
//! test-only code (`#[cfg(test)]` modules or `#[test]` functions).
//!
//! Comment and string state carries across lines, so block comments and
//! multi-line string literals are handled correctly.

/// One source line after lexing.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments stripped and string/char literal *contents*
    /// blanked (the delimiting quotes are kept so `.expect("")`-style
    /// patterns still show the call shape).
    pub code: String,
    /// The original line text, untouched. The autofix engine edits raw
    /// text, never the blanked form.
    pub raw: String,
    /// Comment text on the line (`//`, `///`, `//!`, or block-comment
    /// content), without the comment markers.
    pub comment: String,
    /// True if the comment is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub is_doc: bool,
    /// True if the line is inside `#[cfg(test)]` or `#[test]` scope.
    /// Filled in by [`mark_test_scopes`].
    pub is_test: bool,
    /// Identifier tokens of `code` with their byte offsets, tokenized
    /// once at parse time. Every later phase (unit scan, effect
    /// seeding, symbol extraction) shares this stream instead of
    /// re-tokenizing the line; digit-initial tokens (numeric literals)
    /// are excluded.
    pub tokens: Vec<(String, usize)>,
}

/// A lexed source file: the path (workspace-relative where possible) and
/// its lines, 0-indexed (line numbers in diagnostics are `index + 1`).
#[derive(Debug)]
pub struct SourceFile {
    pub path: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lexes `text` into lines, marks test scopes, and tokenizes each
    /// blanked line once for the shared token stream.
    pub fn parse(path: impl Into<String>, text: &str) -> Self {
        let mut lines = lex(text);
        mark_test_scopes(&mut lines);
        for line in &mut lines {
            line.tokens = tokenize(&line.code);
        }
        Self {
            path: path.into(),
            lines,
        }
    }
}

enum Mode {
    Code,
    /// Block comment at a nesting depth; `bool` marks a doc block
    /// comment (`/**` or `/*!`).
    Block(u32, bool),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by this many `#`.
    RawStr(u32),
}

fn lex(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let mut line = Line {
            raw: raw.to_string(),
            ..Line::default()
        };
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match mode {
                Mode::Code => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        // Line comment; `///` and `//!` are doc comments.
                        let rest: String = chars[i + 2..].iter().collect();
                        let doc_body = match rest.strip_prefix('/') {
                            Some(r) if !rest.starts_with("//") => Some(r),
                            _ => rest.strip_prefix('!'),
                        };
                        match doc_body {
                            Some(body) => {
                                line.is_doc = true;
                                line.comment = body.trim().to_string();
                            }
                            None => line.comment = rest.trim().to_string(),
                        }
                        i = chars.len();
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        // `/**` (but not the empty `/**/`) and `/*!` open
                        // doc block comments.
                        let third = chars.get(i + 2);
                        let doc = third == Some(&'!')
                            || (third == Some(&'*') && chars.get(i + 3) != Some(&'/'));
                        if doc {
                            line.is_doc = true;
                        }
                        mode = Mode::Block(1, doc);
                        i += 2;
                    }
                    '"' => {
                        line.code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw / byte string: r"…", r#"…"#, br"…", b"…".
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                        if !prev_ident && chars.get(j) == Some(&'"') && (c != 'b' || j > i + 1) {
                            line.code.push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        } else if !prev_ident && c == 'b' && chars.get(i + 1) == Some(&'"') {
                            line.code.push('"');
                            mode = Mode::Str;
                            i += 2;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime. A char literal closes with
                        // a `'` shortly after; a lifetime does not.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: the escaped character
                            // sits at i + 2 and may itself be `'` (as in
                            // `'\''`), so the closing-quote scan starts
                            // one past it.
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            line.code.push_str("''");
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("''");
                            i += 3;
                        } else {
                            // Lifetime: keep as-is.
                            line.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                },
                Mode::Block(depth, doc) => {
                    if doc {
                        line.is_doc = true;
                    }
                    if chars.get(i) == Some(&'*') && chars.get(i + 1) == Some(&'/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1, doc)
                        };
                        i += 2;
                    } else if chars.get(i) == Some(&'/') && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1, doc);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        line.code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            line.code.push('"');
                            mode = Mode::Code;
                            i += 1 + hashes as usize;
                        } else {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }
        line.comment = line.comment.trim().to_string();
        lines.push(line);
    }
    lines
}

pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Identifier tokens of a blanked code line with their byte offsets.
/// Digit-initial runs (numeric literals) are dropped.
fn tokenize(code: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in code
        .char_indices()
        .chain(std::iter::once((code.len(), ' ')))
    {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            let tok = &code[s..i];
            if !tok.starts_with(|c: char| c.is_ascii_digit()) {
                out.push((tok.to_string(), s));
            }
        }
    }
    out
}

/// Marks lines inside `#[cfg(test)]` scopes and `#[test]` functions.
///
/// Brace-depth tracking over the blanked code text: when an opening brace
/// follows a pending test attribute (within the attribute's item), every
/// line until the matching close is test-only. Nested scopes inherit.
fn mark_test_scopes(lines: &mut [Line]) {
    // Stack entry per open brace: is the scope test-only?
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_test = false;
    for line in lines.iter_mut() {
        let code = line.code.trim().to_string();
        // A line is test code if any enclosing scope is test-only.
        let inherited = stack.iter().any(|&t| t);
        line.is_test = inherited || (pending_test && !code.is_empty());
        if code.starts_with("#[") {
            if code.contains("cfg(test)") || code == "#[test]" || code.starts_with("#[test]") {
                pending_test = true;
            }
            continue;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    // The first brace after a test attribute opens the
                    // attributed item's scope; nested braces inherit from
                    // the stack once it is pushed.
                    let test = pending_test || stack.iter().any(|&t| t);
                    pending_test = false;
                    stack.push(test);
                }
                '}' => {
                    stack.pop();
                }
                _ => {}
            }
        }
        // A non-empty, non-attribute line without braces consumes the
        // pending attribute only if it terminates the item (e.g. a
        // semicolon-only item); signatures spanning lines keep it pending.
        if pending_test && !code.is_empty() && code.ends_with(';') {
            pending_test = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse(
            "t.rs",
            "let x = \"a // not a comment\"; // real comment\nlet y = 'z';",
        );
        assert_eq!(f.lines[0].code.trim(), "let x = \"\";");
        assert_eq!(f.lines[0].comment, "real comment");
        assert_eq!(f.lines[1].code.trim(), "let y = '';");
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("t.rs", "a /* one\ntwo */ b");
        assert_eq!(f.lines[0].code.trim(), "a");
        assert_eq!(f.lines[1].code.trim(), "b");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::parse("t.rs", "let s = r#\"has \"quotes\" and .unwrap()\"#;");
        assert!(!f.lines[0].code.contains("unwrap"));
    }

    #[test]
    fn lifetimes_survive() {
        let f = SourceFile::parse("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("'a"));
    }

    #[test]
    fn cfg_test_scope_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn lib2() {}";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].is_test);
        assert!(f.lines[3].is_test);
        assert!(!f.lines[5].is_test);
    }

    #[test]
    fn test_fn_scope_is_marked() {
        let src = "fn lib() {}\n#[test]\nfn check() {\n    x.unwrap();\n}\nfn lib2() {}";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.lines[3].is_test);
        assert!(!f.lines[5].is_test);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let f = SourceFile::parse("t.rs", "/// docs about tearing\nfn snapshot() {}");
        assert!(f.lines[0].is_doc);
        assert_eq!(f.lines[0].comment, "docs about tearing");
    }

    #[test]
    fn escaped_quote_char_literal_is_blanked() {
        // `'\''` used to leave a stray quote behind, which then read as a
        // lifetime tick and shifted everything after it.
        let f = SourceFile::parse("t.rs", "let q = '\\''; x.unwrap();");
        assert_eq!(f.lines[0].code.trim(), "let q = ''; x.unwrap();");
        let f = SourceFile::parse("t.rs", "let b = b'\\''; x.unwrap();");
        assert_eq!(f.lines[0].code.trim(), "let b = b''; x.unwrap();");
        // Longer escapes still close at the right quote.
        let f = SourceFile::parse("t.rs", "let u = '\\u{1F600}'; y.unwrap();");
        assert_eq!(f.lines[0].code.trim(), "let u = ''; y.unwrap();");
    }

    #[test]
    fn raw_string_hash_counts_must_match() {
        let f = SourceFile::parse("t.rs", "let s = r##\"abc\"# def\"##; z.unwrap();");
        assert_eq!(f.lines[0].code.trim(), "let s = \"\"; z.unwrap();");
        let f = SourceFile::parse("t.rs", "let s = r#\"a\"b\"#; y.unwrap();");
        assert_eq!(f.lines[0].code.trim(), "let s = \"\"; y.unwrap();");
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let f = SourceFile::parse(
            "t.rs",
            "a /* x /* y */ z */ b\n/* one /* two */\nstill */ c",
        );
        assert_eq!(f.lines[0].code.trim(), "a  b");
        assert_eq!(f.lines[1].code.trim(), "");
        assert_eq!(f.lines[2].code.trim(), "c");
    }

    #[test]
    fn block_doc_comments_are_flagged() {
        let f = SourceFile::parse("t.rs", "/** can tear\nacross fields */\nfn snapshot() {}");
        assert!(f.lines[0].is_doc);
        assert!(f.lines[1].is_doc);
        assert!(!f.lines[2].is_doc);
        let f = SourceFile::parse("t.rs", "/* plain */ code()");
        assert!(!f.lines[0].is_doc);
    }

    #[test]
    fn raw_lines_are_retained_verbatim() {
        let src = "let x = \"literal\"; // comment";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines[0].raw, src);
    }
}

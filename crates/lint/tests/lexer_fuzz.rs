//! Property tests for the lexer: on arbitrary input — including the
//! delimiter soup that drives lexers into corners (raw strings, nested
//! block comments, lifetime ticks, escaped quotes) — `SourceFile::parse`
//! must never panic, must terminate, and must keep the line structure of
//! its input. The analyzer builds everything on the lexer, so a lexer
//! that diverges or dies on one weird file takes the whole CI gate with
//! it.

use proptest::prelude::*;
use wilocator_lint::SourceFile;

/// Fragments weighted toward lexer state transitions: quote kinds, raw
/// string openers/closers at several hash depths, comment markers,
/// escapes, and plain code.
const FRAGMENTS: &[&str] = &[
    "\"",
    "'",
    "\\",
    "r\"",
    "r#\"",
    "r##\"",
    "\"#",
    "\"##",
    "b\"",
    "br#\"",
    "/*",
    "*/",
    "//",
    "///",
    "//!",
    "/**",
    "/*!",
    "'a",
    "'\\''",
    "'x'",
    "b'x'",
    "\n",
    " ",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    "#[cfg(test)]",
    "#[test]",
    "fn f",
    "let x = ",
    ".unwrap()",
    "ident",
    "0xff",
    "é",
    "日",
];

fn assemble(picks: &[usize], tail: &[u8]) -> String {
    let mut s = String::new();
    for &p in picks {
        s.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
    }
    // Arbitrary (possibly invalid) UTF-8 tail, lossily decoded: the lexer
    // sees whatever a reader would hand it.
    s.push_str(&String::from_utf8_lossy(tail));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_and_preserves_lines(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48),
        tail in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        let text = assemble(&picks, &tail);
        let parsed = SourceFile::parse("fuzz.rs", &text);
        prop_assert_eq!(parsed.lines.len(), text.lines().count());
        for (line, raw) in parsed.lines.iter().zip(text.lines()) {
            // Raw text is retained verbatim; blanked code never grows
            // beyond the raw line it came from.
            prop_assert_eq!(line.raw.as_str(), raw);
            prop_assert!(line.code.chars().count() <= raw.chars().count());
        }
    }

    #[test]
    fn lexer_is_deterministic(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let text = assemble(&picks, &[]);
        let a = SourceFile::parse("fuzz.rs", &text);
        let b = SourceFile::parse("fuzz.rs", &text);
        for (la, lb) in a.lines.iter().zip(&b.lines) {
            prop_assert_eq!(&la.code, &lb.code);
            prop_assert_eq!(&la.comment, &lb.comment);
            prop_assert_eq!(la.is_test, lb.is_test);
        }
    }
}

//! The same shape with the error carried up the chain instead of a
//! panic at the bottom.

pub fn serve(report: u32) -> Option<u32> {
    locate(report)
}

fn locate(report: u32) -> Option<u32> {
    refine(report)
}

fn refine(report: u32) -> Option<u32> {
    report.checked_mul(2)
}

//! Good: every span start reaches a named guard that lives across the
//! work it measures; the one deliberate fire-and-forget marker carries a
//! reasoned pragma.

pub fn handle(tracer: &Tracer, trace: Option<&TraceCtx<'_>>) -> bool {
    let root = tracer.start_root_span(0, "ingest");
    let span = trace.map(|t| t.child_span("track"));
    do_work();
    // lint: allow(span_discipline) — zero-width marker span is the point here
    trace.map(|t| t.child_span("checkpoint_marker"));
    span.is_some() && root.is_some()
}

//! Good: a sync-layer module importing everything through the
//! `crate::sync` façade — plus the two raw `std::sync` uses that stay
//! legal (`Arc` by design, `PoisonError` because poisoning is not
//! virtualised) and a reasoned escape hatch.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex, RwLock};

/// Poison handling is deliberately outside the façade: model locks
/// never poison, so there is nothing to virtualise.
fn unpoisoned<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub struct Cell {
    epoch: AtomicU64,
    slot: RwLock<Arc<u64>>,
    gate: Mutex<()>,
}

impl Cell {
    pub fn read(&self) -> u64 {
        let _ = self.epoch.load(Ordering::Relaxed);
        **unpoisoned(self.slot.read())
    }

    pub fn publish(&self, v: u64) {
        let _gate = unpoisoned(self.gate.lock());
        *unpoisoned(self.slot.write()) = Arc::new(v);
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// A startup-only path may opt out with a reason the reviewer can
    /// audit; the pragma is consumed, so W005 stays quiet too.
    pub fn startup_probe() -> bool {
        // lint: allow(raw_sync) — one-shot init flag, never reached by model tests
        static READY: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        READY.fetch_add(1, Ordering::Relaxed) == 0
    }
}

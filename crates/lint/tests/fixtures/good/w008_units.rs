//! Unit-respecting arithmetic: same-unit sums, the dBm ± dB special
//! case (a level adjusted by a gain is still a level), and `*`/`/`
//! forming new units.

pub fn adjusted_level(rx_dbm: f64, antenna_gain_db: f64) -> f64 {
    rx_dbm + antenna_gain_db
}

pub fn total_path(leg_a_m: f64, leg_b_m: f64) -> f64 {
    leg_a_m + leg_b_m
}

pub fn speed(dist_m: f64, dt_s: f64) -> f64 {
    dist_m / dt_s
}

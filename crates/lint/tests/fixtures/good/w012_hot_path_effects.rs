//! Clean under W012 `hot_path_effects`: entries that fit their budget,
//! and one denied effect carried by a reasoned allow pragma.

pub struct Engine {
    buf: Vec<u64>,
    acc: u64,
}

impl Engine {
    // lint: hot_path(deny: blocks_or_syscalls, reads_clock, unbounded_iteration)
    pub fn hot_step(&mut self, x: u64) {
        self.buf.push(x);
        self.acc = self.tail(x);
    }

    fn tail(&self, x: u64) -> u64 {
        self.acc.wrapping_add(x)
    }

    // lint: hot_path(deny: allocates)
    pub fn warm_grow(&mut self, x: u64) {
        // lint: allow(hot_path_effects) — amortized growth: capacity is reserved at startup, push does not reallocate in steady state
        self.buf.push(x);
    }
}

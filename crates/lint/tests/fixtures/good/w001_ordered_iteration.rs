//! Good: every way to iterate an unordered container without leaking
//! hash order into output — BTreeMap keys, an explicit sort, an
//! order-insensitive reduction, and a reasoned pragma.

use std::collections::{BTreeMap, HashMap, HashSet};

/// BTreeMap iteration is already ordered; never flagged.
pub fn ordered_sum(readings: &BTreeMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for v in readings.values() {
        sum += v;
    }
    sum
}

/// Hash iteration is fine when the result is sorted before use.
pub fn sorted_keys(map: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = map.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Counting is order-insensitive.
pub fn loud_readings(set: &HashSet<i32>) -> usize {
    set.iter().filter(|&&rss| rss > -60).count()
}

/// Integer sums are commutative and associative — no rounding drift.
pub fn total(map: &HashMap<u32, u64>) -> u64 {
    map.values().copied().sum::<u64>()
}

/// The escape hatch, with a reason.
pub fn side_effect_only(sink: &mut Vec<f64>) {
    let mut map = HashMap::new();
    map.insert(1_u32, 0.5_f64);
    // lint: allow(unordered_iter) — sink is re-sorted by the caller before use
    for v in map.values() {
        sink.push(*v);
    }
}

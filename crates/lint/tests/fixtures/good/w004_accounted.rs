//! Good: every `IngestOutcome` variant lands in exactly one counter
//! family, so outcome counters reconcile against `reports_total`.

pub enum IngestOutcome {
    Fix,
    Stale,
    NoFix,
}

pub struct Counter;
impl Counter {
    pub fn inc(&self) {}
}

pub struct Metrics {
    pub fixes_total: Counter,
    pub stale_total: Counter,
    pub absorbed_total: Counter,
}

pub fn account(m: &Metrics, outcome: &IngestOutcome) {
    match outcome {
        IngestOutcome::Fix => m.fixes_total.inc(),
        IngestOutcome::Stale => m.stale_total.inc(),
        IngestOutcome::NoFix => m.absorbed_total.inc(),
    }
}

//! The same registry with one global order — directory before shard —
//! on every path, including through a call edge.

use std::collections::BTreeMap;
// lint: allow(raw_sync) — standalone fixture, no crate::sync façade to import from
use std::sync::RwLock;

pub struct Registry {
    bus_dir: RwLock<BTreeMap<u64, usize>>,
    shards: Vec<RwLock<BTreeMap<u64, u32>>>,
}

impl Registry {
    pub fn register(&self, bus: u64) {
        let dir = self.bus_dir.write();
        if let Some(lock) = self.shards.first() {
            let shard = lock.write();
            record(dir, shard, bus);
        }
    }

    pub fn rebalance(&self, bus: u64) {
        let dir = self.bus_dir.write();
        self.move_bus(bus);
        drop(dir);
    }

    fn move_bus(&self, bus: u64) {
        if let Some(lock) = self.shards.first() {
            let shard = lock.write();
            touch(shard, bus);
        }
    }
}

//! Clean under W013 `read_path_purity`: readers touch only snapshot
//! data, and the documented one-slot read-lock + `Arc` clone is reached
//! only through the blessed `SnapshotCell::read` leaf.

// lint: allow(raw_sync) — standalone fixture, no crate::sync façade to import from
use std::sync::{Arc, RwLock};

pub struct QuerySnapshot {
    positions: Vec<u64>,
}

pub struct SnapshotCell {
    slot: RwLock<Arc<QuerySnapshot>>,
}

impl SnapshotCell {
    /// The documented read-path carve-out: one uncontended slot read
    /// lock, one `Arc` clone.
    pub fn read(&self) -> Arc<QuerySnapshot> {
        match self.slot.read() {
            Ok(s) => Arc::clone(&s),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }
}

impl QuerySnapshot {
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    pub fn first_position(cell: &SnapshotCell) -> Option<u64> {
        cell.read().positions.first().copied()
    }
}

//! Good: well-formed pragmas — a known rule slug, a reason after the em
//! dash, and a real violation underneath for each one to suppress. Both
//! placements work: own line above, or trailing on the offending line.

pub fn first_checkpoint(route: &[u32]) -> u32 {
    // lint: allow(panic_in_library) — routes are validated non-empty at load time
    *route.first().expect("validated non-empty at load")
}

pub fn head(values: &[f64]) -> f64 {
    values[0] // lint: allow(panic_in_library) — callers index only non-empty windows
}

//! Good: observability atomics done right — Relaxed everywhere, and the
//! one cross-field read sequence documents what can tear.

// lint: allow(raw_sync) — standalone fixture, no crate::sync façade to import from
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    count: AtomicU64,
    sum_milli: AtomicU64,
}

impl Stats {
    /// Monotonic ledger writes need no ordering at all.
    pub fn record(&self, value_milli: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_milli.fetch_add(value_milli, Ordering::Relaxed);
    }

    /// Mean of recorded values, in milli-units.
    ///
    /// # Tearing model
    ///
    /// The two Relaxed loads are not a consistent snapshot: a concurrent
    /// `record` can land between them, so `sum_milli` may include a value
    /// whose `count` increment is not yet visible. The skew is bounded by
    /// the number of in-flight writers and vanishes once they quiesce.
    pub fn mean_milli(&self) -> f64 {
        let n = self.count.load(Ordering::Relaxed);
        let s = self.sum_milli.load(Ordering::Relaxed);
        s as f64 / n.max(1) as f64
    }

    /// Single-field reads are exact and need no tearing note.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

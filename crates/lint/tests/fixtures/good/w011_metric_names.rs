//! Convention-respecting metric families: canonical unit suffixes,
//! dimensionless conventions, labelled keys policed on the family part,
//! non-literal names left to the callee, and a reasoned exception.

pub fn register(snap: &mut MetricsSnapshot, series: &mut TimeSeries, labels: &str) {
    snap.add_counter("wilocator_queries_total", 1);
    snap.add_gauge("wilocator_trace_retained_bytes", 0);
    snap.add_histogram("wilocator_query_latency_us", labels);
    let key = metric_key("wilocator_reports_total{shard=\"0\"}", labels);
    series.track(key, SeriesKind::Counter);
    // lint: allow(metric_hygiene) — epoch is a dimensionless sequence number
    snap.add_gauge("wilocator_snapshot_epoch", 3);
}

//! Good: serving-path error handling without panics — propagation with
//! `?`, explicit defaults, checked access, and the `windows` length
//! guarantee the lint recognises. Panicky helpers are fine in tests.

pub fn parse_rss(field: &str) -> Result<i32, String> {
    field
        .trim()
        .parse::<i32>()
        .map_err(|e| format!("bad rss field: {e}"))
}

pub fn mean_rss(fields: &[&str]) -> Result<f64, String> {
    let mut sum = 0.0;
    for f in fields {
        sum += f64::from(parse_rss(f)?);
    }
    Ok(sum / fields.len().max(1) as f64)
}

/// Checked access instead of a literal subscript.
pub fn third(values: &[f64]) -> f64 {
    values.get(2).copied().unwrap_or(f64::NAN)
}

/// Defaults instead of unwraps.
pub fn first_or_zero(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or_default()
}

/// Indexing straight out of `windows(2)` carries a length guarantee.
pub fn max_step(values: &[f64]) -> f64 {
    let mut best = 0.0_f64;
    for w in values.windows(2) {
        best = best.max((w[1] - w[0]).abs());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        // Test code may panic freely: a failed expect IS the test failure.
        assert_eq!(parse_rss(" -61 ").expect("parses"), -61);
    }
}

//! Clean under W008's single-assignment threading: rebinding chains
//! keep a compatible unit, a fresh function scope drops the map, and a
//! non-simple rebinding (arithmetic) kills the inferred unit.

pub fn chain(t_us: f64, limit_us: f64) -> bool {
    let x = t_us;
    let y = x;
    y > limit_us
}

pub fn fresh_scope(d_m: f64, x: f64) -> f64 {
    x + d_m
}

pub fn killed(t_us: f64, d_m: f64) -> f64 {
    let mut x = t_us;
    x = t_us * 0.5;
    x + d_m
}

//! Bad: `IngestOutcome::NoFix` is never accounted — reports that absorb
//! without a fix vanish from the metrics, so outcome counters no longer
//! sum to `reports_total` and the reconciliation invariant breaks.

pub enum IngestOutcome {
    Fix,
    Stale,
    NoFix,
}

pub struct Metrics {
    pub fixes_total: Counter,
    pub stale_total: Counter,
}

pub struct Counter;
impl Counter {
    pub fn inc(&self) {}
}

pub fn account(m: &Metrics, outcome: &IngestOutcome) {
    match outcome {
        IngestOutcome::Fix => m.fixes_total.inc(),
        IngestOutcome::Stale => m.stale_total.inc(),
        IngestOutcome::NoFix => {}
    }
}

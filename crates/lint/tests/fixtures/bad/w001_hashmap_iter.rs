//! Bad: HashMap iteration feeding a float accumulation — the sum's
//! rounding depends on hash order, which is seeded per process.

use std::collections::HashMap;

pub fn mean_rss(readings: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for v in readings.values() {
        sum += v;
    }
    sum / readings.len().max(1) as f64
}

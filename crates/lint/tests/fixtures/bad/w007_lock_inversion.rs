//! The shard-vs-registry inversion: `register` takes the directory then
//! a shard, `rebalance` takes a shard then the directory. Two threads
//! running these concurrently can each hold the other's next lock.

use std::collections::BTreeMap;
use std::sync::RwLock;

pub struct Registry {
    bus_dir: RwLock<BTreeMap<u64, usize>>,
    shards: Vec<RwLock<BTreeMap<u64, u32>>>,
}

impl Registry {
    pub fn register(&self, bus: u64) {
        let dir = self.bus_dir.write();
        let shard = self.shards[0].write(); //~ W007
        record(dir, shard, bus);
    }

    pub fn rebalance(&self, bus: u64) {
        let shard = self.shards[0].write();
        let dir = self.bus_dir.write();
        record(dir, shard, bus);
    }
}

//! A panic two calls below a pub entry point: W002 sees only `serve`'s
//! own body, so without the transitive rule `refine`'s unwrap ships.

pub fn serve(report: u32) -> u32 {
    locate(report)
}

fn locate(report: u32) -> u32 {
    refine(report)
}

fn refine(report: u32) -> u32 {
    report.checked_mul(2).unwrap() //~ W009
}

//! Seeded violations for W012 `hot_path_effects`: a budget-annotated
//! entry reaching denied effects in its own body and transitively, a
//! trait-object call defaulting to ⊤, and a malformed annotation.

pub trait Policy {
    fn admit(&self, x: u64) -> bool;
}

pub struct Store {
    items: Vec<u64>,
    policy: Box<dyn Policy>,
}

impl Store {
    // lint: hot_path(deny: allocates, reads_clock) //~ W012
    pub fn hot_insert(&mut self, x: u64) {
        self.items.push(x);
        self.stamp();
    }

    fn stamp(&self) -> std::time::Instant {
        std::time::Instant::now()
    }

    // lint: hot_path(deny: blocks_or_syscalls) //~ W012
    pub fn hot_admit(&self, x: u64) -> bool {
        self.policy.admit(x)
    }

    // lint: hot_path(deny: warp_speed) //~ W012
    pub fn mis_annotated(&self) -> usize {
        self.items.len()
    }
}

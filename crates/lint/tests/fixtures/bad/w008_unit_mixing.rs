//! Mixed-unit arithmetic: a received power in dBm has no business being
//! added to a distance in metres, and a comparison across units is a
//! latent threshold bug.

pub fn score(rx_dbm: f64, spacing_m: f64) -> f64 {
    rx_dbm + spacing_m //~ W008
}

pub fn in_range(rssi_dbm: f64, radius_m: f64) -> bool {
    rssi_dbm < radius_m //~ W008
}

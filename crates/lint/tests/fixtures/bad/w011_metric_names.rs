//! Metric families that break the naming convention: a non-snake_case
//! name, a suffix that names no unit, and a non-canonical alias that
//! suffix-driven tooling (dashboards, W008 greps) will never match.

pub fn register(snap: &mut MetricsSnapshot, labels: &str) {
    snap.add_counter("WilocatorQueries", 1); //~ W011
    let key = metric_key("wilocator_latency", labels); //~ W011
    snap.add_histogram("wilocator_query_latency_micros", key); //~ W011
    snap.add_gauge("wilocator_queue_depth_", 0); //~ W011
}

//! Bad: panic paths in library code — every one of these aborts the
//! serving request that hits it.

pub fn first_fix(fixes: &[f64]) -> f64 {
    fixes.first().copied().unwrap()
}

pub fn lookup(map: &std::collections::BTreeMap<u32, f64>, k: u32) -> f64 {
    *map.get(&k).expect("key present")
}

pub fn third(values: &[f64]) -> f64 {
    values[2]
}

pub fn not_done() {
    unimplemented!("later")
}

pub fn boom(flag: bool) {
    if flag {
        panic!("bad flag");
    }
}

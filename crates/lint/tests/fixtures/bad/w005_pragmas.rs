//! Bad: every pragma-hygiene failure mode — an unknown rule slug, a
//! missing reason, and a pragma that suppresses nothing.

// lint: allow(no_such_rule) — this slug does not exist

// lint: allow(panic_in_library)
pub fn reasonless() {}

// lint: allow(atomic_ordering) — nothing here touches an atomic
pub fn unused_pragma() {}

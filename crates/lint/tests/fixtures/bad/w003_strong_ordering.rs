//! Bad: SeqCst on a hot-path counter — a full fence per increment on
//! weakly-ordered targets, buying nothing for a monotonic ledger.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::SeqCst);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

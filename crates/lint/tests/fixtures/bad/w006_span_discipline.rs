//! Bad: span-start calls whose RAII guard never survives the statement.
//! Both forms close the span at zero width — the code *looks*
//! instrumented but every trace records an empty stage.

pub fn handle(tracer: &Tracer, ctx: &TraceCtx<'_>) {
    let _ = tracer.start_root_span(0, "ingest");
    ctx.child_span("track");
    do_work();
}

//! Bad: a sync-layer module naming `std::sync` primitives directly —
//! every one of these is invisible to the model checker, so the
//! protocol it participates in silently escapes the model suite.

use std::sync::atomic::{AtomicU64, Ordering}; //~ W010
use std::sync::Mutex; //~ W010
use std::sync::{Arc, RwLock}; //~ W010

pub struct Cell {
    epoch: AtomicU64,
    slot: RwLock<Arc<u64>>,
    gate: Mutex<()>,
}

impl Cell {
    pub fn read(&self) -> u64 {
        let _ = self.epoch.load(Ordering::Relaxed);
        match self.slot.read() {
            Ok(v) => **v,
            Err(e) => **e.into_inner(),
        }
    }

    pub fn publish(&self, v: u64) {
        // A fully qualified one-off bypasses the façade just the same.
        let parked: std::sync::Condvar = std::sync::Condvar::new(); //~ W010
        let _ = &parked;
        if let Ok(_gate) = self.gate.lock() {
            if let Ok(mut slot) = self.slot.write() {
                *slot = Arc::new(v);
            }
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }
}

//! Seeded violation for W008's single-assignment threading: the unit of
//! `rssi_dbm` survives the rebinding through the suffix-less `x`, so
//! the addition two lines later still mixes dBm with meters.

pub fn blend(rssi_dbm: f64, height_m: f64) -> f64 {
    let x = rssi_dbm;
    let y = x + height_m; //~ W008
    y
}

//! Bad: a cross-field read sequence with no tearing documentation. The
//! two Relaxed loads are individually atomic but not mutually consistent;
//! a concurrent `record` can land between them, so `sum`/`count` may
//! disagree — and nothing warns the caller.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    count: AtomicU64,
    sum: AtomicU64,
}

impl Stats {
    /// The mean of all recorded values.
    pub fn mean(&self) -> f64 {
        let n = self.count.load(Ordering::Relaxed);
        let s = self.sum.load(Ordering::Relaxed);
        s as f64 / n.max(1) as f64
    }
}

//! Regression fixture: the original `nearest_signature` bug shape from
//! PR 2. Rank-distance ties between candidate signatures were broken by
//! `HashMap` iteration order — `min_by` keeps the first minimum it sees,
//! and "first" depended on the per-process hash seed, silently corrupting
//! the Fig. 10 campus-error reproduction across runs.

use std::collections::HashMap;

pub struct Diagram {
    by_signature: HashMap<Vec<u32>, Vec<u32>>,
}

impl Diagram {
    pub fn nearest_signature(&self, sig: &[u32]) -> Option<(&Vec<u32>, f64)> {
        self.by_signature
            .keys()
            .map(|k| (k, rank_distance(k, sig)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

fn rank_distance(a: &[u32], b: &[u32]) -> f64 {
    let mut d = 0.0;
    for (i, x) in a.iter().enumerate() {
        if b.get(i) != Some(x) {
            d += 1.0;
        }
    }
    d
}

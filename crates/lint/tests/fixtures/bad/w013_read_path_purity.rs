//! Seeded violations for W013 `read_path_purity`: `QuerySnapshot`
//! readers taking an ingest lock and spinning unboundedly.

// lint: allow(raw_sync) — standalone fixture, no crate::sync façade to import from
use std::sync::Mutex;

pub struct QuerySnapshot {
    positions: Vec<u64>,
    pending: Mutex<Vec<u64>>,
}

impl QuerySnapshot {
    pub fn total_pending(&self) -> u64 { //~ W013
        let Ok(pending) = self.pending.lock() else {
            return 0;
        };
        pending.iter().sum()
    }

    pub fn spin_for_position(&self) -> u64 { //~ W013
        loop {
            if let Some(&p) = self.positions.first() {
                return p;
            }
        }
    }
}

//! Property tests for the effect lattice and the interprocedural
//! fixpoint (`wilocator_lint::effects`).
//!
//! The W012/W013 soundness story rests on three algebraic facts: join
//! is a semilattice operation (commutative, idempotent, monotone), the
//! fixpoint is an actual fixpoint that dominates every seed and every
//! callee, and the result does not depend on the order nodes or edges
//! are visited in. Randomized call graphs (cycles included — the `% n`
//! wrap makes self-loops and back-edges common) exercise all three.

use proptest::prelude::*;
use wilocator_lint::effects::{fixpoint, join, TOP};

/// Wraps raw generated edge targets into a well-formed adjacency list
/// for `n` nodes (targets taken mod `n`, missing rows empty).
fn make_edges(raw: &[Vec<usize>], n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| {
            raw.get(i)
                .map(|row| row.iter().map(|&j| j % n).collect())
                .unwrap_or_default()
        })
        .collect()
}

/// Applies a permutation (built from `seed` by composing transpositions)
/// to a fixpoint problem and returns (perm, local', edges').
fn permuted(
    local: &[u8],
    edges: &[Vec<usize>],
    seed: &[usize],
) -> (Vec<usize>, Vec<u8>, Vec<Vec<usize>>) {
    let n = local.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for (k, &s) in seed.iter().enumerate() {
        perm.swap(k % n, s % n);
    }
    let mut local2 = vec![0u8; n];
    let mut edges2 = vec![Vec::new(); n];
    for i in 0..n {
        local2[perm[i]] = local[i];
        edges2[perm[i]] = edges[i].iter().map(|&j| perm[j]).collect();
    }
    (perm, local2, edges2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_is_commutative(a in 0u8..=63, b in 0u8..=63) {
        prop_assert_eq!(join(a, b), join(b, a));
    }

    #[test]
    fn join_is_idempotent_with_bot_and_top(a in 0u8..=63) {
        prop_assert_eq!(join(a, a), a);
        prop_assert_eq!(join(a, 0), a);
        prop_assert_eq!(join(a, TOP), TOP);
    }

    #[test]
    fn join_is_monotone(a in 0u8..=63, b in 0u8..=63, c in 0u8..=63) {
        // a ⊑ a ⊔ b always…
        let ab = join(a, b);
        prop_assert_eq!(ab & a, a);
        // …and a ⊑ b implies a ⊔ c ⊑ b ⊔ c.
        if a & b == a {
            let lo = join(a, c);
            let hi = join(b, c);
            prop_assert_eq!(lo & hi, lo);
        }
    }

    #[test]
    fn fixpoint_dominates_seeds_and_callees(
        local in proptest::collection::vec(0u8..=63, 1..24),
        raw_edges in proptest::collection::vec(
            proptest::collection::vec(0usize..24, 0..5), 0..24),
    ) {
        let n = local.len();
        let edges = make_edges(&raw_edges, n);
        let eff = fixpoint(&local, &edges);
        prop_assert_eq!(eff.len(), n);
        for i in 0..n {
            // Every node dominates its own seeds…
            prop_assert_eq!(eff[i] & local[i], local[i]);
            // …and every callee's full transitive set.
            for &j in &edges[i] {
                prop_assert_eq!(eff[i] & eff[j], eff[j]);
            }
        }
        // And it is a genuine fixpoint: re-running from it is identity.
        prop_assert_eq!(fixpoint(&eff, &edges), eff);
    }

    #[test]
    fn fixpoint_ignores_edge_iteration_order(
        local in proptest::collection::vec(0u8..=63, 1..24),
        raw_edges in proptest::collection::vec(
            proptest::collection::vec(0usize..24, 0..5), 0..24),
    ) {
        let n = local.len();
        let edges = make_edges(&raw_edges, n);
        let reversed: Vec<Vec<usize>> = edges
            .iter()
            .map(|row| row.iter().rev().copied().collect())
            .collect();
        prop_assert_eq!(fixpoint(&local, &edges), fixpoint(&local, &reversed));
    }

    #[test]
    fn fixpoint_is_permutation_equivariant(
        local in proptest::collection::vec(0u8..=63, 1..24),
        raw_edges in proptest::collection::vec(
            proptest::collection::vec(0usize..24, 0..5), 0..24),
        seed in proptest::collection::vec(0usize..1024, 0..24),
    ) {
        let n = local.len();
        let edges = make_edges(&raw_edges, n);
        let (perm, local2, edges2) = permuted(&local, &edges, &seed);
        let eff = fixpoint(&local, &edges);
        let eff2 = fixpoint(&local2, &edges2);
        for i in 0..n {
            // Relabeling nodes relabels the answer — node identity (and
            // therefore sweep order) carries no information.
            prop_assert_eq!(eff2[perm[i]], eff[i]);
        }
    }
}

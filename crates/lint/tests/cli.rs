//! End-to-end checks of the `wilocator-lint` binary: exit codes, SARIF
//! output on stdout, and the `--fix --dry-run` contract CI's
//! `lint-fix-is-noop` job relies on (empty diff on a clean tree).

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wilocator-lint"))
}

fn fixture(kind: &str, name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(kind)
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn clean_file_exits_zero() {
    let out = bin()
        .arg(fixture("good", "w009_error_chain.rs"))
        .output()
        .expect("run lint");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn bad_file_exits_nonzero_with_rule_code() {
    let out = bin()
        .arg(fixture("bad", "w008_unit_mixing.rs"))
        .output()
        .expect("run lint");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("W008"));
}

#[test]
fn sarif_output_is_json_with_results() {
    let out = bin()
        .args([
            &fixture("bad", "w009_transitive_panic.rs"),
            "--format",
            "sarif",
        ])
        .output()
        .expect("run lint");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "not JSON: {stdout}");
    assert!(stdout.contains("\"version\":\"2.1.0\""));
    assert!(stdout.contains("W009"));
}

#[test]
fn fix_dry_run_on_clean_workspace_is_empty() {
    // The tree lints clean (the fixtures test asserts that), so the safe
    // fix diff must be empty and the exit code zero — exactly what the
    // CI `lint-fix-is-noop` check runs.
    let root = wilocator_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let out = bin()
        .args(["--workspace", "--fix", "--dry-run"])
        .current_dir(&root)
        .output()
        .expect("run lint");
    assert!(out.status.success(), "{out:?}");
    assert!(
        out.stdout.is_empty(),
        "dry-run diff not empty:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn dry_run_without_fix_is_a_usage_error() {
    let out = bin()
        .args([&fixture("good", "w008_units.rs"), "--dry-run"])
        .output()
        .expect("run lint");
    assert_eq!(out.status.code(), Some(2));
}

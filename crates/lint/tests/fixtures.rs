//! Fixture corpus self-test: every `fixtures/bad/wNNN_*.rs` must trip
//! the rule named by its filename prefix, every `fixtures/good/*.rs`
//! must come back completely clean (all rules enabled), and the
//! workspace itself must lint clean — the tool gates CI, so a rule that
//! silently stops firing is itself a regression.

use std::path::{Path, PathBuf};
use wilocator_lint::{analyze_file_all_rules, find_workspace_root, run_workspace};

fn fixture_files(kind: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(kind);
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no fixtures under {}", dir.display());
    out
}

/// `w001_hashmap_iter.rs` → `"W001"`.
fn expected_code(path: &Path) -> String {
    let name = path.file_stem().expect("file stem").to_string_lossy();
    let prefix = name.split('_').next().expect("wNNN_ prefix");
    assert!(
        prefix.len() == 4 && prefix.starts_with('w'),
        "bad fixture name {name}: want wNNN_<slug>.rs"
    );
    prefix.to_ascii_uppercase()
}

#[test]
fn bad_fixtures_trip_their_rule() {
    let mut seen = std::collections::BTreeSet::new();
    for path in fixture_files("bad") {
        let want = expected_code(&path);
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let violations = analyze_file_all_rules(&path.to_string_lossy(), &text);
        assert!(
            violations.iter().any(|v| v.rule.code() == want),
            "{}: expected a {want} violation, got: {:?}",
            path.display(),
            violations.iter().map(|v| v.rule.code()).collect::<Vec<_>>()
        );
        seen.insert(want);
    }
    for code in [
        "W001", "W002", "W003", "W004", "W005", "W006", "W007", "W008", "W009", "W010", "W011",
        "W012", "W013",
    ] {
        assert!(seen.contains(code), "no bad fixture exercises {code}");
    }
}

/// `//~ WNNN` markers in bad fixtures pin the exact reported site: the
/// named rule must fire on that line, not merely somewhere in the file.
#[test]
fn bad_fixture_markers_pin_rule_and_line() {
    let mut checked = 0;
    for path in fixture_files("bad") {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let violations = analyze_file_all_rules(&path.to_string_lossy(), &text);
        for (idx, line) in text.lines().enumerate() {
            let Some(at) = line.find("//~ ") else {
                continue;
            };
            let code = line[at + 4..].trim();
            assert!(
                violations
                    .iter()
                    .any(|v| v.rule.code() == code && v.line == idx + 1),
                "{}:{}: expected {code} here, got: {:?}",
                path.display(),
                idx + 1,
                violations
                    .iter()
                    .map(|v| format!("{}@{}", v.rule.code(), v.line))
                    .collect::<Vec<_>>()
            );
            checked += 1;
        }
    }
    assert!(checked >= 4, "marker corpus shrank: {checked} markers");
}

#[test]
fn good_fixtures_are_clean() {
    let mut seen = std::collections::BTreeSet::new();
    for path in fixture_files("good") {
        let want = expected_code(&path);
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let violations = analyze_file_all_rules(&path.to_string_lossy(), &text);
        assert!(
            violations.is_empty(),
            "{}: expected clean, got:\n{}",
            path.display(),
            violations
                .iter()
                .map(|v| v.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
        seen.insert(want);
    }
    for code in [
        "W001", "W002", "W003", "W004", "W005", "W006", "W007", "W008", "W009", "W010", "W011",
        "W012", "W013",
    ] {
        assert!(seen.contains(code), "no good fixture exercises {code}");
    }
}

#[test]
fn workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let violations = run_workspace(&root);
    assert!(
        violations.is_empty(),
        "workspace lint regressed:\n{}",
        violations
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Golden diagnostics: the rendered output over the bad-fixture corpus
//! must be byte-identical to `tests/golden/bad_fixtures.txt`. This pins
//! the dedup + stable (file, line, rule, message) ordering and the exact
//! diagnostic text — both are part of the tool's interface (CI greps it,
//! editors parse it).
//!
//! To bless a deliberate change:
//! `LINT_BLESS=1 cargo test -p wilocator-lint --test golden`.

use std::path::{Path, PathBuf};
use wilocator_lint::analyze_file_all_rules;

fn manifest_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn golden_path() -> PathBuf {
    manifest_dir()
        .join("tests")
        .join("golden")
        .join("bad_fixtures.txt")
}

fn actual() -> String {
    let dir = manifest_dir().join("tests").join("fixtures").join("bad");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read bad fixtures")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    let mut out = String::new();
    for path in paths {
        // Manifest-relative paths keep the golden file machine-independent.
        let rel = path
            .strip_prefix(manifest_dir())
            .expect("fixture under manifest dir")
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path).expect("read fixture");
        for v in analyze_file_all_rules(&rel, &text) {
            out.push_str(&v.render());
            out.push('\n');
        }
    }
    out
}

#[test]
fn bad_fixture_diagnostics_match_golden() {
    let actual = actual();
    if std::env::var_os("LINT_BLESS").is_some() {
        std::fs::write(golden_path(), &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(golden_path())
        .expect("golden file missing — run with LINT_BLESS=1 to create it");
    assert!(
        expected == actual,
        "diagnostics drifted from golden (LINT_BLESS=1 to re-bless).\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

//! Quality-plane dashboard renderer.
//!
//! Parses the JSON published by the `/debug/timeseries`,
//! `/debug/quality` and `/debug/slo` endpoints — individually or as the
//! combined dump `wilocator_serve::debug_dump` writes — and renders a
//! deterministic text dashboard. The renderer is a pure function of the
//! parsed document: no clocks, no locale, no environment, so the same
//! dump always produces byte-identical output (CI diffs it, and the
//! golden tests rely on it).
//!
//! The JSON layer reuses the `wilocator-tracedump` parser; this crate
//! adds the schema: [`parse_dump`] validates member types and value
//! ranges strictly enough that `wilocator-dash --check` doubles as a
//! schema check for the debug endpoints in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wilocator_tracedump::{parse_json, Json};

/// One windowed aggregate point of a tracked series.
#[derive(Debug, Clone, PartialEq)]
pub enum PointAgg {
    /// Counter window: events in the window and their rate.
    Counter {
        /// Increment observed within the window.
        delta: u64,
        /// `delta` per elapsed second of the window.
        rate_per_s: f64,
    },
    /// Gauge window: last sampled value.
    Gauge {
        /// The sampled level.
        value: i64,
    },
    /// Histogram window: count plus quantiles of the window's deltas.
    Histogram {
        /// Observations recorded within the window.
        count: u64,
        /// Median upper-bound estimate.
        p50: u64,
        /// 90th-percentile upper-bound estimate.
        p90: u64,
        /// 99th-percentile upper-bound estimate.
        p99: u64,
    },
}

/// A point on a series: window start plus its aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Window start, microseconds on the publishing clock.
    pub start_us: u64,
    /// The windowed aggregate.
    pub agg: PointAgg,
}

/// One tracked metric family's windowed history.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric family name.
    pub family: String,
    /// Closed windows oldest first; the open window last.
    pub points: Vec<Point>,
}

/// ETA accuracy at one prediction horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Horizon {
    /// Horizon length in seconds (how far ahead the ETA was issued).
    pub horizon_s: f64,
    /// Confirmed (bus actually arrived) predictions folded in so far.
    pub confirmed_total: u64,
    /// Mean absolute ETA error, seconds.
    pub mean_abs_error_s: f64,
    /// Signed residual quantiles, seconds (positive = predicted late).
    pub p50_s: f64,
    /// 90th percentile of the signed residual, seconds.
    pub p90_s: f64,
    /// 99th percentile of the signed residual, seconds.
    pub p99_s: f64,
    /// 90th percentile of the absolute residual, seconds.
    pub p90_abs_s: f64,
    /// Confirmations inside the recent window ring.
    pub recent_confirmed: u64,
    /// p90 over only the recent window ring, seconds.
    pub recent_p90_s: f64,
    /// Absolute-residual p90 over only the recent window ring, seconds.
    pub recent_p90_abs_s: f64,
}

/// One route's ETA-accuracy table.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteQuality {
    /// Route label as served (e.g. `R0`).
    pub route: String,
    /// Per-horizon accuracy, shortest horizon first.
    pub horizons: Vec<Horizon>,
}

/// One drift detector's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Detector {
    /// Detector name (e.g. `dead_reckon_fraction`).
    pub name: String,
    /// Whether both burn windows exceeded the threshold.
    pub fired: bool,
    /// Burn rate over the short window (1.0 = exactly at threshold).
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// The configured threshold the burns are normalized against.
    pub threshold: f64,
    /// Denominator events in the short window.
    pub short_events: u64,
    /// Denominator events in the long window.
    pub long_events: u64,
    /// Retained flight-recorder trace ids exemplifying the anomaly.
    pub exemplar_trace_ids: Vec<u64>,
}

/// A parsed debug dump: the three `/debug` sections plus the stamps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dashboard {
    /// Snapshot epoch the sections were published with.
    pub epoch: u64,
    /// Stream time of the snapshot, seconds.
    pub as_of_s: f64,
    /// Stream time the quality sections were last evaluated, seconds.
    pub evaluated_at_s: f64,
    /// Live snapshot staleness when the dump was taken (absent on
    /// `/debug/timeseries` and `/debug/quality` bodies).
    pub staleness_s: Option<f64>,
    /// Windowed series, one per tracked family.
    pub series: Vec<Series>,
    /// Per-route ETA accuracy.
    pub routes: Vec<RouteQuality>,
    /// Drift-detector statuses.
    pub detectors: Vec<Detector>,
}

impl Dashboard {
    /// Names of detectors currently firing, dump order.
    pub fn fired(&self) -> Vec<&str> {
        self.detectors
            .iter()
            .filter(|d| d.fired)
            .map(|d| d.name.as_str())
            .collect()
    }
}

fn member_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

fn member_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    match obj.get(key) {
        Some(Json::Null) => Ok(f64::NAN),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("{ctx}: non-numeric `{key}`")),
        None => Err(format!("{ctx}: missing `{key}`")),
    }
}

fn member_i64(obj: &Json, key: &str, ctx: &str) -> Result<i64, String> {
    let v = member_f64(obj, key, ctx)?;
    if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) {
        Ok(v as i64)
    } else {
        Err(format!("{ctx}: `{key}` is not a signed integer"))
    }
}

fn member_bool(obj: &Json, key: &str, ctx: &str) -> Result<bool, String> {
    match obj.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("{ctx}: missing or non-boolean `{key}`")),
    }
}

fn member_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{ctx}: missing or non-string `{key}`"))
}

fn member_arr<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], String> {
    match obj.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(format!("{ctx}: missing or non-array `{key}`")),
    }
}

fn parse_point(kind: &str, point: &Json, ctx: &str) -> Result<Point, String> {
    let start_us = member_u64(point, "start_us", ctx)?;
    let agg = match kind {
        "counter" => PointAgg::Counter {
            delta: member_u64(point, "delta", ctx)?,
            rate_per_s: member_f64(point, "rate_per_s", ctx)?,
        },
        "gauge" => PointAgg::Gauge {
            value: member_i64(point, "value", ctx)?,
        },
        "histogram" => PointAgg::Histogram {
            count: member_u64(point, "count", ctx)?,
            p50: member_u64(point, "p50", ctx)?,
            p90: member_u64(point, "p90", ctx)?,
            p99: member_u64(point, "p99", ctx)?,
        },
        other => return Err(format!("{ctx}: unknown series kind `{other}`")),
    };
    Ok(Point { start_us, agg })
}

fn parse_series(items: &[Json]) -> Result<Vec<Series>, String> {
    let mut out = Vec::with_capacity(items.len());
    for view in items {
        let family = member_str(view, "family", "series")?.to_string();
        let ctx = format!("series `{family}`");
        let kind = member_str(view, "kind", &ctx)?;
        if !["counter", "gauge", "histogram"].contains(&kind) {
            return Err(format!("{ctx}: unknown series kind `{kind}`"));
        }
        let mut points = Vec::new();
        let mut prev_start = None;
        for point in member_arr(view, "points", &ctx)? {
            let point = parse_point(kind, point, &ctx)?;
            if prev_start.is_some_and(|p| point.start_us <= p) {
                return Err(format!("{ctx}: window starts must be increasing"));
            }
            prev_start = Some(point.start_us);
            points.push(point);
        }
        out.push(Series { family, points });
    }
    Ok(out)
}

fn parse_routes(items: &[Json]) -> Result<Vec<RouteQuality>, String> {
    let mut out = Vec::with_capacity(items.len());
    for entry in items {
        let route = member_str(entry, "route", "routes")?.to_string();
        let ctx = format!("route `{route}`");
        let mut horizons = Vec::new();
        for h in member_arr(entry, "horizons", &ctx)? {
            horizons.push(Horizon {
                horizon_s: member_f64(h, "horizon_s", &ctx)?,
                confirmed_total: member_u64(h, "confirmed_total", &ctx)?,
                mean_abs_error_s: member_f64(h, "mean_abs_error_s", &ctx)?,
                p50_s: member_f64(h, "p50_s", &ctx)?,
                p90_s: member_f64(h, "p90_s", &ctx)?,
                p99_s: member_f64(h, "p99_s", &ctx)?,
                p90_abs_s: member_f64(h, "p90_abs_s", &ctx)?,
                recent_confirmed: member_u64(h, "recent_confirmed", &ctx)?,
                recent_p90_s: member_f64(h, "recent_p90_s", &ctx)?,
                recent_p90_abs_s: member_f64(h, "recent_p90_abs_s", &ctx)?,
            });
        }
        out.push(RouteQuality { route, horizons });
    }
    Ok(out)
}

fn parse_detectors(items: &[Json]) -> Result<Vec<Detector>, String> {
    let mut out = Vec::with_capacity(items.len());
    for d in items {
        let name = member_str(d, "name", "detectors")?.to_string();
        let ctx = format!("detector `{name}`");
        let mut exemplar_trace_ids = Vec::new();
        for id in member_arr(d, "exemplar_trace_ids", &ctx)? {
            exemplar_trace_ids.push(
                id.as_u64()
                    .ok_or_else(|| format!("{ctx}: non-integer exemplar trace id"))?,
            );
        }
        out.push(Detector {
            fired: member_bool(d, "fired", &ctx)?,
            short_burn: member_f64(d, "short_burn", &ctx)?,
            long_burn: member_f64(d, "long_burn", &ctx)?,
            threshold: member_f64(d, "threshold", &ctx)?,
            short_events: member_u64(d, "short_events", &ctx)?,
            long_events: member_u64(d, "long_events", &ctx)?,
            exemplar_trace_ids,
            name,
        });
    }
    Ok(out)
}

/// Parses one debug document: the combined dump, or any single
/// `/debug/*` endpoint body (sections the body lacks parse as empty).
///
/// # Errors
///
/// Returns a one-line description of the first structural problem —
/// invalid JSON, a missing stamp, a mistyped member, or non-monotone
/// window starts.
pub fn parse_dump(text: &str) -> Result<Dashboard, String> {
    let doc = parse_json(text)?;
    let mut dash = Dashboard {
        epoch: member_u64(&doc, "epoch", "dump")?,
        as_of_s: member_f64(&doc, "as_of_s", "dump")?,
        evaluated_at_s: member_f64(&doc, "evaluated_at_s", "dump")?,
        ..Dashboard::default()
    };
    if doc.get("staleness_s").is_some() {
        dash.staleness_s = Some(member_f64(&doc, "staleness_s", "dump")?);
    }
    if let Some(Json::Arr(items)) = doc.get("series") {
        dash.series = parse_series(items)?;
    }
    if let Some(Json::Arr(items)) = doc.get("routes") {
        dash.routes = parse_routes(items)?;
    }
    if let Some(Json::Arr(items)) = doc.get("detectors") {
        dash.detectors = parse_detectors(items)?;
    }
    Ok(dash)
}

/// Fixed-width, locale-free float: one decimal place, `-` for NaN.
fn fmt1(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "-".to_string()
    }
}

/// Signed residual quantile: explicit `+` on non-negative values so
/// early/late reads at a glance.
fn fmt_signed(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v >= 0.0 {
        format!("+{v:.1}")
    } else {
        format!("{v:.1}")
    }
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

fn render_detectors(out: &mut String, detectors: &[Detector]) {
    out.push_str("== slo detectors ==\n");
    if detectors.is_empty() {
        out.push_str("  (none evaluated)\n");
        return;
    }
    for d in detectors {
        let state = if d.fired { "FIRED" } else { "ok" };
        out.push_str(&format!(
            "  {} {} short={} long={} thr={} events={}/{}",
            pad(&d.name, 22),
            pad(state, 5),
            fmt1(d.short_burn),
            fmt1(d.long_burn),
            fmt1(d.threshold),
            d.short_events,
            d.long_events,
        ));
        if !d.exemplar_trace_ids.is_empty() {
            let ids: Vec<String> = d
                .exemplar_trace_ids
                .iter()
                .map(|id| format!("{id:#x}"))
                .collect();
            out.push_str(&format!(" exemplars={}", ids.join(",")));
        }
        out.push('\n');
    }
}

fn render_routes(out: &mut String, routes: &[RouteQuality]) {
    out.push_str("== eta accuracy ==\n");
    if routes.is_empty() {
        out.push_str("  (no confirmed predictions yet)\n");
        return;
    }
    for r in routes {
        out.push_str(&format!("  route {}\n", r.route));
        for h in &r.horizons {
            out.push_str(&format!(
                "    {}s: n={} |e|={}s |e|p90={}s p50={}s p90={}s p99={}s recent(n={} p90={}s |e|p90={}s)\n",
                h.horizon_s as i64,
                h.confirmed_total,
                fmt1(h.mean_abs_error_s),
                fmt1(h.p90_abs_s),
                fmt_signed(h.p50_s),
                fmt_signed(h.p90_s),
                fmt_signed(h.p99_s),
                h.recent_confirmed,
                fmt_signed(h.recent_p90_s),
                fmt1(h.recent_p90_abs_s),
            ));
        }
    }
}

/// Counter deltas drawn as a per-series bar strip: each window scaled
/// against the series max. Deterministic — pure integer bucketing.
fn sparkline(deltas: &[u64]) -> String {
    const BARS: [char; 5] = ['.', '-', '=', '#', '@'];
    let max = deltas.iter().copied().max().unwrap_or(0);
    deltas
        .iter()
        .map(|&d| {
            if max == 0 {
                '.'
            } else {
                // Highest bar only at the max itself; zero is always '.'.
                let level = (d * (BARS.len() as u64 - 1)).div_ceil(max) as usize;
                BARS[level.min(BARS.len() - 1)]
            }
        })
        .collect()
}

fn render_series(out: &mut String, series: &[Series]) {
    out.push_str("== windowed series ==\n");
    if series.is_empty() {
        out.push_str("  (no tracked families)\n");
        return;
    }
    for s in series {
        let label = pad(&s.family, 34);
        match s.points.last() {
            None => out.push_str(&format!("  {label} (no windows yet)\n")),
            Some(Point {
                agg: PointAgg::Counter { .. },
                ..
            }) => {
                let deltas: Vec<u64> = s
                    .points
                    .iter()
                    .map(|p| match p.agg {
                        PointAgg::Counter { delta, .. } => delta,
                        _ => 0,
                    })
                    .collect();
                let total: u64 = deltas.iter().sum();
                out.push_str(&format!("  {label} [{}] sum={total}\n", sparkline(&deltas)));
            }
            Some(Point {
                agg: PointAgg::Gauge { value },
                ..
            }) => {
                out.push_str(&format!("  {label} last={value}\n"));
            }
            Some(Point {
                agg:
                    PointAgg::Histogram {
                        count,
                        p50,
                        p90,
                        p99,
                    },
                ..
            }) => {
                out.push_str(&format!(
                    "  {label} open(n={count} p50={p50} p90={p90} p99={p99})\n"
                ));
            }
        }
    }
}

/// Renders the dashboard as deterministic text.
///
/// Layout: a header line with the stamps, then the SLO detectors (fired
/// first is *not* applied — dump order is preserved so diffs are
/// stable), the per-route ETA tables, and a one-line-per-family series
/// digest.
pub fn render_dashboard(dash: &Dashboard) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wilocator quality dashboard  epoch={} as_of={}s evaluated_at={}s",
        dash.epoch,
        fmt1(dash.as_of_s),
        fmt1(dash.evaluated_at_s),
    ));
    if let Some(staleness) = dash.staleness_s {
        out.push_str(&format!(" staleness={}s", fmt1(staleness)));
    }
    out.push('\n');
    render_detectors(&mut out, &dash.detectors);
    render_routes(&mut out, &dash.routes);
    render_series(&mut out, &dash.series);
    out
}

/// Parses and renders in one step — the CLI's file mode.
///
/// # Errors
///
/// Propagates [`parse_dump`] errors.
pub fn render_text(text: &str) -> Result<String, String> {
    Ok(render_dashboard(&parse_dump(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{"epoch":3,"as_of_s":120.5,"evaluated_at_s":120,
        "staleness_s":0.25,
        "series":[
          {"family":"wilocator_reports_total","kind":"counter","points":[
            {"start_us":0,"delta":10,"rate_per_s":0.5},
            {"start_us":60000000,"delta":40,"rate_per_s":2.0}]},
          {"family":"wilocator_active_buses","kind":"gauge","points":[
            {"start_us":0,"value":-2}]},
          {"family":"wilocator_query_latency_us","kind":"histogram","points":[
            {"start_us":0,"count":7,"p50":10,"p90":31,"p99":31}]}],
        "routes":[
          {"route":"R0","horizons":[
            {"horizon_s":60,"confirmed_total":5,"mean_abs_error_s":3.5,
             "p50_s":1.0,"p90_s":4.0,"p99_s":-9.0,"p90_abs_s":9.0,
             "recent_confirmed":2,"recent_p90_s":4.0,"recent_p90_abs_s":4.0}]}],
        "detectors":[
          {"name":"dead_reckon_fraction","fired":true,"short_burn":1.5,
           "long_burn":1.2,"threshold":0.25,"short_events":30,"long_events":90,
           "exemplar_trace_ids":[255]},
          {"name":"snapshot_staleness","fired":false,"short_burn":0.1,
           "long_burn":0.1,"threshold":30,"short_events":0,"long_events":0,
           "exemplar_trace_ids":[]}]}"#;

    #[test]
    fn parses_all_sections() {
        let dash = parse_dump(MINIMAL).expect("valid dump");
        assert_eq!(dash.epoch, 3);
        assert_eq!(dash.staleness_s, Some(0.25));
        assert_eq!(dash.series.len(), 3);
        assert_eq!(dash.series[1].points[0].agg, PointAgg::Gauge { value: -2 });
        assert_eq!(dash.routes.len(), 1);
        assert_eq!(dash.routes[0].horizons[0].p99_s, -9.0);
        assert_eq!(dash.detectors.len(), 2);
        assert_eq!(dash.detectors[0].exemplar_trace_ids, vec![255]);
        assert_eq!(dash.fired(), vec!["dead_reckon_fraction"]);
    }

    #[test]
    fn partial_documents_parse_with_empty_sections() {
        let dash =
            parse_dump(r#"{"epoch":1,"as_of_s":0,"evaluated_at_s":0,"routes":[]}"#).expect("ok");
        assert!(dash.series.is_empty());
        assert!(dash.detectors.is_empty());
        assert_eq!(dash.staleness_s, None);
    }

    #[test]
    fn structural_problems_are_one_line_errors() {
        assert!(parse_dump("{").is_err());
        assert!(parse_dump(r#"{"as_of_s":0}"#)
            .unwrap_err()
            .contains("epoch"));
        let bad_kind = r#"{"epoch":1,"as_of_s":0,"evaluated_at_s":0,
            "series":[{"family":"f","kind":"exotic","points":[]}]}"#;
        assert!(parse_dump(bad_kind).unwrap_err().contains("exotic"));
        let unsorted = r#"{"epoch":1,"as_of_s":0,"evaluated_at_s":0,
            "series":[{"family":"f","kind":"counter","points":[
              {"start_us":5,"delta":0,"rate_per_s":0},
              {"start_us":5,"delta":0,"rate_per_s":0}]}]}"#;
        assert!(parse_dump(unsorted).unwrap_err().contains("increasing"));
        let bad_bool = r#"{"epoch":1,"as_of_s":0,"evaluated_at_s":0,
            "detectors":[{"name":"d","fired":1,"short_burn":0,"long_burn":0,
              "threshold":1,"short_events":0,"long_events":0,
              "exemplar_trace_ids":[]}]}"#;
        assert!(parse_dump(bad_bool).unwrap_err().contains("fired"));
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let dash = parse_dump(MINIMAL).expect("valid dump");
        let first = render_dashboard(&dash);
        assert_eq!(first, render_dashboard(&dash));
        assert!(first.starts_with(
            "wilocator quality dashboard  epoch=3 as_of=120.5s evaluated_at=120.0s staleness=0.2s\n"
        ));
        assert!(first.contains("dead_reckon_fraction"));
        assert!(first.contains("FIRED"));
        assert!(first.contains("exemplars=0xff"));
        assert!(first.contains("route R0"));
        assert!(
            first.contains("60s: n=5 |e|=3.5s |e|p90=9.0s p50=+1.0s p90=+4.0s p99=-9.0s"),
            "{first}"
        );
        assert!(first.contains("wilocator_reports_total"));
        assert!(first.contains("sum=50"));
        assert!(first.contains("last=-2"));
    }

    #[test]
    fn sparkline_scales_against_series_max() {
        assert_eq!(sparkline(&[0, 0]), "..");
        assert_eq!(sparkline(&[0, 1, 50, 100]), ".-=@");
        assert_eq!(sparkline(&[7]), "@");
    }
}

//! `wilocator-dash`: render the quality plane's `/debug` JSON as a
//! deterministic text dashboard.
//!
//! ```text
//! wilocator-dash <dump.json | -> [--check]
//! wilocator-dash --fetch HOST:PORT [--check]
//! ```
//!
//! File mode reads a combined dump (what `vancouver_day --debug-out`
//! writes), `-` reads it from stdin. Fetch mode pulls the three
//! `/debug` endpoints from a live server and merges them. `--check`
//! validates the document and prints a one-line summary instead of the
//! dashboard — CI pipes replay dumps through it as a schema gate.

use std::io::Read;
use std::process::ExitCode;

use wilocator_dash::{parse_dump, render_dashboard, Dashboard};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut fetch: Option<String> = None;
    let mut check = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--fetch" => match iter.next() {
                Some(addr) => fetch = Some(addr),
                None => return usage("--fetch takes HOST:PORT"),
            },
            "--help" | "-h" => return usage(""),
            _ if input.is_none() => input = Some(arg),
            _ => return usage("more than one input"),
        }
    }
    let dash = match (input, fetch) {
        (Some(_), Some(_)) => return usage("give a file or --fetch, not both"),
        (None, None) => return usage("no input"),
        (Some(path), None) => match read_input(&path).and_then(|text| parse_dump(&text)) {
            Ok(dash) => dash,
            Err(e) => {
                eprintln!("wilocator-dash: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(addr)) => match fetch_dashboard(&addr) {
            Ok(dash) => dash,
            Err(e) => {
                eprintln!("wilocator-dash: {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if check {
        let fired = dash.fired();
        let fired = if fired.is_empty() {
            "none fired".to_string()
        } else {
            format!("fired: {}", fired.join(","))
        };
        println!(
            "wilocator-dash: ok — epoch {}, {} series, {} routes, {} detectors ({fired})",
            dash.epoch,
            dash.series.len(),
            dash.routes.len(),
            dash.detectors.len(),
        );
    } else {
        print!("{}", render_dashboard(&dash));
    }
    ExitCode::SUCCESS
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        return Ok(text);
    }
    std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))
}

/// One `Connection: close` HTTP exchange; returns the response body.
fn http_get(addr: &str, target: &str) -> Result<String, String> {
    use std::io::Write;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: wilocator\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("GET {target}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("GET {target}: {e}"))?;
    let raw = String::from_utf8(raw).map_err(|_| format!("GET {target}: non-UTF-8 response"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("GET {target}: malformed response"))?;
    let status = head.split(' ').nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("GET {target}: HTTP {status}: {body}"));
    }
    Ok(body.to_string())
}

/// Pulls `/debug/slo`, `/debug/quality` and `/debug/timeseries` and
/// merges them: stamps from the SLO body (it carries staleness too),
/// sections from their own bodies.
fn fetch_dashboard(addr: &str) -> Result<Dashboard, String> {
    let mut dash = parse_dump(&http_get(addr, "/debug/slo")?)?;
    dash.routes = parse_dump(&http_get(addr, "/debug/quality")?)?.routes;
    dash.series = parse_dump(&http_get(addr, "/debug/timeseries")?)?.series;
    Ok(dash)
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("wilocator-dash: {problem}");
    }
    eprintln!("usage: wilocator-dash <dump.json | -> [--check]");
    eprintln!("       wilocator-dash --fetch HOST:PORT [--check]");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

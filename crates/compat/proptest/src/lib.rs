//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of proptest its property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, `x in strategy`
//! bindings, [`prop_assert!`] / [`prop_assert_eq!`], range and tuple
//! strategies, `prop_map` / `prop_filter` / `prop_filter_map` /
//! `prop_flat_map` combinators, [`collection::vec`] /
//! [`collection::hash_set`], [`Just`], and `any::<T>()`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case seed
//!   instead of a minimised input. Cases are reproducible: the per-case
//!   RNG is derived from the test name and case index only.
//! * **Generation-level rejection.** `prop_filter`-style rejection retries
//!   generation inline (up to a bound) instead of discarding whole cases.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0.0..1e6, b in 0.0..1e6f64) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __rng,
                        );
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

//! Case execution: deterministic per-case RNG and the run loop.

/// Per-test configuration. Named `ProptestConfig` in the prelude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Retry bound for generation-level rejection (`prop_filter` and
    /// friends) before the test errors out.
    pub max_rejects: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_rejects: 4_096,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Convenience alias matching real proptest.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case generator (xoshiro256++ seeded by SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
    rejects_left: u32,
}

impl TestRng {
    /// A generator for one case, derived from the test name and case
    /// index — stable across runs and platforms.
    pub fn for_case(test_name: &str, case: u32, max_rejects: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
            rejects_left: max_rejects,
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Books one generation-level rejection.
    ///
    /// # Panics
    ///
    /// Panics when the rejection budget is exhausted — a filter that
    /// rejects this often needs a tighter generator.
    pub fn count_reject(&mut self, whence: &str) {
        assert!(
            self.rejects_left > 0,
            "too many generation rejections ({whence}); tighten the strategy"
        );
        self.rejects_left -= 1;
    }
}

/// Runs `cases` deterministic cases of `f`, panicking (with the case
/// index, so the failure is reproducible) on the first failure.
pub fn run_cases(
    config: &Config,
    test_name: &str,
    mut f: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case, config.max_rejects);
        match f(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_rejects,
                    "{test_name}: too many whole-case rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {case}/{} failed:\n{msg}", config.cases);
            }
        }
    }
}

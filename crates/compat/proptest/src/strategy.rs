//! Value-generation strategies and combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `accept`, retrying generation otherwise.
    fn prop_filter<F>(self, whence: &'static str, accept: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            accept,
        }
    }

    /// Maps through a partial function, retrying generation on `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    accept: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        loop {
            let v = self.inner.generate(rng);
            if (self.accept)(&v) {
                return v;
            }
            rng.count_reject(self.whence);
        }
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        loop {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
            rng.count_reject(self.whence);
        }
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain generator for `T`.
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy(PhantomData)
    }
}

/// The whole-domain strategy of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

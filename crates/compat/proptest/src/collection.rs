//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size arguments: an exact `usize`, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            return self.lo;
        }
        let span = (self.hi - self.lo + 1) as u64;
        self.lo + (((rng.next_u64() as u128 * span as u128) >> 64) as usize)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `HashSet`s of `size.pick()` *attempted* insertions — like
/// real proptest, duplicate draws may leave the set below the lower
/// bound only when the element domain is too small to satisfy it.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        // Bounded top-up: try to reach the drawn size, tolerating
        // duplicate draws from small domains.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(16) + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms and runs, which the
//! simulator's seeded reproducibility tests rely on. Stream values differ
//! from the real `rand 0.8` StdRng (ChaCha12); nothing in the repo depends
//! on the exact stream, only on determinism.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce with a standard distribution
/// (uniform over the type's range; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // The closed upper end has probability ~2^-53: treat as half-open
        // with a width nudge, which every caller here tolerates.
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain approach is avoided.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(hi as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// User-facing generator interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
            let y = rng.gen_range(10u32..20);
            assert!((10..20).contains(&y));
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn take<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = take(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}

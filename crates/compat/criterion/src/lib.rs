//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface the workspace benches use — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! calibrated wall-clock loop (warm-up, then enough iterations to fill
//! the measurement window) reporting mean time per iteration; there is no
//! statistical analysis, plotting, or saved baselines.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// Re-export point used by benches: an optimisation barrier.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: small batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness handle.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1_500),
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for compatibility; sampling is time-based here.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        body(&mut b);
        match b.report {
            Some(r) => {
                println!(
                    "{name:<40} time: {:>12} /iter  ({} iters)",
                    format_duration(r.mean),
                    r.iters
                );
            }
            None => println!("{name:<40} (no measurement recorded)"),
        }
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean: Duration,
    iters: u64,
}

/// Passed to the benchmark body; runs the timing loops.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: count iterations that fit the window.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = ((self.measurement.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let total = start.elapsed();
        self.report = Some(Report {
            mean: total.div_f64(target as f64),
            iters: target,
        });
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (warm_spent.as_secs_f64() / warm_iters as f64).max(1e-9);
        let target = ((self.measurement.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut spent = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
        }
        self.report = Some(Report {
            mean: spent.div_f64(target as f64),
            iters: target,
        });
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions as one runnable function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_mean() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}

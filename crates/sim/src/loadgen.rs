//! Deterministic ingestion load generation.
//!
//! Flattens a simulated [`Dataset`](crate::Dataset) into a time-ordered
//! stream of per-trip scan events and partitions it into *lanes* — per
//! thread queues that preserve the relative order of every trip's events.
//! The server's determinism guarantee is per bus ("same reports for a bus
//! in the same order → same fixes and records"), so any lane assignment
//! that keeps a trip's events on one lane replays to identical state
//! regardless of thread interleaving. That is exactly what the
//! concurrency tests in `wilocator-core` assert.

use wilocator_obs::{metric_key, MetricsSnapshot};
use wilocator_rf::Scan;
use wilocator_road::{RouteId, StopId};

use crate::trace::Dataset;

/// One ingestible event: a trip's scan bundle with its identity attached.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEvent {
    /// The trip the scans came from (doubles as the bus key).
    pub trip_id: usize,
    /// The trip's route.
    pub route: RouteId,
    /// Scan time, absolute seconds.
    pub time_s: f64,
    /// Ground-truth arc length at scan time (evaluation only).
    pub true_s: f64,
    /// One scan per device on the bus.
    pub scans: Vec<Scan>,
}

/// A replayable ingestion plan: every scan event of the selected trips in
/// global time order (ties broken by trip id, so plans are deterministic).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadPlan {
    /// All events, time-ordered.
    pub events: Vec<LoadEvent>,
}

impl LoadPlan {
    /// Builds the plan for one service day of a dataset.
    pub fn for_day(dataset: &Dataset, day: u32) -> Self {
        Self::from_trips(dataset, |t| t.day == day)
    }

    /// Builds the plan for every trip accepted by `keep`.
    pub fn from_trips(
        dataset: &Dataset,
        mut keep: impl FnMut(&crate::trace::TripTrace) -> bool,
    ) -> Self {
        let mut events = Vec::new();
        for trip in dataset.trips.iter().filter(|t| keep(t)) {
            for bundle in &trip.bundles {
                events.push(LoadEvent {
                    trip_id: trip.trip_id,
                    route: trip.route,
                    time_s: bundle.time_s,
                    true_s: bundle.true_s,
                    scans: bundle.scans.clone(),
                });
            }
        }
        events.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("finite scan times")
                .then(a.trip_id.cmp(&b.trip_id))
        });
        LoadPlan { events }
    }

    /// The distinct trips of the plan, ascending.
    pub fn trip_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.events.iter().map(|e| e.trip_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The route of each trip in the plan.
    pub fn trip_routes(&self) -> Vec<(usize, RouteId)> {
        let mut pairs: Vec<(usize, RouteId)> =
            self.events.iter().map(|e| (e.trip_id, e.route)).collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        pairs.dedup();
        pairs
    }

    /// The plan summarised as a metrics snapshot, in the same counter
    /// families the server's observability layer uses: per-route
    /// `loadgen_events_total{route="<id>"}` and
    /// `loadgen_trips_total{route="<id>"}`. The family totals therefore
    /// state the offered load — what the server's `wilocator_reports_total`
    /// should account for after a full replay.
    pub fn stats(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for e in &self.events {
            let labels = format!("route=\"{}\"", e.route.0);
            out.add_counter(metric_key("loadgen_events_total", &labels), 1);
        }
        for (_, route) in self.trip_routes() {
            let labels = format!("route=\"{}\"", route.0);
            out.add_counter(metric_key("loadgen_trips_total", &labels), 1);
        }
        out
    }

    /// Partitions event indices into `n` lanes by `trip_id % n`. Every
    /// trip's events land on one lane in their original relative order,
    /// so replaying lanes from independent threads preserves each bus's
    /// report order — the invariant the server's determinism rests on.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn lanes(&self, n: usize) -> Vec<Vec<usize>> {
        assert!(n > 0, "at least one lane");
        let mut lanes = vec![Vec::new(); n];
        for (i, e) in self.events.iter().enumerate() {
            lanes[e.trip_id % n].push(i);
        }
        lanes
    }
}

/// One rider-side query against the front end.
///
/// Mirrors the three data endpoints of `wilocator-serve`; every variant
/// renders to the HTTP target it would be issued as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// "When does my bus get here?" — the dominant rider question.
    Arrivals {
        /// Route the rider filters on.
        route: RouteId,
        /// The rider's stop.
        stop: StopId,
    },
    /// "Where is this bus right now?"
    Position {
        /// The bus key (trip id in replays).
        bus: u64,
    },
    /// "How bad is traffic on my line?"
    Traffic {
        /// The route asked about.
        route: RouteId,
    },
}

impl QueryOp {
    /// The HTTP request target this query issues.
    pub fn target(&self) -> String {
        match *self {
            QueryOp::Arrivals { route, stop } => {
                format!("/arrivals/{}?route={}", stop.0, route.0)
            }
            QueryOp::Position { bus } => format!("/position/{bus}"),
            QueryOp::Traffic { route } => format!("/traffic/{}", route.0),
        }
    }
}

/// Deterministic rider-side query load derived from an ingestion plan.
///
/// Real deployments are read-dominated — the paper's rider app asks for
/// arrivals far more often than buses report scans — so the generator
/// defaults to a ~1000:1 query:ingest ratio with a 70/20/10
/// arrivals/position/traffic mix. Queries are *addressable*, not
/// materialised: [`RiderLoad::op`] is a pure function of the index, so
/// any number of reader threads can walk disjoint index ranges without
/// sharing state — exactly what the `query_scaling` bench does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiderLoad {
    buses: Vec<u64>,
    arrival_targets: Vec<(RouteId, StopId)>,
    traffic_routes: Vec<RouteId>,
    queries: u64,
    seed: u64,
}

/// The default rider-to-ingest query ratio.
pub const DEFAULT_QUERY_RATIO: u64 = 1_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RiderLoad {
    /// Builds the query load riding on `plan`: `ratio` queries per
    /// ingest event, addressed at the plan's buses and the stops of
    /// `routes`. Fully deterministic in `seed`.
    pub fn new(plan: &LoadPlan, routes: &[wilocator_road::Route], ratio: u64, seed: u64) -> Self {
        let buses: Vec<u64> = plan.trip_ids().iter().map(|&id| id as u64).collect();
        let mut arrival_targets = Vec::new();
        let mut traffic_routes = Vec::new();
        for route in routes {
            traffic_routes.push(route.id());
            for stop in route.stops() {
                arrival_targets.push((route.id(), stop.id()));
            }
        }
        let addressable =
            !arrival_targets.is_empty() || !buses.is_empty() || !traffic_routes.is_empty();
        RiderLoad {
            buses,
            arrival_targets,
            traffic_routes,
            queries: if addressable {
                (plan.events.len() as u64).saturating_mul(ratio)
            } else {
                0
            },
            seed,
        }
    }

    /// Total queries in the load.
    pub fn len(&self) -> u64 {
        self.queries
    }

    /// True when the load holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries == 0
    }

    /// The `i`-th query (`i < len()`), as a pure function of the index:
    /// ~70% arrivals, ~20% position, ~10% traffic, degrading to
    /// whichever kinds are addressable in the scene.
    pub fn op(&self, i: u64) -> QueryOp {
        let r = splitmix64(self.seed ^ i.wrapping_mul(0xA24B_AED4_963E_E407));
        let kind = r % 10;
        let pick = r >> 8;
        // Preference order per kind, falling back to any addressable
        // target so `op` is total whenever the load is non-empty.
        let arrivals = |pick: u64| {
            self.arrival_targets
                .get((pick % self.arrival_targets.len().max(1) as u64) as usize)
                .map(|&(route, stop)| QueryOp::Arrivals { route, stop })
        };
        let position = |pick: u64| {
            self.buses
                .get((pick % self.buses.len().max(1) as u64) as usize)
                .map(|&bus| QueryOp::Position { bus })
        };
        let traffic = |pick: u64| {
            self.traffic_routes
                .get((pick % self.traffic_routes.len().max(1) as u64) as usize)
                .map(|&route| QueryOp::Traffic { route })
        };
        let preferred = match kind {
            0..=6 => [arrivals(pick), position(pick), traffic(pick)],
            7 | 8 => [position(pick), arrivals(pick), traffic(pick)],
            _ => [traffic(pick), arrivals(pick), position(pick)],
        };
        preferred
            .into_iter()
            .flatten()
            .next()
            .expect("op called on an empty rider load")
    }

    /// All queries in index order.
    pub fn iter(&self) -> impl Iterator<Item = QueryOp> + '_ {
        (0..self.queries).map(|i| self.op(i))
    }

    /// The load summarised in loadgen counter families:
    /// `loadgen_queries_total{endpoint="..."}`.
    pub fn stats(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for op in self.iter() {
            let endpoint = match op {
                QueryOp::Arrivals { .. } => "arrivals",
                QueryOp::Position { .. } => "position",
                QueryOp::Traffic { .. } => "traffic",
            };
            out.add_counter(
                metric_key("loadgen_queries_total", &format!("endpoint=\"{endpoint}\"")),
                1,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{simple_street, CityConfig};
    use crate::trace::{simulate, SimulationConfig};
    use crate::traffic::{TrafficConfig, TrafficModel};
    use wilocator_road::Schedule;

    fn tiny_dataset(days: u32) -> Dataset {
        let city = simple_street(1_200.0, 4, 1, &CityConfig::default());
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 1);
        let mut sched = Schedule::new();
        sched.add_headway_service(RouteId(0), 8.0 * 3_600.0, 10.0 * 3_600.0, 1_800.0);
        let config = SimulationConfig {
            days,
            ..SimulationConfig::default()
        };
        simulate(&city, &sched, &traffic, &config)
    }

    #[test]
    fn plan_is_time_ordered_and_complete() {
        let ds = tiny_dataset(2);
        let plan = LoadPlan::for_day(&ds, 0);
        let day0_bundles: usize = ds.trips_on_day(0).map(|t| t.bundles.len()).sum();
        assert_eq!(plan.events.len(), day0_bundles);
        for w in plan.events.windows(2) {
            assert!(
                w[1].time_s > w[0].time_s
                    || (w[1].time_s == w[0].time_s && w[1].trip_id > w[0].trip_id)
            );
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = LoadPlan::for_day(&tiny_dataset(1), 0);
        let b = LoadPlan::for_day(&tiny_dataset(1), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn lanes_partition_and_preserve_trip_order() {
        let plan = LoadPlan::for_day(&tiny_dataset(1), 0);
        for n in [1usize, 2, 3, 7] {
            let lanes = plan.lanes(n);
            assert_eq!(lanes.len(), n);
            let mut all: Vec<usize> = lanes.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..plan.events.len()).collect::<Vec<_>>());
            for lane in &lanes {
                // Indices ascending within a lane ⇒ original relative
                // order (and so per-trip order) is preserved.
                for w in lane.windows(2) {
                    assert!(w[1] > w[0]);
                }
            }
        }
    }

    #[test]
    fn trip_ids_and_routes_cover_the_day() {
        let ds = tiny_dataset(1);
        let plan = LoadPlan::for_day(&ds, 0);
        let ids = plan.trip_ids();
        assert_eq!(ids.len(), ds.trips_on_day(0).count());
        let routes = plan.trip_routes();
        assert_eq!(routes.len(), ids.len());
        assert!(routes.iter().all(|&(_, r)| r == RouteId(0)));
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn zero_lanes_rejected() {
        LoadPlan::default().lanes(0);
    }

    #[test]
    fn rider_load_is_deterministic_and_mixed() {
        let ds = tiny_dataset(1);
        let city = simple_street(1_200.0, 4, 1, &CityConfig::default());
        let plan = LoadPlan::for_day(&ds, 0);
        let load = RiderLoad::new(&plan, &city.routes, 3, 7);
        assert_eq!(load.len(), plan.events.len() as u64 * 3);
        let again = RiderLoad::new(&plan, &city.routes, 3, 7);
        assert_eq!(
            load.iter().collect::<Vec<_>>(),
            again.iter().collect::<Vec<_>>()
        );
        // The mix leans heavily towards arrivals, with every kind present.
        let stats = load.stats();
        let arrivals = stats.counter("loadgen_queries_total{endpoint=\"arrivals\"}");
        let position = stats.counter("loadgen_queries_total{endpoint=\"position\"}");
        let traffic = stats.counter("loadgen_queries_total{endpoint=\"traffic\"}");
        assert_eq!(arrivals + position + traffic, load.len());
        assert!(arrivals > position && position > traffic && traffic > 0);
        // Every query addresses something that exists in the scene.
        for op in load.iter().take(200) {
            match op {
                QueryOp::Arrivals { route, stop } => {
                    let r = city.routes.iter().find(|r| r.id() == route).expect("route");
                    assert!(r.stops().iter().any(|s| s.id() == stop));
                }
                QueryOp::Position { bus } => {
                    assert!(plan.trip_ids().contains(&(bus as usize)));
                }
                QueryOp::Traffic { route } => {
                    assert!(city.routes.iter().any(|r| r.id() == route));
                }
            }
        }
    }

    #[test]
    fn rider_load_targets_render_as_http_paths() {
        assert_eq!(
            QueryOp::Arrivals {
                route: RouteId(2),
                stop: StopId(5)
            }
            .target(),
            "/arrivals/5?route=2"
        );
        assert_eq!(QueryOp::Position { bus: 9 }.target(), "/position/9");
        assert_eq!(
            QueryOp::Traffic { route: RouteId(0) }.target(),
            "/traffic/0"
        );
    }

    #[test]
    fn rider_load_on_empty_plan_is_empty() {
        let load = RiderLoad::new(&LoadPlan::default(), &[], 1_000, 1);
        assert!(load.is_empty());
        assert_eq!(load.iter().count(), 0);
        assert!(load.stats().counters().is_empty());
    }

    #[test]
    fn stats_state_the_offered_load() {
        let ds = tiny_dataset(1);
        let plan = LoadPlan::for_day(&ds, 0);
        let stats = plan.stats();
        assert_eq!(
            stats.counter_family_total("loadgen_events_total") as usize,
            plan.events.len()
        );
        assert_eq!(
            stats.counter_family_total("loadgen_trips_total") as usize,
            plan.trip_ids().len()
        );
        // Single-route city: everything lands on route 0's label.
        assert_eq!(
            stats.counter("loadgen_events_total{route=\"0\"}") as usize,
            plan.events.len()
        );
        // Empty plans snapshot to nothing rather than zero-valued keys.
        assert!(LoadPlan::default().stats().counters().is_empty());
    }
}

//! Multi-day trace generation: the substitute for the paper's "real data
//! of 3-week period".

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator_road::{RouteId, Schedule};

use crate::bus::{simulate_trip, BusConfig};
use crate::city::City;
use crate::sensing::{sense_trip, ScanBundle, SensingConfig};
use crate::traffic::{TrafficModel, DAY_S};
use crate::trajectory::Trajectory;

/// Everything recorded about one simulated trip.
#[derive(Debug, Clone, PartialEq)]
pub struct TripTrace {
    /// Sequential trip identifier within the dataset.
    pub trip_id: usize,
    /// The route served.
    pub route: RouteId,
    /// Day index (0-based).
    pub day: u32,
    /// Absolute departure time, seconds.
    pub departure_s: f64,
    /// Ground-truth motion (evaluation only; invisible to the server).
    pub trajectory: Trajectory,
    /// The rider scan reports the server actually receives.
    pub bundles: Vec<ScanBundle>,
}

/// A multi-day crowd-sensing dataset over a city.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// All trips, ordered by departure time.
    pub trips: Vec<TripTrace>,
}

impl Dataset {
    /// Trips of one route, in departure order.
    pub fn trips_of(&self, route: RouteId) -> impl Iterator<Item = &TripTrace> {
        self.trips.iter().filter(move |t| t.route == route)
    }

    /// Trips departing on a given day.
    pub fn trips_on_day(&self, day: u32) -> impl Iterator<Item = &TripTrace> {
        self.trips.iter().filter(move |t| t.day == day)
    }

    /// Total number of scan bundles across all trips.
    pub fn bundle_count(&self) -> usize {
        self.trips.iter().map(|t| t.bundles.len()).sum()
    }
}

/// Configuration of a dataset generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of service days to simulate (the paper collected 3 weeks).
    pub days: u32,
    /// Bus kinematics.
    pub bus: BusConfig,
    /// Rider sensing.
    pub sensing: SensingConfig,
    /// Master seed: every stochastic choice derives from it.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            days: 21,
            bus: BusConfig::default(),
            sensing: SensingConfig::default(),
            seed: 0x110CA702,
        }
    }
}

/// Builds a daily schedule for every route of `city`: service from 06:00 to
/// 22:00 with the given headway (seconds) per route.
pub fn daily_schedule(city: &City, headway_s: &[(RouteId, f64)]) -> Schedule {
    let mut sched = Schedule::new();
    for &(route, headway) in headway_s {
        if city.route(route).is_some() {
            sched.add_headway_service(route, 6.0 * 3_600.0, 22.0 * 3_600.0, headway);
        }
    }
    sched
}

/// Simulates `config.days` days of the schedule, producing the full
/// crowd-sensing dataset.
///
/// Each trip gets its own deterministic RNG stream derived from the master
/// seed, so datasets are reproducible and trips are independent.
pub fn simulate(
    city: &City,
    schedule: &Schedule,
    traffic: &TrafficModel,
    config: &SimulationConfig,
) -> Dataset {
    let ap_index = city.ap_index();
    let mut trips = Vec::new();
    let mut trip_id = 0usize;
    for day in 0..config.days {
        for trip in schedule.trips() {
            let departure = day as f64 * DAY_S + trip.departure_s;
            let route_index = city
                .routes
                .iter()
                .position(|r| r.id() == trip.route)
                .expect("schedule references known routes");
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (trip_id as u64).wrapping_mul(0x9E37_79B9));
            let trajectory = simulate_trip(
                &city.routes[route_index],
                traffic,
                departure,
                &config.bus,
                &mut rng,
            );
            let bundles = sense_trip(
                city,
                &trajectory,
                route_index,
                &config.sensing,
                &ap_index,
                &mut rng,
            );
            trips.push(TripTrace {
                trip_id,
                route: trip.route,
                day,
                departure_s: departure,
                trajectory,
                bundles,
            });
            trip_id += 1;
        }
    }
    trips.sort_by(|a, b| a.departure_s.partial_cmp(&b.departure_s).expect("finite"));
    Dataset { trips }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{simple_street, CityConfig};
    use crate::traffic::TrafficConfig;

    fn tiny_dataset(days: u32) -> (City, Dataset) {
        let city = simple_street(1_200.0, 4, 1, &CityConfig::default());
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 1);
        let mut sched = Schedule::new();
        sched.add_headway_service(RouteId(0), 8.0 * 3_600.0, 10.0 * 3_600.0, 1_800.0);
        let config = SimulationConfig {
            days,
            ..SimulationConfig::default()
        };
        let ds = simulate(&city, &sched, &traffic, &config);
        (city, ds)
    }

    #[test]
    fn trip_counts_match_schedule() {
        let (_, ds) = tiny_dataset(2);
        // 5 departures per day × 2 days.
        assert_eq!(ds.trips.len(), 10);
        assert_eq!(ds.trips_on_day(0).count(), 5);
        assert_eq!(ds.trips_of(RouteId(0)).count(), 10);
    }

    #[test]
    fn trips_sorted_by_departure() {
        let (_, ds) = tiny_dataset(2);
        for w in ds.trips.windows(2) {
            assert!(w[1].departure_s >= w[0].departure_s);
        }
    }

    #[test]
    fn day_offsets_applied() {
        let (_, ds) = tiny_dataset(2);
        let day1 = ds.trips_on_day(1).next().unwrap();
        assert!(day1.departure_s >= DAY_S);
        assert_eq!(day1.trajectory.start_time(), day1.departure_s);
    }

    #[test]
    fn bundles_generated_for_every_trip() {
        let (_, ds) = tiny_dataset(1);
        assert!(ds.trips.iter().all(|t| !t.bundles.is_empty()));
        assert!(ds.bundle_count() > ds.trips.len() * 5);
    }

    #[test]
    fn dataset_reproducible() {
        let (_, a) = tiny_dataset(1);
        let (_, b) = tiny_dataset(1);
        assert_eq!(a, b);
    }

    #[test]
    fn daily_schedule_builder_covers_routes() {
        let city = simple_street(1_200.0, 3, 2, &CityConfig::default());
        let sched = daily_schedule(&city, &[(RouteId(0), 600.0), (RouteId(9), 600.0)]);
        // Unknown route 9 is skipped; route 0 gets 06:00–22:00 service.
        assert!(sched.trips_for(RouteId(0)).count() > 90);
        assert_eq!(sched.trips_for(RouteId(9)).count(), 0);
    }
}

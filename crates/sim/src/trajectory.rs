//! Ground-truth bus trajectories: piecewise-linear motion along a route.
//!
//! The simulator represents a trip as monotone breakpoints `(t, s)` —
//! time versus arc length along the route. Between breakpoints the bus
//! moves at constant speed; dwell at a stop or a red light is a flat
//! segment. Both directions of lookup are needed: `s_at(t)` to place scans,
//! `time_at_s(s)` to extract ground-truth segment crossing times.

/// A monotone piecewise-linear trajectory `s(t)` along a route.
///
/// # Examples
///
/// ```
/// use wilocator_sim::Trajectory;
/// let mut tr = Trajectory::new(0.0, 0.0);
/// tr.push(10.0, 100.0); // 10 m/s for 10 s
/// tr.push(20.0, 100.0); // dwell
/// tr.push(30.0, 250.0); // 15 m/s
/// assert_eq!(tr.s_at(5.0), 50.0);
/// assert_eq!(tr.s_at(15.0), 100.0);
/// assert_eq!(tr.time_at_s(175.0), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Breakpoints, strictly increasing in `t`, non-decreasing in `s`.
    points: Vec<(f64, f64)>,
}

impl Trajectory {
    /// Starts a trajectory at time `t0`, arc length `s0`.
    pub fn new(t0: f64, s0: f64) -> Self {
        Trajectory {
            points: vec![(t0, s0)],
        }
    }

    /// Appends a breakpoint.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not increase or `s` decreases (buses do not move
    /// backwards along their route).
    pub fn push(&mut self, t: f64, s: f64) {
        let &(lt, ls) = self.points.last().expect("non-empty");
        assert!(t >= lt, "time must be non-decreasing ({t} < {lt})");
        assert!(s >= ls - 1e-9, "arc length must be non-decreasing");
        if t == lt {
            // Replace a zero-duration segment.
            if s > ls {
                self.points.pop();
                self.points.push((t, s));
            }
            return;
        }
        self.points.push((t, s));
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Departure time.
    pub fn start_time(&self) -> f64 {
        self.points[0].0
    }

    /// Time of the last breakpoint (trip end).
    pub fn end_time(&self) -> f64 {
        self.points.last().unwrap().0
    }

    /// Arc length at the end of the trip.
    pub fn end_s(&self) -> f64 {
        self.points.last().unwrap().1
    }

    /// Arc length at time `t` (clamped to the trip's time range).
    pub fn s_at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = match pts.binary_search_by(|&(pt, _)| pt.partial_cmp(&t).expect("finite")) {
            Ok(i) => return pts[i].1,
            Err(i) => i - 1,
        };
        let (t0, s0) = pts[i];
        let (t1, s1) = pts[i + 1];
        s0 + (s1 - s0) * (t - t0) / (t1 - t0)
    }

    /// First time at which the bus reaches arc length `s` (clamped to the
    /// trip's range). Flat (dwell) segments resolve to their start.
    pub fn time_at_s(&self, s: f64) -> f64 {
        let pts = &self.points;
        if s <= pts[0].1 {
            return pts[0].0;
        }
        if s >= pts[pts.len() - 1].1 {
            return pts[pts.len() - 1].0;
        }
        // Find the first breakpoint with s_i >= s.
        let mut lo = 0usize;
        let mut hi = pts.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pts[mid].1 < s {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let (t1, s1) = pts[lo];
        if s1 == s {
            // Prefer the earliest time at exactly s (start of a dwell).
            let mut i = lo;
            while i > 0 && pts[i - 1].1 == s {
                i -= 1;
            }
            return pts[i].0;
        }
        let (t0, s0) = pts[lo - 1];
        t0 + (t1 - t0) * (s - s0) / (s1 - s0)
    }

    /// Mean speed over the whole trip, m/s (0 for an empty trip).
    pub fn mean_speed(&self) -> f64 {
        let dt = self.end_time() - self.start_time();
        if dt <= 0.0 {
            return 0.0;
        }
        (self.end_s() - self.points[0].1) / dt
    }

    /// Samples `(t, s)` every `period` seconds over the trip (plus the end).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    pub fn sample(&self, period: f64) -> Vec<(f64, f64)> {
        assert!(period > 0.0, "sample period must be positive");
        let mut out = Vec::new();
        let mut t = self.start_time();
        while t < self.end_time() {
            out.push((t, self.s_at(t)));
            t += period;
        }
        out.push((self.end_time(), self.end_s()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        let mut tr = Trajectory::new(100.0, 0.0);
        tr.push(110.0, 100.0);
        tr.push(130.0, 100.0); // 20 s dwell
        tr.push(140.0, 250.0);
        tr
    }

    #[test]
    fn interpolation_and_clamping() {
        let tr = traj();
        assert_eq!(tr.s_at(100.0), 0.0);
        assert_eq!(tr.s_at(105.0), 50.0);
        assert_eq!(tr.s_at(120.0), 100.0);
        assert_eq!(tr.s_at(135.0), 175.0);
        assert_eq!(tr.s_at(0.0), 0.0); // clamp before
        assert_eq!(tr.s_at(1e9), 250.0); // clamp after
    }

    #[test]
    fn inverse_lookup() {
        let tr = traj();
        assert_eq!(tr.time_at_s(50.0), 105.0);
        assert_eq!(tr.time_at_s(175.0), 135.0);
        // Dwell: the first arrival time at s = 100 is t = 110.
        assert_eq!(tr.time_at_s(100.0), 110.0);
        assert_eq!(tr.time_at_s(-5.0), 100.0);
        assert_eq!(tr.time_at_s(1e9), 140.0);
    }

    #[test]
    fn roundtrip_on_moving_segments() {
        let tr = traj();
        for s in [10.0, 60.0, 99.0, 120.0, 249.0] {
            let t = tr.time_at_s(s);
            assert!((tr.s_at(t) - s).abs() < 1e-9, "s = {s}");
        }
    }

    #[test]
    fn mean_speed() {
        let tr = traj();
        assert!((tr.mean_speed() - 250.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_includes_endpoints() {
        let tr = traj();
        let samples = tr.sample(10.0);
        assert_eq!(samples.first().unwrap().0, 100.0);
        assert_eq!(samples.last().unwrap().0, 140.0);
        assert_eq!(samples.len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_reversal() {
        let mut tr = Trajectory::new(10.0, 0.0);
        tr.push(5.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "arc length")]
    fn rejects_backward_motion() {
        let mut tr = Trajectory::new(0.0, 100.0);
        tr.push(10.0, 50.0);
    }

    #[test]
    fn equal_time_push_upgrades_s() {
        let mut tr = Trajectory::new(0.0, 0.0);
        tr.push(10.0, 50.0);
        tr.push(10.0, 60.0);
        assert_eq!(tr.s_at(10.0), 60.0);
        assert_eq!(tr.points().len(), 2);
    }
}

//! Synthetic city generation.
//!
//! The paper evaluates on four Metro-Vancouver routes (Table I) that share
//! a main-street arterial (W Broadway, Fig. 7). [`vancouver_like`] rebuilds
//! that topology with the paper's exact stop counts, route lengths and
//! overlap structure; [`campus`] rebuilds the single-road-segment campus
//! scene of Table II / Fig. 10; [`simple_street`] is a small scene for
//! tests and examples.
//!
//! | Route | Stops | Length | Overlap |
//! |-------|-------|--------|---------|
//! | Rapid Line | 19 | 13.7 km | 13.0 km |
//! | 9 | 65 | 16.3 km | 13.0 km |
//! | 14 | 74 | 20.6 km | 16.2 km |
//! | 16 | 91 | 18.3 km | 9.5 km |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wilocator_geo::{BoundingBox, GridIndex, Point};
use wilocator_rf::SignalField;
use wilocator_rf::{
    AccessPoint, ApId, HomogeneousField, LogDistance, PhysicalField, ShadowingField,
};
use wilocator_road::{EdgeId, NetworkBuilder, NodeId, RoadNetwork, Route, RouteId};

/// Access-point deployment and channel parameters for a generated city.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityConfig {
    /// Mean AP spacing along roads, metres (the paper observes "at least
    /// three geo-tagged APs … along each road segment of the main
    /// streets").
    pub ap_spacing_m: f64,
    /// Lateral AP offset from the road centreline, metres (storefronts).
    pub ap_lateral_m: f64,
    /// Uniform range of true transmit powers, dBm (heterogeneity the
    /// server's homogeneous assumption must absorb).
    pub ap_tx_dbm: (f64, f64),
    /// Fraction of APs without geo-tags (ignored by the server, §V-A).
    pub untagged_fraction: f64,
    /// Shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
    /// Shadowing decorrelation distance, metres.
    pub shadowing_correlation_m: f64,
    /// Intersection spacing on generated streets, metres.
    pub node_spacing_m: f64,
    /// Cell-tower grid spacing, metres (the paper: "the coverage of a cell
    /// tower can reach 800 m around").
    pub tower_spacing_m: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            ap_spacing_m: 55.0,
            ap_lateral_m: 18.0,
            ap_tx_dbm: (16.0, 22.0),
            untagged_fraction: 0.08,
            shadowing_sigma_db: 5.0,
            shadowing_correlation_m: 60.0,
            node_spacing_m: 250.0,
            tower_spacing_m: 800.0,
        }
    }
}

/// A generated urban scene: roads, routes, radio environment.
#[derive(Debug, Clone)]
pub struct City {
    /// The road network.
    pub network: RoadNetwork,
    /// Bus routes with stops.
    pub routes: Vec<Route>,
    /// Ground-truth signal field (heterogeneous TX + shadowing).
    pub field: PhysicalField,
    /// The server's assumed field (geo-tags + homogeneous propagation).
    pub server_field: HomogeneousField,
    /// Cell-tower positions (for the Cell-ID baseline).
    pub towers: Vec<Point>,
    /// Scene extent.
    pub bbox: BoundingBox,
}

impl City {
    /// Route lookup by public name.
    pub fn route_by_name(&self, name: &str) -> Option<&Route> {
        self.routes.iter().find(|r| r.name() == name)
    }

    /// Route lookup by id.
    pub fn route(&self, id: RouteId) -> Option<&Route> {
        self.routes.iter().find(|r| r.id() == id)
    }

    /// A bucket index over the ground-truth APs for fast scan candidate
    /// queries.
    pub fn ap_index(&self) -> GridIndex<ApId> {
        wilocator_rf::field::ap_index(self.field.aps(), 300.0)
    }
}

/// Adds a straight chain of segments from `from` towards `to`, creating
/// intermediate nodes every ~`spacing` metres. Returns the edge ids and the
/// final node.
fn chain(
    b: &mut NetworkBuilder,
    from: NodeId,
    from_pos: Point,
    to: Point,
    spacing: f64,
) -> (Vec<EdgeId>, NodeId) {
    let total = from_pos.distance(to);
    let n = (total / spacing).round().max(1.0) as usize;
    let mut edges = Vec::with_capacity(n);
    let mut prev = from;
    let mut prev_pos = from_pos;
    for i in 1..=n {
        let p = from_pos.lerp(to, i as f64 / n as f64);
        let node = b.add_node(p);
        let e = b
            .add_edge(prev, node, None)
            .expect("chain nodes are distinct");
        edges.push(e);
        prev = node;
        prev_pos = p;
    }
    debug_assert!(prev_pos.distance(to) < 1e-6);
    (edges, prev)
}

/// Deploys APs along every edge of the network.
fn deploy_aps(network: &RoadNetwork, config: &CityConfig, rng: &mut StdRng) -> Vec<AccessPoint> {
    let mut aps = Vec::new();
    for edge in network.edges() {
        let shape = edge.shape();
        let mut s = rng.gen_range(0.0..config.ap_spacing_m);
        let mut side = rng.gen_bool(0.5);
        while s < shape.length() {
            let on_road = shape.point_at(s);
            // Perpendicular offset: estimate the local tangent.
            let ahead = shape.point_at((s + 1.0).min(shape.length()));
            let (dx, dy) = (ahead.x - on_road.x, ahead.y - on_road.y);
            let norm = (dx * dx + dy * dy).sqrt().max(1e-9);
            let lateral = config.ap_lateral_m * (0.6 + 0.8 * rng.gen::<f64>());
            let sign = if side { 1.0 } else { -1.0 };
            let pos = Point::new(
                on_road.x - dy / norm * lateral * sign,
                on_road.y + dx / norm * lateral * sign,
            );
            let id = ApId(aps.len() as u32);
            let mut ap = AccessPoint::new(id, pos)
                .with_tx_power_dbm(rng.gen_range(config.ap_tx_dbm.0..config.ap_tx_dbm.1));
            if rng.gen::<f64>() < config.untagged_fraction {
                ap = ap.without_geo_tag();
            }
            aps.push(ap);
            side = !side;
            s += config.ap_spacing_m * rng.gen_range(0.7..1.3);
        }
    }
    aps
}

/// Lays a grid of cell towers over the bounding box.
fn deploy_towers(bbox: BoundingBox, spacing: f64, rng: &mut StdRng) -> Vec<Point> {
    let mut towers = Vec::new();
    let mut y = bbox.min.y + spacing / 2.0;
    while y < bbox.max.y {
        let mut x = bbox.min.x + spacing / 2.0;
        while x < bbox.max.x {
            towers.push(Point::new(
                x + rng.gen_range(-0.2..0.2) * spacing,
                y + rng.gen_range(-0.2..0.2) * spacing,
            ));
            x += spacing;
        }
        y += spacing;
    }
    towers
}

fn finish_city(network: RoadNetwork, routes: Vec<Route>, config: &CityConfig, seed: u64) -> City {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC17);
    let aps = deploy_aps(&network, config, &mut rng);
    let bbox = BoundingBox::from_points(network.nodes().iter().map(|n| n.position()))
        .expect("non-empty network")
        .inflated(400.0);
    let towers = deploy_towers(bbox, config.tower_spacing_m, &mut rng);
    let shadowing = ShadowingField::new(
        config.shadowing_sigma_db,
        config.shadowing_correlation_m,
        seed ^ 0x5AAD,
    );
    let field = PhysicalField::new(aps.clone(), LogDistance::urban(), shadowing);
    let server_field = HomogeneousField::new(aps);
    City {
        network,
        routes,
        field,
        server_field,
        towers,
        bbox,
    }
}

/// The Table-I city: a 13 km shared arterial plus branches, with the
/// paper's four routes (Rapid Line, 9, 14, 16), exact stop counts, lengths
/// and overlap lengths.
///
/// # Examples
///
/// ```no_run
/// use wilocator_sim::{vancouver_like, CityConfig};
/// let city = vancouver_like(7, &CityConfig::default());
/// assert_eq!(city.routes.len(), 4);
/// let rapid = city.route_by_name("Rapid Line").unwrap();
/// assert_eq!(rapid.stops().len(), 19);
/// assert!((rapid.length() - 13_700.0).abs() < 1.0);
/// ```
pub fn vancouver_like(seed: u64, config: &CityConfig) -> City {
    let sp = config.node_spacing_m;
    let mut b = NetworkBuilder::new();

    // The arterial ("W Broadway"): x = 0 … 13 000, y = 0.
    let j_west = b.add_node(Point::new(0.0, 0.0));
    let (arterial_edges, j_east) = chain(
        &mut b,
        j_west,
        Point::new(0.0, 0.0),
        Point::new(13_000.0, 0.0),
        sp,
    );
    // Index of the first arterial edge at/after x = 6700 (route 16 joins
    // the arterial there).
    let edges_per_m = arterial_edges.len() as f64 / 13_000.0;
    let join_edge_idx = (6_700.0 * edges_per_m).round() as usize;

    // Rapid tail: (-700, 0) → j_west. The chain stops one hop short of the
    // arterial start and an explicit connector edge enters the existing
    // junction node.
    let rapid_tail_start = b.add_node(Point::new(-700.0, 0.0));
    let (mut rapid_tail, rapid_tail_end) = chain(
        &mut b,
        rapid_tail_start,
        Point::new(-700.0, 0.0),
        Point::new(-sp.min(700.0), 0.0),
        sp,
    );
    rapid_tail.push(
        b.add_edge(rapid_tail_end, j_west, None)
            .expect("tail connects to arterial"),
    );

    // Route 9 east extension: j_east → (16 300, 0).
    let (r9_ext, _) = chain(
        &mut b,
        j_east,
        Point::new(13_000.0, 0.0),
        Point::new(16_300.0, 0.0),
        sp,
    );

    // Route 14 south approach: (0, −4 400) → j_west.
    let r14_start = b.add_node(Point::new(0.0, -4_400.0));
    let (mut r14_approach, r14_app_end) = chain(
        &mut b,
        r14_start,
        Point::new(0.0, -4_400.0),
        Point::new(0.0, -sp.min(4_400.0)),
        sp,
    );
    r14_approach.push(
        b.add_edge(r14_app_end, j_west, None)
            .expect("approach connects to arterial"),
    );

    // Branch B (shared by 14 and 16): j_east → (13 000, 3 200).
    let (branch_b, branch_b_end) = chain(
        &mut b,
        j_east,
        Point::new(13_000.0, 0.0),
        Point::new(13_000.0, 3_200.0),
        sp,
    );

    // Route 16 own part: 2.8 km further north, then east. The eastern leg
    // absorbs the arterial join-node quantisation so the route totals the
    // paper's 18.3 km exactly.
    let arterial_part_m: f64 =
        arterial_edges[join_edge_idx..].len() as f64 * (13_000.0 / arterial_edges.len() as f64);
    let own_b_len = 18_300.0 - arterial_part_m - 3_200.0 - 2_800.0;
    let (r16_own_a, r16_corner) = chain(
        &mut b,
        branch_b_end,
        Point::new(13_000.0, 3_200.0),
        Point::new(13_000.0, 6_000.0),
        sp,
    );
    let (r16_own_b, _) = chain(
        &mut b,
        r16_corner,
        Point::new(13_000.0, 6_000.0),
        Point::new(13_000.0 + own_b_len, 6_000.0),
        sp,
    );

    let network = b.build();

    // Assemble routes.
    let mut rapid_edges = rapid_tail;
    rapid_edges.extend_from_slice(&arterial_edges);
    let mut rapid = Route::new(RouteId(0), "Rapid Line", rapid_edges, &network)
        .expect("rapid line is connected");
    rapid.add_stops_evenly(19);

    let mut r9_edges = arterial_edges.clone();
    r9_edges.extend_from_slice(&r9_ext);
    let mut r9 = Route::new(RouteId(1), "9", r9_edges, &network).expect("route 9 connected");
    r9.add_stops_evenly(65);

    let mut r14_edges = r14_approach;
    r14_edges.extend_from_slice(&arterial_edges);
    r14_edges.extend_from_slice(&branch_b);
    let mut r14 = Route::new(RouteId(2), "14", r14_edges, &network).expect("route 14 connected");
    r14.add_stops_evenly(74);

    let mut r16_edges: Vec<EdgeId> = arterial_edges[join_edge_idx..].to_vec();
    r16_edges.extend_from_slice(&branch_b);
    r16_edges.extend_from_slice(&r16_own_a);
    r16_edges.extend_from_slice(&r16_own_b);
    let mut r16 = Route::new(RouteId(3), "16", r16_edges, &network).expect("route 16 connected");
    r16.add_stops_evenly(91);

    finish_city(network, vec![rapid, r9, r14, r16], config, seed)
}

/// The campus scene of Table II / Fig. 10: a single one-way road segment
/// with eleven numbered APs and three probe locations A, B, C.
#[derive(Debug, Clone)]
pub struct CampusScene {
    /// The scene (one route named "campus").
    pub city: City,
    /// Probe locations `(name, arc length)` on the route: A, B, C.
    pub probes: Vec<(&'static str, f64)>,
}

/// Builds the campus scene. APs are numbered AP1…AP11 (ids 0…10) and
/// deployed "almost as dense as in urban environments" along a 300 m
/// one-way segment.
pub fn campus(seed: u64) -> CampusScene {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(300.0, 0.0));
    let e = b.add_edge(n0, n1, None).expect("distinct nodes");
    let network = b.build();
    let mut route = Route::new(RouteId(0), "campus", vec![e], &network).expect("single-edge route");
    route.add_stops_evenly(2);

    // Hand-placed APs mirroring Fig. 10: clusters near both ends and the
    // middle, on both sides of the road.
    let placements: [(f64, f64); 11] = [
        (250.0, 18.0),  // AP1
        (262.0, -15.0), // AP2
        (282.0, 20.0),  // AP3
        (225.0, -20.0), // AP4
        (205.0, 16.0),  // AP5
        (30.0, -18.0),  // AP6
        (12.0, 15.0),   // AP7
        (55.0, 22.0),   // AP8
        (135.0, -16.0), // AP9
        (110.0, 18.0),  // AP10
        (85.0, -22.0),  // AP11
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let aps: Vec<AccessPoint> = placements
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            AccessPoint::new(ApId(i as u32), Point::new(x, y))
                .with_ssid(format!("campus-AP{}", i + 1))
                .with_tx_power_dbm(rng.gen_range(18.0..21.0))
        })
        .collect();

    let bbox = BoundingBox::new(Point::new(-60.0, -120.0), Point::new(360.0, 120.0));
    let shadowing = ShadowingField::new(4.0, 50.0, seed ^ 0x5AAD);
    let field = PhysicalField::new(aps.clone(), LogDistance::urban(), shadowing);
    let server_field = HomogeneousField::new(aps);
    let city = City {
        network,
        routes: vec![route],
        field,
        server_field,
        towers: vec![Point::new(150.0, 400.0)],
        bbox,
    };
    CampusScene {
        city,
        // A near the AP9/AP10 cluster, B mid-block, C near the AP4/AP5 end
        // (mirroring Table II's dominant APs).
        probes: vec![("A", 115.0), ("B", 165.0), ("C", 228.0)],
    }
}

/// A minimal scene for tests and examples: one straight street of `len_m`
/// metres with one route ("demo") carrying `stops` stops.
pub fn simple_street(len_m: f64, stops: usize, seed: u64, config: &CityConfig) -> City {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let (edges, _) = chain(
        &mut b,
        n0,
        Point::new(0.0, 0.0),
        Point::new(len_m, 0.0),
        config.node_spacing_m,
    );
    let network = b.build();
    let mut route = Route::new(RouteId(0), "demo", edges, &network).expect("connected chain");
    route.add_stops_evenly(stops.max(2));
    finish_city(network, vec![route], config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_road::overlap;

    fn small_config() -> CityConfig {
        CityConfig::default()
    }

    #[test]
    fn simple_street_has_aps_and_route() {
        let city = simple_street(1_000.0, 5, 3, &small_config());
        assert_eq!(city.routes.len(), 1);
        assert_eq!(city.routes[0].stops().len(), 5);
        assert!((city.routes[0].length() - 1_000.0).abs() < 1.0);
        // ~1000 / 55 ≈ 18 APs.
        assert!(city.field.aps().len() >= 10, "{}", city.field.aps().len());
        assert!(!city.towers.is_empty());
    }

    #[test]
    fn vancouver_route_lengths_match_table1() {
        let city = vancouver_like(11, &small_config());
        let expect = [
            ("Rapid Line", 13_700.0, 19),
            ("9", 16_300.0, 65),
            ("14", 20_600.0, 74),
            ("16", 18_300.0, 91),
        ];
        for (name, len, stops) in expect {
            let r = city.route_by_name(name).unwrap_or_else(|| panic!("{name}"));
            assert!(
                (r.length() - len).abs() < 20.0,
                "{name}: {} vs {len}",
                r.length()
            );
            assert_eq!(r.stops().len(), stops, "{name} stops");
        }
    }

    #[test]
    fn vancouver_overlaps_match_table1() {
        let city = vancouver_like(11, &small_config());
        let expect = [
            ("Rapid Line", 13_000.0),
            ("9", 13_000.0),
            ("14", 16_200.0),
            ("16", 9_500.0),
        ];
        for (name, ov) in expect {
            let r = city.route_by_name(name).unwrap();
            let got = overlap::overlap_length_m(r, &city.routes, &city.network);
            assert!(
                (got - ov).abs() < 60.0,
                "{name}: overlap {got} vs expected {ov}"
            );
        }
    }

    #[test]
    fn vancouver_deterministic_given_seed() {
        let a = vancouver_like(5, &small_config());
        let b = vancouver_like(5, &small_config());
        assert_eq!(a.field.aps().len(), b.field.aps().len());
        assert_eq!(a.field.aps()[0].position(), b.field.aps()[0].position());
    }

    #[test]
    fn ap_density_meets_paper_observation() {
        // "at least three geo-tagged APs distributed along each road
        // segment of the main streets".
        let city = vancouver_like(11, &small_config());
        let arterial = city.route_by_name("Rapid Line").unwrap();
        let idx = city.ap_index();
        // Sample a few arterial positions; each should hear ≥ 3 geo-tagged
        // APs within 150 m.
        for s in [1_000.0, 5_000.0, 9_000.0, 12_500.0] {
            let p = arterial.point_at(700.0 + s);
            let tagged = idx
                .within(p, 150.0)
                .filter(|(_, _, &id)| city.field.aps()[id.0 as usize].is_geo_tagged())
                .count();
            assert!(tagged >= 3, "only {tagged} geo-tagged APs near s = {s}");
        }
    }

    #[test]
    fn campus_scene_matches_table2_shape() {
        let scene = campus(1);
        assert_eq!(scene.city.field.aps().len(), 11);
        assert_eq!(scene.probes.len(), 3);
        let route = &scene.city.routes[0];
        assert!((route.length() - 300.0).abs() < 1e-9);
        for &(_, s) in &scene.probes {
            assert!(s >= 0.0 && s <= route.length());
        }
    }

    #[test]
    fn untagged_fraction_respected() {
        let city = simple_street(5_000.0, 5, 9, &small_config());
        let untagged = city
            .field
            .aps()
            .iter()
            .filter(|ap| !ap.is_geo_tagged())
            .count();
        let frac = untagged as f64 / city.field.aps().len() as f64;
        assert!(frac > 0.0 && frac < 0.25, "untagged fraction {frac}");
    }
}

//! Kinematic simulation of a single bus trip.
//!
//! A trip follows its route edge by edge at the traffic model's speed,
//! dwelling at stops (longer in rush hours, when more passengers board) and
//! randomly waiting at intersection traffic lights — the two "false
//! anomaly" causes the paper's anomaly detector must filter out (§V-A.4).
//! Speed is re-evaluated every `chunk_m` metres so the environment residual
//! and incidents shape the trajectory within an edge.

use rand::Rng;
use wilocator_road::Route;

use crate::traffic::TrafficModel;
use crate::trajectory::Trajectory;

/// Configuration of the bus kinematics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Mean dwell at a stop, seconds.
    pub dwell_mean_s: f64,
    /// Uniform jitter around the mean dwell, seconds.
    pub dwell_jitter_s: f64,
    /// Extra mean dwell during rush hours (more boarding), seconds.
    pub rush_dwell_extra_s: f64,
    /// Probability of hitting a red light at an intersection.
    pub light_red_probability: f64,
    /// Uniform red-light wait range, seconds.
    pub light_wait_s: (f64, f64),
    /// Speed re-evaluation granularity along the route, metres.
    pub chunk_m: f64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            dwell_mean_s: 16.0,
            dwell_jitter_s: 8.0,
            rush_dwell_extra_s: 10.0,
            light_red_probability: 0.35,
            light_wait_s: (5.0, 45.0),
            chunk_m: 50.0,
        }
    }
}

/// Simulates one trip of `route` departing at `departure_s`, returning the
/// ground-truth trajectory.
///
/// # Panics
///
/// Panics if `config.chunk_m` is not strictly positive.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wilocator_sim::{simple_street, simulate_trip, BusConfig, CityConfig, TrafficConfig, TrafficModel};
///
/// let city = simple_street(2_000.0, 5, 1, &CityConfig::default());
/// let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let trip = simulate_trip(
///     &city.routes[0], &traffic, 7.0 * 3600.0, &BusConfig::default(), &mut rng,
/// );
/// assert!(trip.end_time() > trip.start_time());
/// assert_eq!(trip.end_s(), city.routes[0].length());
/// ```
pub fn simulate_trip<R: Rng + ?Sized>(
    route: &Route,
    traffic: &TrafficModel,
    departure_s: f64,
    config: &BusConfig,
    rng: &mut R,
) -> Trajectory {
    assert!(config.chunk_m > 0.0, "chunk size must be positive");
    let mut tr = Trajectory::new(departure_s, 0.0);
    let mut t = departure_s;
    let mut stop_iter = route.stops().iter().peekable();
    // Skip the departure stop (dwell happened before departure).
    while let Some(st) = stop_iter.peek() {
        if st.s() <= 1e-9 {
            stop_iter.next();
        } else {
            break;
        }
    }
    for edge_index in 0..route.edges().len() {
        let edge = route.edges()[edge_index];
        let e0 = route.edge_start_s(edge_index);
        let e1 = route.edge_end_s(edge_index);
        let mut s = e0;
        while s < e1 - 1e-9 {
            // Next waypoint: chunk boundary, stop, or edge end.
            let chunk_end = (s + config.chunk_m).min(e1);
            let next_stop_s = stop_iter.peek().map(|st| st.s()).unwrap_or(f64::INFINITY);
            let target = chunk_end.min(next_stop_s.max(s + 1e-9));
            let v = traffic.speed_mps(edge, route.id(), t, s - e0);
            t += (target - s) / v;
            s = target;
            tr.push(t, s);
            // Dwell if we just reached a stop.
            if (s - next_stop_s).abs() < 1e-9 {
                stop_iter.next();
                let rush = traffic.is_rush(t.rem_euclid(crate::traffic::DAY_S));
                let extra = if rush { config.rush_dwell_extra_s } else { 0.0 };
                let dwell = (config.dwell_mean_s
                    + extra
                    + rng.gen_range(-config.dwell_jitter_s..=config.dwell_jitter_s))
                .max(2.0);
                t += dwell;
                tr.push(t, s);
            }
        }
        // Traffic light at the intersection (not after the final edge).
        if edge_index + 1 < route.edges().len() && rng.gen::<f64>() < config.light_red_probability {
            let wait = rng.gen_range(config.light_wait_s.0..=config.light_wait_s.1);
            t += wait;
            tr.push(t, s);
        }
    }
    tr
}

/// Ground-truth travel time of a trip over route segment `edge_index`
/// (first-arrival at segment start to first-arrival at segment end).
pub fn segment_travel_time(route: &Route, trajectory: &Trajectory, edge_index: usize) -> f64 {
    let t0 = trajectory.time_at_s(route.edge_start_s(edge_index));
    let t1 = trajectory.time_at_s(route.edge_end_s(edge_index));
    t1 - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{simple_street, CityConfig};
    use crate::traffic::{Incident, TrafficConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (crate::city::City, TrafficModel) {
        let city = simple_street(3_000.0, 6, 2, &CityConfig::default());
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 2);
        (city, traffic)
    }

    #[test]
    fn trip_reaches_the_end() {
        let (city, traffic) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let tr = simulate_trip(
            &city.routes[0],
            &traffic,
            12.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        assert_eq!(tr.end_s(), city.routes[0].length());
        // Plausible duration: 3 km at ~2–10 m/s plus dwells.
        let dur = tr.end_time() - tr.start_time();
        assert!(dur > 250.0 && dur < 3_000.0, "duration {dur}");
    }

    #[test]
    fn trajectory_is_monotone() {
        let (city, traffic) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let tr = simulate_trip(
            &city.routes[0],
            &traffic,
            8.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        for w in tr.points().windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn rush_hour_trips_take_longer() {
        let (city, traffic) = setup();
        // Average a few seeds to beat stochastic dwell noise.
        let avg = |depart: f64| -> f64 {
            (0..8)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(100 + i);
                    let tr = simulate_trip(
                        &city.routes[0],
                        &traffic,
                        depart,
                        &BusConfig::default(),
                        &mut rng,
                    );
                    tr.end_time() - tr.start_time()
                })
                .sum::<f64>()
                / 8.0
        };
        let off_peak = avg(13.0 * 3600.0);
        let rush = avg(8.7 * 3600.0);
        assert!(rush > off_peak * 1.15, "rush {rush} vs off-peak {off_peak}");
    }

    #[test]
    fn dwells_appear_at_stops() {
        let (city, traffic) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let route = &city.routes[0];
        let tr = simulate_trip(
            route,
            &traffic,
            12.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        // Interior stops: the trajectory must contain a flat segment at the
        // stop's arc length.
        for st in route
            .stops()
            .iter()
            .filter(|s| s.s() > 1.0 && s.s() < route.length() - 1.0)
        {
            let flat = tr
                .points()
                .windows(2)
                .any(|w| (w[0].1 - st.s()).abs() < 1e-6 && w[1].1 == w[0].1 && w[1].0 > w[0].0);
            assert!(flat, "no dwell at stop s = {}", st.s());
        }
    }

    #[test]
    fn incident_inflates_segment_time() {
        let (city, mut traffic) = setup();
        let route = &city.routes[0];
        let edge_index = 3;
        let edge = route.edges()[edge_index];
        let base = {
            let mut rng = StdRng::seed_from_u64(7);
            let tr = simulate_trip(
                route,
                &traffic,
                12.0 * 3600.0,
                &BusConfig::default(),
                &mut rng,
            );
            segment_travel_time(route, &tr, edge_index)
        };
        traffic.add_incident(Incident {
            edge,
            s_range: (0.0, route.edge_length(edge_index)),
            start_s: 0.0,
            duration_s: 1e9,
            slowdown: 6.0,
        });
        let mut rng = StdRng::seed_from_u64(7);
        let tr = simulate_trip(
            route,
            &traffic,
            12.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        let slow = segment_travel_time(route, &tr, edge_index);
        assert!(slow > base * 3.0, "incident {slow} vs base {base}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (city, traffic) = setup();
        let a = simulate_trip(
            &city.routes[0],
            &traffic,
            9.0 * 3600.0,
            &BusConfig::default(),
            &mut StdRng::seed_from_u64(11),
        );
        let b = simulate_trip(
            &city.routes[0],
            &traffic,
            9.0 * 3600.0,
            &BusConfig::default(),
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn segment_times_sum_close_to_trip_time() {
        let (city, traffic) = setup();
        let route = &city.routes[0];
        let mut rng = StdRng::seed_from_u64(13);
        let tr = simulate_trip(
            route,
            &traffic,
            12.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        let sum: f64 = (0..route.edges().len())
            .map(|i| segment_travel_time(route, &tr, i))
            .sum();
        let total = tr.end_time() - tr.start_time();
        assert!((sum - total).abs() < 1.0, "sum {sum} vs total {total}");
    }
}

//! Crowd sensing: rider WiFi scans, GPS fixes and Cell-ID observations.
//!
//! WiLocator's input is what riders' phones hear ("the smartphone
//! periodically scans the surrounding WiFi information, and reports it to
//! the server", scan period 10 s in the prototype). The GPS and Cell-ID
//! observations generated here feed the baselines the paper argues
//! against: GPS with urban-canyon error spikes, and sparse cell towers
//! whose ~800 m cells make Cell-ID sequences slow to disambiguate.

use rand::Rng;
use wilocator_geo::{GridIndex, Point};
use wilocator_rf::{ApId, Scan, Scanner, ScannerConfig, SignalField};
use wilocator_road::EdgeId;

use crate::city::City;
use crate::trajectory::Trajectory;

/// Configuration of the rider sensing layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensingConfig {
    /// WiFi scan period, seconds (10 s in the paper's prototype).
    pub scan_period_s: f64,
    /// Uniform jitter on each scan tick, seconds.
    pub period_jitter_s: f64,
    /// Number of scanning devices on the bus (driver + riders). At least 1.
    pub devices: usize,
    /// The radio scanner configuration.
    pub scanner: ScannerConfig,
}

impl Default for SensingConfig {
    fn default() -> Self {
        SensingConfig {
            scan_period_s: 10.0,
            period_jitter_s: 0.5,
            devices: 2,
            scanner: ScannerConfig::default(),
        }
    }
}

/// All scans collected on a bus at one scan tick, with ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanBundle {
    /// Scan time, seconds.
    pub time_s: f64,
    /// Ground-truth arc length of the bus at that time (not visible to the
    /// server; used for evaluation only).
    pub true_s: f64,
    /// One scan per device on the bus.
    pub scans: Vec<Scan>,
}

/// Generates the WiFi scan bundles for one trip.
///
/// # Panics
///
/// Panics if `config.scan_period_s <= 0` or `config.devices == 0`.
pub fn sense_trip<R: Rng + ?Sized>(
    city: &City,
    trajectory: &Trajectory,
    route_index: usize,
    config: &SensingConfig,
    ap_index: &GridIndex<ApId>,
    rng: &mut R,
) -> Vec<ScanBundle> {
    assert!(config.scan_period_s > 0.0, "scan period must be positive");
    assert!(config.devices >= 1, "need at least the driver's phone");
    let route = &city.routes[route_index];
    let scanner = Scanner::new(config.scanner);
    let mut out = Vec::new();
    let mut t = trajectory.start_time();
    while t <= trajectory.end_time() {
        let tick = t + rng.gen_range(-config.period_jitter_s..=config.period_jitter_s);
        let tick = tick.clamp(trajectory.start_time(), trajectory.end_time());
        let s = trajectory.s_at(tick);
        let p = route.point_at(s);
        // Bucket order in the spatial index is not deterministic; sort by
        // AP id so the per-AP RNG draws are consumed in a fixed order and
        // datasets are bit-for-bit reproducible.
        let mut candidates: Vec<&wilocator_rf::AccessPoint> = ap_index
            .within(p, config.scanner.max_range_m)
            .filter_map(|(_, _, &id)| city.field.ap(id))
            .collect();
        candidates.sort_by_key(|ap| ap.id());
        let scans: Vec<Scan> = (0..config.devices)
            .map(|_| scanner.scan_candidates(&city.field, candidates.iter().copied(), p, tick, rng))
            .collect();
        out.push(ScanBundle {
            time_s: tick,
            true_s: s,
            scans,
        });
        t += config.scan_period_s;
    }
    out
}

/// GPS error model with urban canyons.
///
/// A deterministic subset of edges is marked as *canyon* (tall buildings
/// blocking line of sight); fixes there carry a much larger error and a
/// higher outage probability — the reason "GPS-based tracking systems …
/// work poorly in urban environments".
#[derive(Debug, Clone)]
pub struct GpsModel {
    sigma_open_m: f64,
    sigma_canyon_m: f64,
    outage_open: f64,
    outage_canyon: f64,
    canyon: Vec<bool>,
}

impl GpsModel {
    /// Builds the model, marking `canyon_fraction` of edges as canyons
    /// deterministically from `seed`.
    pub fn new(edge_count: usize, canyon_fraction: f64, seed: u64) -> Self {
        let canyon = (0..edge_count)
            .map(|i| {
                let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z >> 40) as f64 / (1u64 << 24) as f64 <= canyon_fraction
            })
            .collect();
        GpsModel {
            sigma_open_m: 8.0,
            sigma_canyon_m: 55.0,
            outage_open: 0.02,
            outage_canyon: 0.25,
            canyon,
        }
    }

    /// Whether an edge is in an urban canyon.
    pub fn is_canyon(&self, edge: EdgeId) -> bool {
        self.canyon.get(edge.index()).copied().unwrap_or(false)
    }

    /// A GPS fix at true position `p` on `edge`, or `None` on outage.
    pub fn fix<R: Rng + ?Sized>(&self, p: Point, edge: EdgeId, rng: &mut R) -> Option<Point> {
        let (sigma, outage) = if self.is_canyon(edge) {
            (self.sigma_canyon_m, self.outage_canyon)
        } else {
            (self.sigma_open_m, self.outage_open)
        };
        if rng.gen::<f64>() < outage {
            return None;
        }
        Some(Point::new(
            p.x + gauss(rng) * sigma,
            p.y + gauss(rng) * sigma,
        ))
    }
}

/// The serving cell tower at a position: the nearest tower (towers are
/// sparse enough that the strongest-signal tower is the nearest one), with
/// occasional handover noise to a neighbouring tower.
pub fn serving_tower<R: Rng + ?Sized>(towers: &[Point], p: Point, rng: &mut R) -> Option<usize> {
    if towers.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..towers.len()).collect();
    order.sort_by(|&a, &b| {
        p.distance(towers[a])
            .partial_cmp(&p.distance(towers[b]))
            .expect("finite")
    });
    // 12 % of observations attach to the second-nearest tower (fading /
    // load balancing), matching the coarse reality of Cell-ID positioning.
    if order.len() > 1 && rng.gen::<f64>() < 0.12 {
        Some(order[1])
    } else {
        Some(order[0])
    }
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{simulate_trip, BusConfig};
    use crate::city::{simple_street, CityConfig};
    use crate::traffic::{TrafficConfig, TrafficModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scan_bundles_cover_the_trip() {
        let city = simple_street(1_500.0, 4, 1, &CityConfig::default());
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let tr = simulate_trip(
            &city.routes[0],
            &traffic,
            12.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        let idx = city.ap_index();
        let bundles = sense_trip(&city, &tr, 0, &SensingConfig::default(), &idx, &mut rng);
        assert!(!bundles.is_empty());
        // Ticks are ~10 s apart.
        let dt = bundles[1].time_s - bundles[0].time_s;
        assert!(dt > 8.0 && dt < 12.0, "dt {dt}");
        // Ground truth monotone.
        for w in bundles.windows(2) {
            assert!(w[1].true_s >= w[0].true_s - 1e-9);
        }
        // On an instrumented street most bundles hear something.
        let heard = bundles
            .iter()
            .filter(|b| b.scans.iter().any(|s| !s.is_empty()))
            .count();
        assert!(heard * 10 >= bundles.len() * 9);
    }

    #[test]
    fn device_count_respected() {
        let city = simple_street(500.0, 2, 1, &CityConfig::default());
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        let tr = simulate_trip(
            &city.routes[0],
            &traffic,
            12.0 * 3600.0,
            &BusConfig::default(),
            &mut rng,
        );
        let idx = city.ap_index();
        let cfg = SensingConfig {
            devices: 3,
            ..SensingConfig::default()
        };
        let bundles = sense_trip(&city, &tr, 0, &cfg, &idx, &mut rng);
        assert!(bundles.iter().all(|b| b.scans.len() == 3));
    }

    #[test]
    fn gps_canyon_errors_are_larger() {
        let model = GpsModel::new(100, 0.5, 9);
        let canyon: Vec<EdgeId> = (0..100)
            .map(EdgeId)
            .filter(|&e| model.is_canyon(e))
            .collect();
        let open: Vec<EdgeId> = (0..100)
            .map(EdgeId)
            .filter(|&e| !model.is_canyon(e))
            .collect();
        assert!(!canyon.is_empty() && !open.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let err = |edges: &[EdgeId], rng: &mut StdRng| {
            let mut total = 0.0;
            let mut n = 0;
            for _ in 0..400 {
                for &e in edges.iter().take(3) {
                    if let Some(fix) = model.fix(Point::ORIGIN, e, rng) {
                        total += fix.distance(Point::ORIGIN);
                        n += 1;
                    }
                }
            }
            total / n as f64
        };
        let canyon_err = err(&canyon, &mut rng);
        let open_err = err(&open, &mut rng);
        assert!(
            canyon_err > open_err * 3.0,
            "canyon {canyon_err} open {open_err}"
        );
    }

    #[test]
    fn gps_outage_happens_in_canyons() {
        let model = GpsModel::new(10, 1.0, 4); // all canyon
        let mut rng = StdRng::seed_from_u64(2);
        let outages = (0..1_000)
            .filter(|_| model.fix(Point::ORIGIN, EdgeId(0), &mut rng).is_none())
            .count();
        assert!(outages > 150 && outages < 400, "outages {outages}");
    }

    #[test]
    fn serving_tower_is_usually_nearest() {
        let towers = vec![Point::new(0.0, 0.0), Point::new(800.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(5);
        let nearest = (0..1_000)
            .filter(|_| serving_tower(&towers, Point::new(100.0, 0.0), &mut rng) == Some(0))
            .count();
        assert!(nearest > 800, "nearest chosen {nearest}");
        assert_eq!(serving_tower(&[], Point::ORIGIN, &mut rng), None);
    }
}
